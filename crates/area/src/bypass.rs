//! Bypass-network cost model.
//!
//! The paper's §2 argues that a multi-cycle register file either needs
//! *multiple levels* of bypass — "each bypass level requires a connection
//! from each result bus to each functional unit input … this incurs
//! significant complexity" — or loses IPC with a single level. This module
//! quantifies that argument with the same style of analytical model as the
//! register banks: wire tracks for the result buses, a multiplexer per
//! functional-unit input whose fan-in grows with the number of levels.
//!
//! The constants reuse the λ-normalized track pitch calibrated for the
//! register cells, so bypass and register-file areas are comparable.

use std::fmt;

/// Track pitch in λ, matching the register-cell calibration (≈ √351.9).
const TRACK_LAMBDA: f64 = 18.76;
/// Multiplexer area per input per bit, λ² (two transistor pairs plus
/// local routing at the calibrated pitch).
const MUX_AREA_PER_INPUT: f64 = 2.0 * TRACK_LAMBDA * TRACK_LAMBDA;
/// Delay added per multiplexer fan-in doubling, ns (λ = 0.5 µm class).
const MUX_DELAY_PER_LEVEL_NS: f64 = 0.12;
/// Wire delay per result-bus span across one functional unit's pitch, ns.
const WIRE_DELAY_PER_FU_NS: f64 = 0.018;

/// Geometry of a bypass network.
///
/// # Examples
///
/// ```
/// use rfcache_area::BypassModel;
///
/// // The paper's machine: 8-wide, ~19 FU inputs, one bypass level.
/// let single = BypassModel::new(1, 19, 8, 64);
/// let double = BypassModel::new(2, 19, 8, 64);
/// assert!(double.area_lambda2() > 1.9 * single.area_lambda2());
/// assert!(double.delay_ns() > single.delay_ns());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BypassModel {
    levels: u32,
    fu_inputs: u32,
    result_buses: u32,
    width_bits: u32,
}

impl BypassModel {
    /// Creates a bypass-network model.
    ///
    /// * `levels` — bypass levels (1 for a 1-cycle file or the register
    ///   file cache; `read_latency` for full bypass on a pipelined file).
    /// * `fu_inputs` — operand inputs across all functional units.
    /// * `result_buses` — results broadcast per cycle.
    /// * `width_bits` — datapath width.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(levels: u32, fu_inputs: u32, result_buses: u32, width_bits: u32) -> Self {
        assert!(levels > 0 && fu_inputs > 0 && result_buses > 0 && width_bits > 0);
        BypassModel { levels, fu_inputs, result_buses, width_bits }
    }

    /// The paper's machine (Table 1): 6 simple int + 3 mul/div + 4 FP +
    /// 2 FP div + 4 load/store units ≈ 19 two-input ports feeding 38
    /// operand inputs; 8 results broadcast per cycle; 64-bit datapath.
    pub fn paper_machine(levels: u32) -> Self {
        BypassModel::new(levels, 38, 8, 64)
    }

    /// Bypass levels modelled.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total multiplexer fan-in per functional-unit input: one leg per
    /// result bus per level, plus the register-file leg.
    pub fn mux_fanin(&self) -> u32 {
        self.levels * self.result_buses + 1
    }

    /// Silicon area of the network in λ²: per-level broadcast wiring
    /// (result buses spanning every FU input's pitch) plus the operand
    /// multiplexers.
    pub fn area_lambda2(&self) -> f64 {
        let bits = f64::from(self.width_bits);
        // Wiring: each level routes `result_buses` × `bits` wires across
        // `fu_inputs` landing pads at one track pitch each.
        let wires = f64::from(self.levels)
            * f64::from(self.result_buses)
            * bits
            * f64::from(self.fu_inputs)
            * TRACK_LAMBDA
            * TRACK_LAMBDA;
        // Muxes: one per FU input per bit, area linear in fan-in.
        let muxes =
            f64::from(self.fu_inputs) * bits * f64::from(self.mux_fanin()) * MUX_AREA_PER_INPUT;
        wires + muxes
    }

    /// Delay the network adds in front of the functional units, ns:
    /// logarithmic in mux fan-in plus the broadcast wire flight.
    pub fn delay_ns(&self) -> f64 {
        let fanin = f64::from(self.mux_fanin());
        MUX_DELAY_PER_LEVEL_NS * fanin.log2().max(1.0)
            + WIRE_DELAY_PER_FU_NS * f64::from(self.fu_inputs) * f64::from(self.levels).sqrt()
    }
}

impl fmt::Display for BypassModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bypass[{} level(s), {} inputs x {} buses, fan-in {}]",
            self.levels,
            self.fu_inputs,
            self.result_buses,
            self.mux_fanin()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_level_roughly_doubles_wiring() {
        let one = BypassModel::paper_machine(1);
        let two = BypassModel::paper_machine(2);
        let ratio = two.area_lambda2() / one.area_lambda2();
        assert!((1.7..=2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn delay_grows_with_levels_and_fanin() {
        let one = BypassModel::paper_machine(1);
        let two = BypassModel::paper_machine(2);
        assert!(two.delay_ns() > one.delay_ns());
        assert_eq!(one.mux_fanin(), 9);
        assert_eq!(two.mux_fanin(), 17);
    }

    #[test]
    fn bypass_area_is_significant_relative_to_upper_bank() {
        // The paper's complexity argument: a second bypass level costs on
        // the order of the register file cache's whole upper bank.
        use crate::geometry::BankGeometry;
        let upper = BankGeometry::new(16, 64, 4, 5).area_lambda2();
        let extra_level = BypassModel::paper_machine(2).area_lambda2()
            - BypassModel::paper_machine(1).area_lambda2();
        assert!(
            extra_level > 0.3 * upper,
            "extra bypass level {extra_level} vs upper bank {upper}"
        );
    }

    #[test]
    fn display_mentions_levels() {
        assert!(BypassModel::paper_machine(2).to_string().contains("2 level(s)"));
    }

    #[test]
    #[should_panic]
    fn zero_parameters_rejected() {
        let _ = BypassModel::new(0, 1, 1, 64);
    }
}
