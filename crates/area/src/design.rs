//! Complete register-file designs: one bank (optionally pipelined) or the
//! two-level register file cache, with derived area, cycle time, and
//! latency-in-cycles figures.

use crate::geometry::BankGeometry;
use std::fmt;

/// A conventional single-banked register file, optionally pipelined over
/// multiple stages.
///
/// # Examples
///
/// ```
/// use rfcache_area::SingleBankDesign;
/// let one_cycle = SingleBankDesign::new(128, 64, 3, 2, 1);
/// let two_cycle = SingleBankDesign::new(128, 64, 3, 2, 2);
/// assert_eq!(one_cycle.area_lambda2(), two_cycle.area_lambda2());
/// // Pipelining halves the cycle time (optimistically, as the paper notes).
/// assert!((two_cycle.cycle_time_ns() - one_cycle.cycle_time_ns() / 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleBankDesign {
    bank: BankGeometry,
    stages: u32,
}

impl SingleBankDesign {
    /// Creates a single-banked design with `stages` pipeline stages
    /// (1 = non-pipelined, 2 = the paper's "two-cycle" file).
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` or the bank geometry is invalid.
    pub fn new(
        registers: u32,
        width_bits: u32,
        read_ports: u32,
        write_ports: u32,
        stages: u32,
    ) -> Self {
        assert!(stages > 0, "a register file needs at least one pipeline stage");
        SingleBankDesign {
            bank: BankGeometry::new(registers, width_bits, read_ports, write_ports),
            stages,
        }
    }

    /// The underlying bank geometry.
    pub fn bank(&self) -> BankGeometry {
        self.bank
    }

    /// Number of pipeline stages the access is divided into.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Total silicon area in λ².
    pub fn area_lambda2(&self) -> f64 {
        self.bank.area_lambda2()
    }

    /// Processor cycle time if this register file is the critical path.
    ///
    /// The paper's (self-described optimistic) assumption: the access
    /// pipelines into `stages` equal stages with no inter-stage overhead.
    pub fn cycle_time_ns(&self) -> f64 {
        self.bank.access_time_ns() / f64::from(self.stages)
    }

    /// Register read latency in processor cycles (= pipeline stages).
    pub fn read_latency_cycles(&self) -> u64 {
        u64::from(self.stages)
    }
}

impl fmt::Display for SingleBankDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "single[{} x{}]", self.bank, self.stages)
    }
}

/// The two-level register file cache design of the paper.
///
/// The upper level is a small fully-associative bank read by the functional
/// units; the lower level holds all physical registers. `buses` transfer
/// values upward: each bus adds one read port to the lower bank and one
/// write port to the upper bank (Table 2 caption).
///
/// # Examples
///
/// ```
/// use rfcache_area::TwoLevelDesign;
/// // The paper's C1 register-file-cache configuration.
/// let c1 = TwoLevelDesign::new(128, 16, 64, 3, 2, 2, 2);
/// assert!((c1.cycle_time_ns() - 2.45).abs() < 0.05);
/// assert_eq!(c1.lower_latency_cycles(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelDesign {
    upper: BankGeometry,
    lower: BankGeometry,
    buses: u32,
}

impl TwoLevelDesign {
    /// Creates a two-level design.
    ///
    /// * `lower_registers` — physical registers in the lower level.
    /// * `upper_registers` — entries in the upper-level cache bank.
    /// * `upper_read_ports`/`upper_write_ports` — ports serving the
    ///   functional units and result buses, respectively.
    /// * `lower_write_ports` — result write ports of the lower level.
    /// * `buses` — inter-level transfer buses (each adds a lower read port
    ///   and an upper write port on top of the counts above).
    ///
    /// # Panics
    ///
    /// Panics if any bank geometry is invalid or
    /// `upper_registers >= lower_registers`.
    pub fn new(
        lower_registers: u32,
        upper_registers: u32,
        width_bits: u32,
        upper_read_ports: u32,
        upper_write_ports: u32,
        lower_write_ports: u32,
        buses: u32,
    ) -> Self {
        assert!(
            upper_registers < lower_registers,
            "the cache bank must be smaller than the backing bank"
        );
        TwoLevelDesign {
            upper: BankGeometry::new(
                upper_registers,
                width_bits,
                upper_read_ports,
                upper_write_ports + buses,
            ),
            lower: BankGeometry::new(lower_registers, width_bits, buses, lower_write_ports),
            buses,
        }
    }

    /// Geometry of the upper (cache) bank, bus write ports included.
    pub fn upper(&self) -> BankGeometry {
        self.upper
    }

    /// Geometry of the lower bank, bus read ports included.
    pub fn lower(&self) -> BankGeometry {
        self.lower
    }

    /// Number of inter-level transfer buses.
    pub fn buses(&self) -> u32 {
        self.buses
    }

    /// Total silicon area (both banks) in λ².
    pub fn area_lambda2(&self) -> f64 {
        self.upper.area_lambda2() + self.lower.area_lambda2()
    }

    /// Processor cycle time: the upper bank must be readable in one cycle,
    /// and the lower bank access (pipelined over
    /// [`lower_latency_cycles`](Self::lower_latency_cycles) stages) must fit
    /// the same clock.
    pub fn cycle_time_ns(&self) -> f64 {
        let upper = self.upper.access_time_ns();
        let lower = self.lower.access_time_ns() / 2.0;
        upper.max(lower)
    }

    /// Lower-level access latency in processor cycles at the cycle time
    /// from [`cycle_time_ns`](Self::cycle_time_ns).
    pub fn lower_latency_cycles(&self) -> u64 {
        let cycles = self.lower.access_time_ns() / self.cycle_time_ns();
        cycles.ceil() as u64
    }
}

impl fmt::Display for TwoLevelDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rfc[upper {} | lower {} | {} buses]", self.upper, self.lower, self.buses)
    }
}

/// Either register-file design, for code that sweeps both kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegFileDesign {
    /// A conventional single-banked file.
    Single(SingleBankDesign),
    /// The two-level register file cache.
    TwoLevel(TwoLevelDesign),
}

impl RegFileDesign {
    /// Total silicon area in λ².
    pub fn area_lambda2(&self) -> f64 {
        match self {
            RegFileDesign::Single(d) => d.area_lambda2(),
            RegFileDesign::TwoLevel(d) => d.area_lambda2(),
        }
    }

    /// Processor cycle time in ns if this design sets the clock.
    pub fn cycle_time_ns(&self) -> f64 {
        match self {
            RegFileDesign::Single(d) => d.cycle_time_ns(),
            RegFileDesign::TwoLevel(d) => d.cycle_time_ns(),
        }
    }
}

impl From<SingleBankDesign> for RegFileDesign {
    fn from(d: SingleBankDesign) -> Self {
        RegFileDesign::Single(d)
    }
}

impl From<TwoLevelDesign> for RegFileDesign {
    fn from(d: TwoLevelDesign) -> Self {
        RegFileDesign::TwoLevel(d)
    }
}

impl fmt::Display for RegFileDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegFileDesign::Single(d) => d.fmt(f),
            RegFileDesign::TwoLevel(d) => d.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(model: f64, paper: f64) -> f64 {
        (model - paper).abs() / paper
    }

    /// Table 2 register-file-cache rows:
    /// (upper R, upper W, buses, lower W, area 10Kλ², cycle ns).
    const RFC_ANCHORS: [(u32, u32, u32, u32, f64, f64); 4] = [
        (3, 2, 2, 2, 10593.0, 2.45),
        (4, 3, 3, 2, 15487.0, 2.55),
        (4, 4, 4, 2, 20529.0, 2.61),
        (4, 4, 4, 3, 25296.0, 2.67),
    ];

    #[test]
    fn rfc_area_matches_table2_within_6pct() {
        for (r, w, b, lw, area, _) in RFC_ANCHORS {
            let d = TwoLevelDesign::new(128, 16, 64, r, w, lw, b);
            assert!(
                rel_err(d.area_lambda2() / 1e4, area) < 0.06,
                "{d}: {} vs {area}",
                d.area_lambda2() / 1e4
            );
        }
    }

    #[test]
    fn rfc_cycle_time_matches_table2_within_3pct() {
        for (r, w, b, lw, _, t) in RFC_ANCHORS {
            let d = TwoLevelDesign::new(128, 16, 64, r, w, lw, b);
            assert!(rel_err(d.cycle_time_ns(), t) < 0.03, "{d}: {} vs {t}", d.cycle_time_ns());
        }
    }

    #[test]
    fn rfc_lower_latency_is_two_cycles_for_paper_configs() {
        for (r, w, b, lw, _, _) in RFC_ANCHORS {
            let d = TwoLevelDesign::new(128, 16, 64, r, w, lw, b);
            assert_eq!(d.lower_latency_cycles(), 2, "{d}");
        }
    }

    #[test]
    fn pipelining_halves_cycle_time_but_not_area() {
        let one = SingleBankDesign::new(128, 64, 4, 4, 1);
        let two = SingleBankDesign::new(128, 64, 4, 4, 2);
        assert_eq!(one.area_lambda2(), two.area_lambda2());
        assert!(two.cycle_time_ns() < one.cycle_time_ns());
        assert_eq!(two.read_latency_cycles(), 2);
    }

    #[test]
    fn rfc_cycle_time_beats_non_pipelined_single_bank() {
        // The headline motivation: same-area register file cache clocks far
        // faster than a monolithic one-cycle file.
        let single = SingleBankDesign::new(128, 64, 3, 2, 1);
        let rfc = TwoLevelDesign::new(128, 16, 64, 3, 2, 2, 2);
        assert!(rfc.cycle_time_ns() < 0.6 * single.cycle_time_ns());
    }

    #[test]
    #[should_panic(expected = "smaller than the backing bank")]
    fn upper_must_be_smaller_than_lower() {
        let _ = TwoLevelDesign::new(16, 16, 64, 2, 2, 2, 1);
    }

    #[test]
    fn design_enum_dispatches() {
        let d: RegFileDesign = SingleBankDesign::new(128, 64, 3, 2, 1).into();
        assert!(d.area_lambda2() > 0.0);
        let d: RegFileDesign = TwoLevelDesign::new(128, 16, 64, 3, 2, 2, 2).into();
        assert!(d.cycle_time_ns() > 0.0);
        assert!(d.to_string().contains("rfc"));
    }
}
