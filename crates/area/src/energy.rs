//! First-order access-energy model (extension).
//!
//! The paper's related work (Rixner et al., §5) observes that partitioned
//! register files reduce power as well as area and delay. This module
//! provides a simple, documented energy model in the same spirit as the
//! area model: per-access energy proportional to the switched capacitance
//! of the wordlines and bitlines the access touches — which grows with
//! both the bank's register count and its port count.
//!
//! Energies are reported in normalized units (the energy of reading one
//! 64-bit value from a 1-port, 16-entry bank ≡ 1.0); only *ratios*
//! between organizations are meaningful, matching how the area model is
//! calibrated to relative Table 2 values.

use crate::geometry::BankGeometry;

/// Per-access energy of one bank, normalized units.
///
/// Model: the access switches one wordline (length ∝ width × ports) and
/// `width` bitline pairs (length ∝ registers × ports), so
/// `E ∝ width × (ports + c) × (1 + registers/16)`.
///
/// # Examples
///
/// ```
/// use rfcache_area::{access_energy, BankGeometry};
///
/// let small = access_energy(&BankGeometry::new(16, 64, 1, 1));
/// let big = access_energy(&BankGeometry::new(128, 64, 16, 8));
/// assert!(big > 10.0 * small);
/// ```
pub fn access_energy(bank: &BankGeometry) -> f64 {
    const PORT_OVERHEAD: f64 = 1.155; // same per-cell overhead as the area model
    const BASE_REGS: f64 = 16.0;
    let width = f64::from(bank.width_bits()) / 64.0;
    let ports = f64::from(bank.total_ports()) + PORT_OVERHEAD;
    let height = 1.0 + f64::from(bank.registers()) / BASE_REGS;
    // Normalize so the reference bank (16 regs, 1R+0W... use 1 total port)
    // comes out at 1.0.
    let reference = (1.0 + PORT_OVERHEAD) * 2.0;
    width * ports * height / reference
}

/// Average register-access energy per instruction for the three compared
/// organizations, normalized units. `reads`/`writes` are per-instruction
/// averages; the register file cache splits traffic between its banks
/// according to the measured hit fractions.
///
/// # Examples
///
/// ```
/// use rfcache_area::energy_per_instruction;
///
/// // Typical traffic: 1.1 reads and 0.8 writes per instruction, with the
/// // rfc serving 70% of reads from the upper bank and caching 40% of
/// // results.
/// let e = energy_per_instruction(1.1, 0.8, 0.7, 0.4);
/// assert!(e.rfc < e.single_bank, "the rfc's small upper bank wins on energy");
/// ```
pub fn energy_per_instruction(
    reads_per_inst: f64,
    writes_per_inst: f64,
    rfc_upper_read_frac: f64,
    rfc_cached_frac: f64,
) -> EnergyComparison {
    let single = BankGeometry::new(128, 64, 16, 8);
    let upper = BankGeometry::new(16, 64, 16, 8 + 2);
    let lower = BankGeometry::new(128, 64, 2, 8);

    let e_single = access_energy(&single) * (reads_per_inst + writes_per_inst);

    // rfc: reads hit the upper bank (or miss → lower read + upper write
    // via a bus); every write goes to the lower bank, cached results also
    // to the upper bank.
    let miss_frac = 1.0 - rfc_upper_read_frac;
    let e_rfc_reads = reads_per_inst
        * (rfc_upper_read_frac * access_energy(&upper)
            + miss_frac * (access_energy(&lower) + access_energy(&upper)));
    let e_rfc_writes =
        writes_per_inst * (access_energy(&lower) + rfc_cached_frac * access_energy(&upper));

    EnergyComparison { single_bank: e_single, rfc: e_rfc_reads + e_rfc_writes }
}

/// Energy-per-instruction comparison, normalized units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparison {
    /// Monolithic 128-register, 16R/8W single bank.
    pub single_bank: f64,
    /// Two-level register file cache with the given traffic split.
    pub rfc: f64,
}

impl EnergyComparison {
    /// Energy saving of the register file cache relative to the single
    /// bank (positive = rfc cheaper).
    pub fn rfc_saving(&self) -> f64 {
        1.0 - self.rfc / self.single_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_monotone_in_geometry() {
        let base = access_energy(&BankGeometry::new(64, 64, 4, 2));
        assert!(access_energy(&BankGeometry::new(128, 64, 4, 2)) > base);
        assert!(access_energy(&BankGeometry::new(64, 64, 8, 2)) > base);
        assert!(access_energy(&BankGeometry::new(64, 128, 4, 2)) > base);
    }

    #[test]
    fn rfc_saves_energy_at_realistic_traffic_splits() {
        // Splits measured by `experiments sources`: 30-50% of reads via
        // bypass never reach any bank; of the bank reads, most hit the
        // upper level; ~20-50% of results are cached.
        let e = energy_per_instruction(1.0, 0.8, 0.85, 0.35);
        assert!(e.rfc_saving() > 0.3, "saving {}", e.rfc_saving());
    }

    #[test]
    fn pathological_miss_rates_shrink_the_saving() {
        // If every read missed the upper bank, each read touches both
        // banks; the saving shrinks well below the realistic split's
        // (though the few-ported lower bank keeps it positive).
        let good = energy_per_instruction(1.0, 0.8, 0.85, 0.35);
        let bad = energy_per_instruction(1.0, 0.8, 0.0, 1.0);
        assert!(
            bad.rfc_saving() < good.rfc_saving() - 0.1,
            "bad {} vs good {}",
            bad.rfc_saving(),
            good.rfc_saving()
        );
    }
}
