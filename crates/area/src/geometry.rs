//! Geometry of a single register bank and the calibrated analytical models.

use std::fmt;

/// Calibrated model constants (λ = 0.5 µm process, fitted to Table 2 of the
/// paper — see the crate-level documentation).
mod consts {
    /// Area per bit-cell track², λ² (`K` in `area = K·regs·bits·(p+C)²`).
    pub const AREA_K: f64 = 351.9;
    /// Fixed per-cell track overhead added to the port count (`C` above):
    /// power rails and the cell transistors themselves.
    pub const AREA_C: f64 = 1.155;
    /// Access time intercept, ns.
    pub const T_ALPHA: f64 = 0.627;
    /// Access time per log2(registers), ns (decoder + wordline length).
    pub const T_BETA: f64 = 0.3997;
    /// Port slope intercept, ns per port.
    pub const T_GAMMA: f64 = -0.2676;
    /// Port slope growth per log2(registers), ns per port (bitline loading
    /// grows with both the number of ports and the column height).
    pub const T_DELTA: f64 = 0.0749;
    /// Lower bound on the per-port slope, ns per port. For very small banks
    /// the fitted slope would go non-positive; physically each port always
    /// adds some wire load.
    pub const T_SLOPE_MIN: f64 = 0.02;
}

/// Physical geometry of one register bank: storage size and port counts.
///
/// This is the unit the analytical models operate on. A conventional
/// register file is one bank; the register file cache is two banks (plus
/// buses, each of which adds a read port to the lower bank and a write port
/// to the upper bank — see [`TwoLevelDesign`](crate::TwoLevelDesign)).
///
/// # Examples
///
/// ```
/// use rfcache_area::BankGeometry;
/// let bank = BankGeometry::new(128, 64, 16, 8);
/// assert_eq!(bank.total_ports(), 24);
/// assert!(bank.area_lambda2() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankGeometry {
    registers: u32,
    width_bits: u32,
    read_ports: u32,
    write_ports: u32,
}

impl BankGeometry {
    /// Creates a bank geometry.
    ///
    /// # Panics
    ///
    /// Panics if `registers` or `width_bits` is zero, or if the bank has no
    /// ports at all.
    pub fn new(registers: u32, width_bits: u32, read_ports: u32, write_ports: u32) -> Self {
        assert!(registers > 0, "bank must hold at least one register");
        assert!(width_bits > 0, "bank width must be positive");
        assert!(read_ports + write_ports > 0, "bank must have at least one port");
        BankGeometry { registers, width_bits, read_ports, write_ports }
    }

    /// Number of registers in the bank.
    pub fn registers(&self) -> u32 {
        self.registers
    }

    /// Width of each register in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Number of read ports.
    pub fn read_ports(&self) -> u32 {
        self.read_ports
    }

    /// Number of write ports.
    pub fn write_ports(&self) -> u32 {
        self.write_ports
    }

    /// Total port count (read + write); the quantity both models depend on.
    pub fn total_ports(&self) -> u32 {
        self.read_ports + self.write_ports
    }

    /// Silicon area of the bank in λ².
    ///
    /// Model: each port adds one wordline track to the cell height and one
    /// bitline track to the cell width, so cell area grows quadratically
    /// with the port count: `area = K · registers · width · (ports + C)²`.
    pub fn area_lambda2(&self) -> f64 {
        let p = f64::from(self.total_ports());
        let cells = f64::from(self.registers) * f64::from(self.width_bits);
        consts::AREA_K * cells * (p + consts::AREA_C).powi(2)
    }

    /// Access time of the bank in nanoseconds (λ = 0.5 µm process).
    ///
    /// Model: `t = α + β·log2(registers) + max(γ + δ·log2(registers), s_min)·ports`.
    /// The log term models decoder depth and wordline length; the per-port
    /// slope grows with bank height because every added port lengthens the
    /// bitlines of every cell in a column.
    pub fn access_time_ns(&self) -> f64 {
        let lg = f64::from(self.registers).log2();
        let slope = (consts::T_GAMMA + consts::T_DELTA * lg).max(consts::T_SLOPE_MIN);
        consts::T_ALPHA + consts::T_BETA * lg + slope * f64::from(self.total_ports())
    }
}

impl fmt::Display for BankGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}b {}R/{}W",
            self.registers, self.width_bits, self.read_ports, self.write_ports
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(model: f64, paper: f64) -> f64 {
        (model - paper).abs() / paper
    }

    /// Table 2 anchor points, single-banked column: (R, W, area 10Kλ², ns).
    const SINGLE_BANK_ANCHORS: [(u32, u32, f64, f64); 4] = [
        (3, 2, 10921.0, 4.71),
        (3, 3, 15070.0, 4.98),
        (4, 3, 18855.0, 5.22),
        (4, 4, 24163.0, 5.48),
    ];

    #[test]
    fn area_matches_table2_single_bank_anchors() {
        for (r, w, area, _) in SINGLE_BANK_ANCHORS {
            let g = BankGeometry::new(128, 64, r, w);
            assert!(
                rel_err(g.area_lambda2() / 1e4, area) < 0.025,
                "{g}: {} vs {area}",
                g.area_lambda2() / 1e4
            );
        }
    }

    #[test]
    fn access_time_matches_table2_single_bank_anchors() {
        for (r, w, _, t) in SINGLE_BANK_ANCHORS {
            let g = BankGeometry::new(128, 64, r, w);
            assert!(rel_err(g.access_time_ns(), t) < 0.01, "{g}: {} vs {t}", g.access_time_ns());
        }
    }

    /// Upper-level anchors: 16 registers, ports = R + W + B, cycle time ns.
    #[test]
    fn access_time_matches_table2_upper_bank_anchors() {
        for (ports, t) in [(7u32, 2.45), (10, 2.55), (12, 2.61)] {
            let g = BankGeometry::new(16, 64, ports - 2, 2);
            assert!(
                rel_err(g.access_time_ns(), t) < 0.01,
                "{}: {} vs {t}",
                ports,
                g.access_time_ns()
            );
        }
    }

    #[test]
    fn area_monotonic_in_every_dimension() {
        let base = BankGeometry::new(128, 64, 4, 4);
        assert!(BankGeometry::new(256, 64, 4, 4).area_lambda2() > base.area_lambda2());
        assert!(BankGeometry::new(128, 128, 4, 4).area_lambda2() > base.area_lambda2());
        assert!(BankGeometry::new(128, 64, 5, 4).area_lambda2() > base.area_lambda2());
        assert!(BankGeometry::new(128, 64, 4, 5).area_lambda2() > base.area_lambda2());
    }

    #[test]
    fn access_time_monotonic_in_ports_even_for_tiny_banks() {
        for regs in [8u32, 16, 32, 64, 128, 256] {
            let mut prev = 0.0;
            for p in 2..32 {
                let g = BankGeometry::new(regs, 64, p, 2);
                let t = g.access_time_ns();
                assert!(t > prev, "regs={regs} ports={p}");
                prev = t;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_registers_rejected() {
        let _ = BankGeometry::new(0, 64, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = BankGeometry::new(16, 64, 0, 0);
    }
}
