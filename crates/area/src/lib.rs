//! Analytical area and access-time models for multiported register files.
//!
//! The paper evaluates register file implementations with an area model in
//! λ² units (Llosa & Arazabal, UPC-DAC-1998-35) and an access-time model
//! extending CACTI (Wilton & Jouppi), configured for a λ = 0.5 µm process.
//! Neither model is publicly available, so this crate implements the same
//! *functional forms* — bank area quadratic in the total port count (each
//! port adds a wordline and a bitline track in both dimensions of the cell),
//! access time affine in the port count with a logarithmic size term — and
//! calibrates their constants against the paper's own Table 2 anchor
//! points. The resulting model reproduces all sixteen Table 2 area and
//! cycle-time entries within 6% (most within 2.5%); the calibration tests
//! in this crate pin this down.
//!
//! # Examples
//!
//! ```
//! use rfcache_area::BankGeometry;
//!
//! // The paper's C1 single-banked file: 128 regs, 3 read + 2 write ports.
//! let c1 = BankGeometry::new(128, 64, 3, 2);
//! let area = c1.area_lambda2() / 1e4; // Table 2 reports 10K λ² units
//! assert!((area - 10921.0).abs() / 10921.0 < 0.05);
//! let t = c1.access_time_ns();
//! assert!((t - 4.71).abs() < 0.05);
//! ```

#![warn(missing_docs)]

mod bypass;
mod design;
mod energy;
mod geometry;
mod pareto;
mod table2;

pub use bypass::BypassModel;
pub use design::{RegFileDesign, SingleBankDesign, TwoLevelDesign};
pub use energy::{access_energy, energy_per_instruction, EnergyComparison};
pub use geometry::BankGeometry;
pub use pareto::{pareto_frontier, ParetoPoint};
pub use table2::{table2_configs, Table2Config, Table2Row};
