//! Pareto-frontier selection used by the paper's Figure 8: among all port
//! configurations of one architecture, keep only those for which no other
//! configuration has both lower area and higher performance.

/// A candidate point in the area/performance plane.
///
/// # Examples
///
/// ```
/// use rfcache_area::{pareto_frontier, ParetoPoint};
///
/// let points = vec![
///     ParetoPoint { area: 1.0, perf: 1.0, payload: "a" },
///     ParetoPoint { area: 2.0, perf: 3.0, payload: "b" },
///     ParetoPoint { area: 3.0, perf: 2.0, payload: "c" }, // dominated by "b"
/// ];
/// let frontier = pareto_frontier(points);
/// let names: Vec<_> = frontier.iter().map(|p| p.payload).collect();
/// assert_eq!(names, vec!["a", "b"]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint<T> {
    /// Cost axis (silicon area, λ²).
    pub area: f64,
    /// Benefit axis (IPC or relative performance).
    pub perf: f64,
    /// The configuration this point describes.
    pub payload: T,
}

/// Returns the subset of `points` not dominated by any other point, sorted
/// by increasing area.
///
/// A point is *dominated* when another point has area ≤ its area **and**
/// perf ≥ its perf, with at least one strict inequality. Ties on both axes
/// keep the first occurrence.
pub fn pareto_frontier<T>(mut points: Vec<ParetoPoint<T>>) -> Vec<ParetoPoint<T>> {
    // Sort by area ascending; break ties by perf descending so the best
    // config at a given area comes first and suppresses the rest.
    points.sort_by(|a, b| a.area.total_cmp(&b.area).then_with(|| b.perf.total_cmp(&a.perf)));
    let mut frontier: Vec<ParetoPoint<T>> = Vec::new();
    let mut best_perf = f64::NEG_INFINITY;
    for p in points {
        if p.perf > best_perf {
            best_perf = p.perf;
            frontier.push(p);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(area: f64, perf: f64, id: u32) -> ParetoPoint<u32> {
        ParetoPoint { area, perf, payload: id }
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(Vec::<ParetoPoint<u32>>::new()).is_empty());
    }

    #[test]
    fn single_point_survives() {
        let f = pareto_frontier(vec![pt(5.0, 1.0, 7)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].payload, 7);
    }

    #[test]
    fn dominated_points_removed() {
        let f = pareto_frontier(vec![
            pt(1.0, 1.0, 0),
            pt(2.0, 2.0, 1),
            pt(2.5, 1.5, 2), // dominated by 1
            pt(3.0, 3.0, 3),
            pt(3.0, 2.9, 4), // dominated by 3 (same area, lower perf)
        ]);
        let ids: Vec<_> = f.iter().map(|p| p.payload).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn frontier_is_sorted_and_strictly_improving() {
        let f = pareto_frontier(vec![
            pt(4.0, 4.0, 0),
            pt(1.0, 1.0, 1),
            pt(3.0, 3.0, 2),
            pt(2.0, 2.0, 3),
        ]);
        for w in f.windows(2) {
            assert!(w[0].area <= w[1].area);
            assert!(w[0].perf < w[1].perf);
        }
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn equal_points_keep_one() {
        let f = pareto_frontier(vec![pt(1.0, 1.0, 0), pt(1.0, 1.0, 1)]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn cheaper_but_worse_point_kept() {
        // A smaller, slower configuration is still Pareto-optimal.
        let f = pareto_frontier(vec![pt(1.0, 0.5, 0), pt(10.0, 2.0, 1)]);
        assert_eq!(f.len(), 2);
    }
}
