//! The paper's Table 2: four cost-equivalent configurations (C1–C4) of the
//! three register file architectures, with the paper's reported values for
//! comparison against this crate's model.

use crate::design::{SingleBankDesign, TwoLevelDesign};
use std::fmt;

/// Port counts of one Table 2 configuration (C1..C4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Config {
    /// Configuration name ("C1".."C4").
    pub name: &'static str,
    /// Single-banked read ports.
    pub single_read: u32,
    /// Single-banked write ports.
    pub single_write: u32,
    /// Register-file-cache upper-level read ports.
    pub rfc_upper_read: u32,
    /// Register-file-cache upper-level write ports (result writes; bus
    /// write ports come on top, one per bus).
    pub rfc_upper_write: u32,
    /// Register-file-cache lower-level write ports.
    pub rfc_lower_write: u32,
    /// Inter-level buses.
    pub rfc_buses: u32,
    /// Paper-reported single-banked area, 10K λ² units.
    pub paper_single_area: f64,
    /// Paper-reported non-pipelined single-banked cycle time, ns.
    pub paper_single_cycle_1s: f64,
    /// Paper-reported two-stage pipelined single-banked cycle time, ns.
    pub paper_single_cycle_2s: f64,
    /// Paper-reported register-file-cache area, 10K λ² units.
    pub paper_rfc_area: f64,
    /// Paper-reported register-file-cache cycle time, ns.
    pub paper_rfc_cycle: f64,
}

impl Table2Config {
    /// The non-pipelined ("one-cycle") single-banked design of this row.
    pub fn single_bank_1stage(&self, registers: u32) -> SingleBankDesign {
        SingleBankDesign::new(registers, 64, self.single_read, self.single_write, 1)
    }

    /// The two-stage pipelined ("two-cycle") single-banked design.
    pub fn single_bank_2stage(&self, registers: u32) -> SingleBankDesign {
        SingleBankDesign::new(registers, 64, self.single_read, self.single_write, 2)
    }

    /// The register-file-cache design of this row.
    pub fn register_file_cache(
        &self,
        lower_registers: u32,
        upper_registers: u32,
    ) -> TwoLevelDesign {
        TwoLevelDesign::new(
            lower_registers,
            upper_registers,
            64,
            self.rfc_upper_read,
            self.rfc_upper_write,
            self.rfc_lower_write,
            self.rfc_buses,
        )
    }
}

/// The four configurations of Table 2.
pub fn table2_configs() -> [Table2Config; 4] {
    [
        Table2Config {
            name: "C1",
            single_read: 3,
            single_write: 2,
            rfc_upper_read: 3,
            rfc_upper_write: 2,
            rfc_lower_write: 2,
            rfc_buses: 2,
            paper_single_area: 10921.0,
            paper_single_cycle_1s: 4.71,
            paper_single_cycle_2s: 2.35,
            paper_rfc_area: 10593.0,
            paper_rfc_cycle: 2.45,
        },
        Table2Config {
            name: "C2",
            single_read: 3,
            single_write: 3,
            rfc_upper_read: 4,
            rfc_upper_write: 3,
            rfc_lower_write: 2,
            rfc_buses: 3,
            paper_single_area: 15070.0,
            paper_single_cycle_1s: 4.98,
            paper_single_cycle_2s: 2.49,
            paper_rfc_area: 15487.0,
            paper_rfc_cycle: 2.55,
        },
        Table2Config {
            name: "C3",
            single_read: 4,
            single_write: 3,
            rfc_upper_read: 4,
            rfc_upper_write: 4,
            rfc_lower_write: 2,
            rfc_buses: 4,
            paper_single_area: 18855.0,
            paper_single_cycle_1s: 5.22,
            paper_single_cycle_2s: 2.61,
            paper_rfc_area: 20529.0,
            paper_rfc_cycle: 2.61,
        },
        Table2Config {
            name: "C4",
            single_read: 4,
            single_write: 4,
            rfc_upper_read: 4,
            rfc_upper_write: 4,
            rfc_lower_write: 3,
            rfc_buses: 4,
            paper_single_area: 24163.0,
            paper_single_cycle_1s: 5.48,
            paper_single_cycle_2s: 2.74,
            paper_rfc_area: 25296.0,
            paper_rfc_cycle: 2.67,
        },
    ]
}

/// One fully evaluated Table 2 row: this crate's model values next to the
/// paper's, for the standard 128-register / 16-entry machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// The configuration evaluated.
    pub config: Table2Config,
    /// Model area of the single-banked file, 10K λ².
    pub model_single_area: f64,
    /// Model cycle time of the non-pipelined single-banked file, ns.
    pub model_single_cycle_1s: f64,
    /// Model cycle time of the two-stage single-banked file, ns.
    pub model_single_cycle_2s: f64,
    /// Model area of the register file cache, 10K λ².
    pub model_rfc_area: f64,
    /// Model cycle time of the register file cache, ns.
    pub model_rfc_cycle: f64,
}

impl Table2Row {
    /// Evaluates one configuration with the calibrated model.
    pub fn evaluate(config: Table2Config) -> Self {
        let s1 = config.single_bank_1stage(128);
        let s2 = config.single_bank_2stage(128);
        let rfc = config.register_file_cache(128, 16);
        Table2Row {
            config,
            model_single_area: s1.area_lambda2() / 1e4,
            model_single_cycle_1s: s1.cycle_time_ns(),
            model_single_cycle_2s: s2.cycle_time_ns(),
            model_rfc_area: rfc.area_lambda2() / 1e4,
            model_rfc_cycle: rfc.cycle_time_ns(),
        }
    }
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: single area {:>7.0} (paper {:>7.0})  1-cycle {:.2}ns ({:.2})  2-cycle {:.2}ns ({:.2})  rfc area {:>7.0} ({:>7.0})  rfc cycle {:.2}ns ({:.2})",
            self.config.name,
            self.model_single_area,
            self.config.paper_single_area,
            self.model_single_cycle_1s,
            self.config.paper_single_cycle_1s,
            self.model_single_cycle_2s,
            self.config.paper_single_cycle_2s,
            self.model_rfc_area,
            self.config.paper_rfc_area,
            self.model_rfc_cycle,
            self.config.paper_rfc_cycle,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_named_configs() {
        let names: Vec<_> = table2_configs().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["C1", "C2", "C3", "C4"]);
    }

    #[test]
    fn model_reproduces_every_table2_entry_within_6pct() {
        for cfg in table2_configs() {
            let row = Table2Row::evaluate(cfg);
            let checks = [
                (row.model_single_area, cfg.paper_single_area),
                (row.model_single_cycle_1s, cfg.paper_single_cycle_1s),
                (row.model_single_cycle_2s, cfg.paper_single_cycle_2s),
                (row.model_rfc_area, cfg.paper_rfc_area),
                (row.model_rfc_cycle, cfg.paper_rfc_cycle),
            ];
            for (model, paper) in checks {
                let err = (model - paper).abs() / paper;
                assert!(err < 0.06, "{}: model {model} vs paper {paper}", cfg.name);
            }
        }
    }

    #[test]
    fn areas_increase_from_c1_to_c4() {
        let rows: Vec<_> = table2_configs().map(Table2Row::evaluate).into_iter().collect();
        for w in rows.windows(2) {
            assert!(w[0].model_single_area < w[1].model_single_area);
            assert!(w[0].model_rfc_area < w[1].model_rfc_area);
        }
    }

    #[test]
    fn display_includes_config_name() {
        let row = Table2Row::evaluate(table2_configs()[0]);
        assert!(row.to_string().starts_with("C1:"));
    }
}
