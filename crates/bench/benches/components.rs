//! Component micro-benchmarks: the kernels the cycle-level simulator
//! spends its time in. These guard the simulator's own performance (the
//! figures sweep hundreds of configurations, so regressions here multiply).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rfcache_core::{
    NullWindow, RegFileCacheConfig, RegFileCacheModel, RegFileModel, SingleBankConfig,
    SingleBankModel,
};
use rfcache_frontend::Gshare;
use rfcache_isa::PhysReg;
use rfcache_mem::{CacheConfig, SetAssocCache};
use rfcache_workload::{BenchProfile, TraceGenerator};

fn bench_gshare(c: &mut Criterion) {
    c.bench_function("gshare_predict_update_1k", |b| {
        let mut bp = Gshare::new(16);
        let mut pc = 0x1000u64;
        b.iter(|| {
            for i in 0..1000u64 {
                pc = pc.wrapping_add(16);
                bp.predict_and_update(pc, i % 3 == 0);
            }
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("dcache_access_1k", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::spec_dcache());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                cache.access(addr % (1 << 20), addr & 4 == 0);
            }
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_generate_10k_gcc", |b| {
        let profile = BenchProfile::by_name("gcc").expect("gcc exists");
        b.iter_batched(
            || TraceGenerator::new(profile, 7),
            |generator| generator.take(10_000).count(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_single_bank_protocol(c: &mut Criterion) {
    c.bench_function("single_bank_issue_protocol_1k", |b| {
        let mut rf = SingleBankModel::new(SingleBankConfig::one_cycle(), 128);
        for i in 0..128u16 {
            rf.seed_initial(PhysReg::new(i));
        }
        b.iter(|| {
            for cycle in 0..1000u64 {
                rf.begin_cycle(cycle);
                let preg = PhysReg::new((cycle % 96) as u16 + 32);
                rf.on_alloc(preg);
                rf.schedule_result(preg, cycle);
                let _ = rf.try_writeback(preg, cycle, &NullWindow);
                if let Ok(plan) = rf.plan_read(&[preg], cycle) {
                    rf.commit_read(&plan, cycle);
                }
                rf.on_free(preg);
            }
        });
    });
}

fn bench_rfc_protocol(c: &mut Criterion) {
    c.bench_function("rfc_issue_protocol_1k", |b| {
        let mut rf = RegFileCacheModel::new(RegFileCacheConfig::paper_default(), 128);
        for i in 0..128u16 {
            rf.seed_initial(PhysReg::new(i));
        }
        b.iter(|| {
            for cycle in 0..1000u64 {
                rf.begin_cycle(cycle);
                let preg = PhysReg::new((cycle % 96) as u16 + 32);
                rf.on_alloc(preg);
                rf.schedule_result(preg, cycle);
                let _ = rf.try_writeback(preg, cycle, &NullWindow);
                if let Ok(plan) = rf.plan_read(&[preg], cycle) {
                    rf.commit_read(&plan, cycle);
                }
                rf.request_prefetch(preg, cycle);
                rf.on_free(preg);
            }
        });
    });
}

fn bench_area_model(c: &mut Criterion) {
    c.bench_function("area_model_table2", |b| {
        b.iter(|| {
            rfcache_area::table2_configs()
                .map(rfcache_area::Table2Row::evaluate)
                .iter()
                .map(|r| r.model_rfc_area)
                .sum::<f64>()
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("cpu_20k_insts_li_1cycle", |b| {
        b.iter(|| {
            rfcache_sim::RunSpec::known(
                "li",
                rfcache_core::RegFileConfig::Single(SingleBankConfig::one_cycle()),
            )
            .insts(20_000)
            .warmup(0)
            .run()
            .metrics
            .committed
        });
    });
    group.bench_function("cpu_20k_insts_li_rfc", |b| {
        b.iter(|| {
            rfcache_sim::RunSpec::known(
                "li",
                rfcache_core::RegFileConfig::Cache(RegFileCacheConfig::paper_default()),
            )
            .insts(20_000)
            .warmup(0)
            .run()
            .metrics
            .committed
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gshare,
    bench_cache,
    bench_trace_generation,
    bench_single_bank_protocol,
    bench_rfc_protocol,
    bench_area_model,
    bench_end_to_end,
);
criterion_main!(benches);
