//! One reduced-scale Criterion benchmark per paper table/figure.
//!
//! Each benchmark executes the same code path as the corresponding
//! `experiments <figN>` invocation at smoke scale, so `cargo bench`
//! exercises every experiment end-to-end and tracks its cost. The
//! full-scale series (the numbers recorded in EXPERIMENTS.md) come from
//! the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use rfcache_sim::experiments::{
    ablation, fig1, fig2, fig3, fig5, fig6, fig7, fig8, fig9, onelevel, readstats, table2,
    ExperimentOpts,
};

fn smoke() -> ExperimentOpts {
    ExperimentOpts::smoke()
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("table2", |b| b.iter(|| table2::run().max_relative_error()));
    group.bench_function("fig1", |b| b.iter(|| fig1::run(&smoke()).saturation_gain()));
    group.bench_function("fig2", |b| b.iter(|| fig2::run(&smoke()).int_hmean.len()));
    group.bench_function("fig3", |b| b.iter(|| fig3::run(&smoke()).int_ready.percentile(0.9)));
    group.bench_function("readstats", |b| b.iter(|| readstats::run(&smoke()).int_avg));
    group.bench_function("fig5", |b| b.iter(|| fig5::run(&smoke()).int_hmean.len()));
    group.bench_function("fig6", |b| b.iter(|| fig6::run(&smoke()).int_hmean.len()));
    group.bench_function("fig7", |b| b.iter(|| fig7::run(&smoke()).int_hmean.len()));
    group.bench_function("fig8", |b| b.iter(|| fig8::run(&smoke()).archs.len()));
    group.bench_function("fig9", |b| b.iter(|| fig9::run(&smoke()).rfc_speedup(0)));
    group.bench_function("ablation", |b| b.iter(|| ablation::run(&smoke()).rows.len()));
    group.bench_function("onelevel", |b| b.iter(|| onelevel::run(&smoke()).rows.len()));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
