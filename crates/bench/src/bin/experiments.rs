//! Regenerates the tables and figures of the paper's evaluation, driven
//! by the scenario registry in `rfcache_sim::scenario`.
//!
//! ```text
//! experiments --list
//! experiments <name>... | all [--insts N] [--warmup N] [--seed N] [--quick] [--jobs N]
//!                             [--csv DIR] [--json DIR]
//! ```
//!
//! `--list` enumerates the registered scenarios; `all` runs every one in
//! canonical order. Duplicate scenario names are run once (with a
//! warning). All selected scenarios are scheduled through **one**
//! cross-scenario work queue (`rfcache_sim::run_campaign`), so the
//! worker pool stays saturated across scenario boundaries; `--jobs N`
//! caps the worker threads (default: one per available core). The
//! reports are byte-identical to running each scenario on its own.
//!
//! `--csv DIR` / `--json DIR` additionally write each scenario's report
//! table as `DIR/<name>.csv` / `DIR/<name>.json` for plotting.
//!
//! Defaults: 200k measured instructions per benchmark after 60k warmup
//! (`rfcache_sim::DEFAULT_INSTS` / `DEFAULT_WARMUP`; the paper simulates
//! 100M after skipping initialization).

use rfcache_sim::experiments::ExperimentOpts;
use rfcache_sim::{run_campaign_planned, scenario, write_csv, write_json};
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "usage: experiments --list
       experiments <name>... | all [--insts N] [--warmup N] [--seed N] [--quick] [--jobs N]
                                   [--csv DIR] [--json DIR]
run `experiments --list` for the registered scenario names";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        list();
        return;
    }

    let mut opts = ExperimentOpts::default();
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--insts" => opts.insts = parse_num("--insts", it.next()),
            "--warmup" => opts.warmup = parse_num("--warmup", it.next()),
            "--seed" => opts.seed = parse_num("--seed", it.next()),
            "--jobs" => opts.jobs = parse_num("--jobs", it.next()) as usize,
            "--quick" => opts.quick = true,
            "--csv" => csv_dir = Some(parse_dir("--csv", it.next())),
            "--json" => json_dir = Some(parse_dir("--json", it.next())),
            flag if flag.starts_with("--") => {
                eprintln!("unknown option {flag}\n{USAGE}");
                std::process::exit(2);
            }
            name => {
                if names.contains(&name) {
                    eprintln!("warning: duplicate scenario name {name} ignored");
                } else {
                    names.push(name);
                }
            }
        }
    }

    let selected: Vec<&'static scenario::Scenario> = if names.contains(&"all") {
        if names.len() > 1 {
            eprintln!("`all` cannot be combined with scenario names\n{USAGE}");
            std::process::exit(2);
        }
        scenario::registry().iter().collect()
    } else {
        names
            .iter()
            .map(|name| {
                scenario::find(name).unwrap_or_else(|| {
                    eprintln!("unknown experiment {name}\n{USAGE}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment selected\n{USAGE}");
        std::process::exit(2);
    }

    // One flat work queue across every selected scenario: the tail of
    // one sweep overlaps the head of the next.
    let plans: Vec<_> = selected.iter().map(|s| s.plan(&opts)).collect();
    let runs: usize = plans.iter().map(Vec::len).sum();
    let start = Instant::now();
    let reports = run_campaign_planned(&selected, &opts, plans);
    for (s, report) in selected.iter().zip(&reports) {
        println!("{report}");
        let table = report.to_table();
        if let Some(dir) = &csv_dir {
            write_csv(dir, s.name, &table).unwrap_or_else(|e| {
                die(&format!("cannot write {}/{}.csv: {e}", dir.display(), s.name))
            });
        }
        if let Some(dir) = &json_dir {
            write_json(dir, s.name, &table).unwrap_or_else(|e| {
                die(&format!("cannot write {}/{}.json: {e}", dir.display(), s.name))
            });
        }
    }
    eprintln!(
        "[campaign: {} scenario(s), {} simulation(s), {:.1}s]",
        selected.len(),
        runs,
        start.elapsed().as_secs_f64()
    );
}

fn list() {
    let width = scenario::registry().iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in scenario::registry() {
        println!("{:width$}  {}", s.name, s.description);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn parse_num(flag: &str, arg: Option<&String>) -> u64 {
    let Some(arg) = arg else {
        eprintln!("missing value for {flag}\n{USAGE}");
        std::process::exit(2);
    };
    arg.replace('_', "").parse().unwrap_or_else(|_| {
        eprintln!("invalid value {arg} for {flag}: expected a number\n{USAGE}");
        std::process::exit(2);
    })
}

fn parse_dir(flag: &str, arg: Option<&String>) -> PathBuf {
    // A following `--flag` is not a directory: without this check,
    // `--csv --quick` would silently swallow the next flag as its value.
    match arg {
        Some(arg) if !arg.starts_with("--") => PathBuf::from(arg),
        _ => {
            eprintln!("missing value for {flag}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
