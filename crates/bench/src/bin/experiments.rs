//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <fig1|fig2|fig3|readstats|fig5|fig6|fig7|fig8|table2|fig9|ablation|all>
//!             [--insts N] [--warmup N] [--seed N] [--quick]
//! ```
//!
//! Defaults: 200k measured instructions per benchmark after 60k warmup
//! (the paper simulates 100M after skipping initialization; see
//! EXPERIMENTS.md for the scaling discussion).

use rfcache_sim::experiments::{
    ablation, onelevel, sources, fig1, fig2, fig3, fig5, fig6, fig7, fig8, fig9, readstats, table2, ExperimentOpts,
};
use std::time::Instant;

const USAGE: &str = "usage: experiments <fig1|fig2|fig3|readstats|fig5|fig6|fig7|fig8|table2|fig9|ablation|onelevel|sources|all> \
     [--insts N] [--warmup N] [--seed N] [--quick]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let mut opts = ExperimentOpts::default();
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--insts" => opts.insts = parse_num(it.next()),
            "--warmup" => opts.warmup = parse_num(it.next()),
            "--seed" => opts.seed = parse_num(it.next()),
            "--quick" => opts.quick = true,
            other => {
                eprintln!("unknown option {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let all = [
        "table2", "fig1", "fig2", "fig3", "readstats", "fig5", "fig6", "fig7", "fig8", "fig9",
        "ablation", "onelevel", "sources",
    ];
    let selected: Vec<&str> = if which == "all" {
        all.to_vec()
    } else if all.contains(&which.as_str()) {
        vec![which.as_str()]
    } else {
        eprintln!("unknown experiment {which}\n{USAGE}");
        std::process::exit(2);
    };

    for name in selected {
        let start = Instant::now();
        match name {
            "fig1" => println!("{}", fig1::run(&opts)),
            "fig2" => println!("{}", fig2::run(&opts)),
            "fig3" => println!("{}", fig3::run(&opts)),
            "readstats" => println!("{}", readstats::run(&opts)),
            "fig5" => println!("{}", fig5::run(&opts)),
            "fig6" => println!("{}", fig6::run(&opts)),
            "fig7" => println!("{}", fig7::run(&opts)),
            "fig8" => println!("{}", fig8::run(&opts)),
            "table2" => println!("{}", table2::run()),
            "fig9" => println!("{}", fig9::run(&opts)),
            "ablation" => println!("{}", ablation::run(&opts)),
            "onelevel" => println!("{}", onelevel::run(&opts)),
            "sources" => println!("{}", sources::run(&opts)),
            _ => unreachable!("validated above"),
        }
        eprintln!("[{name}: {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}

fn parse_num(arg: Option<&String>) -> u64 {
    arg.and_then(|s| s.replace('_', "").parse().ok()).unwrap_or_else(|| {
        eprintln!("expected a number\n{USAGE}");
        std::process::exit(2);
    })
}
