//! Regenerates the tables and figures of the paper's evaluation, driven
//! by the scenario registry in `rfcache_sim::scenario`.
//!
//! ```text
//! experiments --list
//! experiments <name>... | all [--insts N] [--warmup N] [--seed N] [--quick] [--jobs N]
//!                             [--csv DIR] [--json DIR] [--workers N] [--dist-workers N]
//!                             [--cache DIR]
//! experiments <name>... | all [opts] --shard I/N [--out FILE] [--cache DIR]
//! experiments merge FILE... [--csv DIR] [--json DIR]
//! experiments serve --bind ADDR [--http ADDR] [--expect K] [--lease-timeout SECS]
//!                   [--chunk N] [--journal FILE [--journal-sync N]] [--cache DIR]
//!                   <name>... | all [opts] [--csv DIR] [--json DIR]
//! experiments serve --bind ADDR --http ADDR [--lease-timeout SECS] [--chunk N]
//!                   [--journal DIR [--journal-sync N]] [--cache DIR]
//!                   [--max-campaigns N]
//! experiments submit --connect ADDR <name>... | all [--insts N] [--warmup N]
//!                    [--seed N] [--quick] [--json]
//! experiments fetch --connect ADDR --id N [--timeout SECS] [--csv DIR] [--json DIR]
//! experiments work --connect ADDR [--jobs N] [--connect-timeout SECS]
//!                  [--quit-after-leases N]
//! experiments resume --journal FILE --bind ADDR [--http ADDR] [--expect K]
//!                    [--lease-timeout SECS] [--chunk N] [--journal-sync N]
//!                    [--csv DIR] [--json DIR] [--cache DIR]
//! experiments status --connect ADDR [--json]
//! experiments cache <stats|verify|clear> DIR [--json]
//! experiments bench [--repeat N] [--warmup N] [--quick] [--label STR]
//!                   [--out FILE] [--no-campaign] [--cache DIR]
//! ```
//!
//! `--list` enumerates the registered scenarios; `all` runs every one in
//! canonical order. Duplicate scenario names are run once (with a
//! warning). All selected scenarios are scheduled through **one**
//! cross-scenario work queue (`rfcache_sim::run_campaign`), so the
//! worker pool stays saturated across scenario boundaries; `--jobs N`
//! caps the worker threads (default: one per available core). The
//! reports are byte-identical to running each scenario on its own.
//!
//! `--csv DIR` / `--json DIR` additionally write each scenario's report
//! table as `DIR/<name>.csv` / `DIR/<name>.json` for plotting.
//!
//! **Sharded campaigns.** `--shard I/N` turns the invocation into shard
//! worker `I` of `N`: the campaign plan is derived exactly as usual, but
//! only indices `i % N == I` are simulated, and instead of reports the
//! worker emits a JSON-lines shard file (campaign header + one record
//! per completed run, each stamped with its spec fingerprint) to `--out
//! FILE` or stdout. `merge` folds the shard files of all `N` workers
//! back through each scenario's assembler — after verifying that the
//! headers describe one campaign, every plan index is covered exactly
//! once, and every fingerprint matches the re-derived plan — producing
//! reports and exports byte-identical to the single-process run.
//! `--workers N` does the whole round trip in one command by spawning
//! `N` shard subprocesses of this binary (the `Subprocess` executor).
//!
//! **Distributed campaigns.** `serve` turns the invocation into a TCP
//! coordinator (the `Distributed` executor): it plans the campaign,
//! listens on `--bind ADDR`, and leases plan-index ranges to every
//! `work --connect ADDR` process that joins — on this host or others.
//! Workers re-derive the plan from the `hello` frame and prove it with
//! a campaign fingerprint; a worker that disconnects or stalls past
//! `--lease-timeout` has its in-flight indices re-issued, duplicates
//! are deduplicated by index, and the assembled reports/exports are
//! byte-identical to the single-process run. `--dist-workers N` is the
//! one-command localhost path: serve on an ephemeral port and
//! self-spawn `N` local `work` subprocesses. (`--quit-after-leases N`
//! is fault injection for tests: the worker simulates a crash after
//! completing `N` leases.)
//!
//! **The control plane.** `--http ADDR` (on `serve`, `resume`, and
//! `--dist-workers`) makes the coordinator's readiness loop additionally
//! answer plain HTTP on a second address: `GET /status` returns a JSON
//! snapshot of campaign progress (plan size, completed/leased/pending
//! counts, the per-worker roster with lease ages, journal position) and
//! `GET /healthz` answers liveness probes. `status --connect ADDR`
//! fetches `/status` and renders it as a table (`--json` passes the raw
//! JSON through for scripts).
//!
//! **The campaign service.** `serve` with **no scenario names** runs the
//! multi-campaign coordinator service (`rfcache_sim::service`) instead
//! of a single campaign: campaigns arrive over HTTP (`--http` is
//! mandatory) as `POST /campaigns` submissions and move through a
//! queued → serving → complete → fetched lifecycle while workers lease
//! from whichever campaign is serving — one coordinator process, any
//! number of campaigns, no restarts. `submit --connect ADDR <name>...`
//! POSTs a description (printing the campaign id to stdout) and `fetch
//! --connect ADDR --id N` polls until the campaign completes, prints
//! the reports, and writes `--csv`/`--json` exports — all byte-identical
//! to running the same scenarios in process. In service mode
//! `--journal` names a *directory* (each campaign write-ahead journals
//! to `campaign-<id>.journal` inside it), `--cache` pre-fills each
//! campaign at admission (so one submission's results satisfy the
//! next), `--max-campaigns N` exits cleanly after `N` campaigns are
//! fetched (CI and scripts), and a worker that connects between
//! campaigns is told to retry shortly rather than left hanging.
//! `status --connect` recognises the service's `/status` schema and
//! renders the campaign table.
//!
//! **Crash-durable campaigns.** `--journal FILE` (on `serve` and
//! `--dist-workers`) write-ahead journals the campaign: the header line
//! at start, then every verified record as it is accepted — each line
//! one `write`, `sync_data` every `--journal-sync N` records (default
//! 1; 0 = only at completion) — so the file is always a valid
//! shard-file prefix. If the coordinator crashes, `resume --journal
//! FILE --bind ADDR` re-derives the plan from the journaled header,
//! verifies the stamped campaign fingerprint, replays the completed
//! records into the slot table (deduplicated and fingerprint-verified
//! exactly like live records; a torn final line is dropped, never
//! mis-parsed), and serves only the remaining indices — reports and
//! exports come out byte-identical to an uninterrupted run.
//!
//! **Result caching.** `--cache DIR` (on campaign runs, `--shard`
//! workers, `--workers`, `--dist-workers`, `serve` and `resume`) wraps
//! every simulation in a persistent content-addressed result cache
//! (`rfcache_sim::cache`): already-simulated `RunSpec`s are served from
//! the cache (exact metrics, so reports stay byte-identical) and fresh
//! results are stored back. The directory is safe to share between
//! concurrent workers (advisory lock + atomic writes). `cache stats DIR`
//! reports entries and session hit rates (`--json` for scripts), `cache
//! verify DIR` checks every entry end to end (exit 1 on problems), and
//! `cache clear DIR` empties the store.
//!
//! **Benchmarking.** `bench` measures *simulator* throughput (cycles/sec
//! and instructions/sec of the cycle loop itself, not of the modelled
//! machine) on a fixed suite — every register file model at smoke and
//! quick scale plus the `all --quick` campaign wall time — and appends a
//! schema-versioned snapshot to the perf trajectory (`--out`, default
//! `BENCH_cycle_loop.json`). With `--cache DIR` the campaign measurement
//! runs cache-backed (as `campaign/all-quick-cached`), asserting its
//! reports are byte-identical to an uncached reference run — benching a
//! cold directory then a warm one records the cache speedup in the
//! trajectory. See `rfcache_bench::perf` and `scripts/bench_diff.py`.
//!
//! All diagnostics (warnings, progress, errors) go to stderr; stdout
//! carries only reports or, in shard-worker mode, shard records.
//!
//! Defaults: 200k measured instructions per benchmark after 60k warmup
//! (`rfcache_sim::DEFAULT_INSTS` / `DEFAULT_WARMUP`; the paper simulates
//! 100M after skipping initialization).

use rfcache_sim::cache::Cache;
use rfcache_sim::executor::{
    assemble_shard_results, read_shard_file, run_shard_cached, Distributed, InProcess, JournalSpec,
    Subprocess,
};
use rfcache_sim::experiments::ExperimentOpts;
use rfcache_sim::metrics_codec::CampaignHeader;
use rfcache_sim::sweep::SweepDef;
use rfcache_sim::transport::{self, ServeOptions, WorkOptions};
use rfcache_sim::{
    http, parse_json, run_campaign_from_parts, run_campaign_planned, run_campaign_planned_with,
    scenario, write_csv, write_json, JsonValue, Registry, RunSpec, ScenarioReport, TextTable,
};
use std::io::{BufRead as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: experiments --list [--sweep FILE]
       experiments <name>... | all [--insts N] [--warmup N] [--seed N] [--quick] [--jobs N]
                                   [--csv DIR] [--json DIR] [--workers N] [--dist-workers N]
                                   [--cache DIR] [--sweep FILE]
       experiments <name>... | all [opts] --shard I/N [--out FILE] [--cache DIR]
       experiments sweep FILE... [same options as a named campaign]
       experiments merge FILE... [--csv DIR] [--json DIR]
       experiments serve --bind ADDR [--http ADDR] [--expect K] [--lease-timeout SECS]
                         [--chunk N] [--journal FILE [--journal-sync N]] [--cache DIR]
                         <name>... | all [opts] [--csv DIR] [--json DIR] [--sweep FILE]
       experiments serve --bind ADDR --http ADDR [--lease-timeout SECS] [--chunk N]
                         [--journal DIR [--journal-sync N]] [--cache DIR]
                         [--max-campaigns N]
       experiments submit --connect ADDR <name>... | all [--insts N] [--warmup N]
                          [--seed N] [--quick] [--json] [--sweep FILE]
       experiments fetch --connect ADDR --id N [--timeout SECS] [--csv DIR] [--json DIR]
       experiments work --connect ADDR [--jobs N] [--connect-timeout SECS]
                        [--quit-after-leases N]
       experiments resume --journal FILE --bind ADDR [--http ADDR] [--expect K]
                          [--lease-timeout SECS] [--chunk N] [--journal-sync N]
                          [--csv DIR] [--json DIR] [--cache DIR]
       experiments status --connect ADDR [--json]
       experiments cache <stats|verify|clear> DIR [--json]
       experiments bench [--repeat N] [--warmup N] [--quick] [--label STR]
                         [--out FILE] [--no-campaign] [--cache DIR]
run `experiments --list` for the registered scenario names";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        list(&args);
        return;
    }
    match args[0].as_str() {
        "merge" => merge_main(&args[1..]),
        "serve" => serve_main(&args[1..]),
        "submit" => submit_main(&args[1..]),
        "fetch" => fetch_main(&args[1..]),
        "work" => work_main(&args[1..]),
        "resume" => resume_main(&args[1..]),
        "status" => status_main(&args[1..]),
        "cache" => cache_main(&args[1..]),
        "bench" => bench_main(&args[1..]),
        "sweep" => sweep_main(&args[1..]),
        _ => run_main(&args),
    }
}

/// `experiments sweep FILE...`: shorthand for a campaign whose
/// positional arguments are sweep definition files instead of scenario
/// names — every flag a named campaign takes works here too.
fn sweep_main(args: &[String]) {
    let mut rewritten: Vec<String> = Vec::new();
    let mut files = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--quick" {
            rewritten.push(arg.clone());
        } else if arg.starts_with("--") {
            // Every other run_main flag takes a value; carry it through
            // so its value is not mistaken for a sweep file.
            rewritten.push(arg.clone());
            if let Some(value) = it.next() {
                rewritten.push(value.clone());
            }
        } else {
            files += 1;
            rewritten.push("--sweep".to_string());
            rewritten.push(arg.clone());
        }
    }
    if files == 0 {
        usage_error("sweep needs at least one definition file: sweep FILE...");
    }
    run_main(&rewritten);
}

fn run_main(args: &[String]) {
    let mut opts = ExperimentOpts::default();
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut out_file: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut dist_workers: Option<usize> = None;
    let mut journal: Option<PathBuf> = None;
    let mut journal_sync: Option<usize> = None;
    let mut http: Option<String> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut sweep_files: Vec<PathBuf> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--insts" => opts.insts = parse_num("--insts", it.next()),
            "--warmup" => opts.warmup = parse_num("--warmup", it.next()),
            "--seed" => opts.seed = parse_num("--seed", it.next()),
            "--jobs" => opts.jobs = parse_num("--jobs", it.next()) as usize,
            "--quick" => opts.quick = true,
            "--csv" => csv_dir = Some(parse_path("--csv", it.next())),
            "--json" => json_dir = Some(parse_path("--json", it.next())),
            "--shard" => shard = Some(parse_shard(it.next())),
            "--out" => out_file = Some(parse_path("--out", it.next())),
            "--sweep" => sweep_files.push(parse_path("--sweep", it.next())),
            "--workers" => {
                workers = Some(parse_positive("--workers", it.next()));
            }
            "--dist-workers" => {
                dist_workers = Some(parse_positive("--dist-workers", it.next()));
            }
            "--journal" => journal = Some(parse_path("--journal", it.next())),
            "--journal-sync" => {
                journal_sync = Some(parse_num("--journal-sync", it.next()) as usize);
            }
            "--http" => http = Some(parse_value("--http", it.next())),
            "--cache" => cache_dir = Some(parse_path("--cache", it.next())),
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown option {flag}"));
            }
            name => {
                if names.contains(&name) {
                    eprintln!("warning: duplicate scenario name {name} ignored");
                } else {
                    names.push(name);
                }
            }
        }
    }
    if out_file.is_some() && shard.is_none() {
        usage_error("--out requires --shard");
    }
    if shard.is_some() && (csv_dir.is_some() || json_dir.is_some() || workers.is_some()) {
        usage_error("--shard emits a shard file, not reports: drop --csv/--json/--workers");
    }
    if dist_workers.is_some() && (shard.is_some() || workers.is_some()) {
        usage_error("--dist-workers picks the distributed backend: drop --shard/--workers");
    }
    if journal.is_some() && dist_workers.is_none() {
        usage_error("--journal requires --dist-workers (or the serve/resume subcommands)");
    }
    if journal_sync.is_some() && journal.is_none() {
        usage_error("--journal-sync requires --journal");
    }
    if http.is_some() && dist_workers.is_none() {
        usage_error("--http requires --dist-workers (or the serve/resume subcommands)");
    }

    let registry = load_registry(&sweep_files);
    let names = with_sweep_names(names, &registry);
    let selected = select_scenarios(&registry, &names);

    // One flat work queue across every selected scenario: the tail of
    // one scenario's runs overlaps the head of the next.
    let plans: Vec<_> = selected.iter().map(|s| s.plan(&opts)).collect();
    let runs: usize = plans.iter().map(Vec::len).sum();
    let start = Instant::now();

    if let Some((index, count)) = shard {
        run_worker(
            &selected,
            &registry,
            &opts,
            &plans,
            index,
            count,
            out_file,
            cache_dir.as_deref(),
        );
        eprintln!(
            "[shard {index}/{count}: {} of {runs} simulation(s), {:.1}s]",
            (0..runs).filter(|i| i % count == index).count(),
            start.elapsed().as_secs_f64()
        );
        return;
    }

    let reports = if let Some(count) = workers {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| die(&format!("cannot locate this executable: {e}")));
        let scratch = std::env::temp_dir().join(format!("rfcache_shards_{}", std::process::id()));
        let worker_opts = ExperimentOpts { jobs: split_jobs(opts.jobs, count), ..opts };
        let mut executor = Subprocess::new(
            exe,
            campaign_args(&selected, &worker_opts, &sweep_files),
            count,
            &scratch,
        );
        if let Some(dir) = &cache_dir {
            executor = executor.cache(dir);
        }
        let reports = run_campaign_planned_with(&executor, &selected, &opts, plans)
            .unwrap_or_else(|e| die(&format!("sharded campaign failed: {e}")));
        let _ = std::fs::remove_dir_all(&scratch);
        reports
    } else if let Some(count) = dist_workers {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| die(&format!("cannot locate this executable: {e}")));
        let serve_opts = ServeOptions { expect: count, ..ServeOptions::default() };
        let mut executor = Distributed::new(
            "127.0.0.1:0",
            selected.iter().map(|s| s.name.to_string()).collect(),
            &opts,
            serve_opts,
        )
        .sweeps(registry.sweep_texts().to_vec())
        .self_spawn(exe, count, split_jobs(opts.jobs, count));
        if let Some(path) = journal {
            executor = executor.journal(JournalSpec {
                path,
                sync_every: journal_sync.unwrap_or(1),
                resume: false,
            });
        }
        if let Some(bind) = http {
            executor = executor.http(bind);
        }
        if let Some(dir) = &cache_dir {
            executor = executor.cache(dir);
        }
        run_campaign_planned_with(&executor, &selected, &opts, plans)
            .unwrap_or_else(|e| die(&e.to_string()))
    } else if let Some(dir) = &cache_dir {
        let executor = InProcess::new(opts.jobs).with_cache(open_cache(dir));
        run_campaign_planned_with(&executor, &selected, &opts, plans)
            .unwrap_or_else(|e| die(&e.to_string()))
    } else {
        run_campaign_planned(&selected, &opts, plans)
    };
    emit_reports(&selected, &reports, csv_dir.as_deref(), json_dir.as_deref());
    let backend = match (workers, dist_workers) {
        (Some(n), _) => format!("{n} subprocess shard(s)"),
        (None, Some(n)) => format!("{n} distributed worker(s)"),
        (None, None) => "in-process".to_string(),
    };
    eprintln!(
        "[campaign: {} scenario(s), {} simulation(s), {backend}, {:.1}s]",
        selected.len(),
        runs,
        start.elapsed().as_secs_f64()
    );
}

/// Measures simulator throughput on the fixed bench suite and records a
/// snapshot in the perf trajectory (`BENCH_cycle_loop.json` by default;
/// created if missing, appended to otherwise).
fn bench_main(args: &[String]) {
    use rfcache_bench::perf;

    let mut opts = perf::BenchOptions::default();
    let mut out: PathBuf = PathBuf::from("BENCH_cycle_loop.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--repeat" => opts.repeat = parse_positive("--repeat", it.next()),
            "--warmup" => opts.warmup_reps = parse_num("--warmup", it.next()) as usize,
            "--quick" => opts.quick = true,
            "--label" => opts.label = parse_value("--label", it.next()),
            "--out" => out = parse_path("--out", it.next()),
            "--no-campaign" => opts.skip_campaign = true,
            "--cache" => opts.cache = Some(parse_path("--cache", it.next())),
            flag => usage_error(&format!("unknown bench option {flag}")),
        }
    }
    eprintln!(
        "[bench: {} repetition(s) after {} warmup, {} scale]",
        opts.repeat,
        opts.warmup_reps,
        if opts.quick { "quick" } else { "full" }
    );
    let mut progress = |stat: &perf::ScenarioStat| {
        let rate = match stat.cycles_per_sec() {
            Some(cps) => format!("{:>10.0} cycles/s", cps),
            None => format!("{:>10.0} insts/s ", stat.insts_per_sec()),
        };
        eprintln!("  {:<24} {rate}  ({:.3}s min)", stat.name, stat.secs_min);
    };
    let snapshot = perf::run_bench(&opts, &mut progress);
    let rendered = match std::fs::read_to_string(&out) {
        Ok(existing) => perf::append_snapshot(&existing, &snapshot)
            .unwrap_or_else(|e| die(&format!("cannot append to {}: {e}", out.display()))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => perf::render_trajectory(&snapshot),
        Err(e) => die(&format!("cannot read {}: {e}", out.display())),
    };
    std::fs::write(&out, rendered)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));
    eprintln!("[bench: snapshot \"{}\" written to {}]", snapshot.label, out.display());
}

/// Splits the thread budget across `count` worker processes: each
/// running a full per-core pool would oversubscribe the CPU.
fn split_jobs(jobs: usize, count: usize) -> usize {
    let total = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    };
    (total / count).max(1)
}

/// Runs the campaign as a distributed TCP coordinator.
fn serve_main(args: &[String]) {
    let mut opts = ExperimentOpts::default();
    let mut serve_opts = ServeOptions::default();
    let mut bind: Option<String> = None;
    let mut http: Option<String> = None;
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut journal_sync: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut max_campaigns: Option<usize> = None;
    let mut sweep_files: Vec<PathBuf> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bind" => bind = Some(parse_value("--bind", it.next())),
            "--sweep" => sweep_files.push(parse_path("--sweep", it.next())),
            "--http" => http = Some(parse_value("--http", it.next())),
            "--max-campaigns" => {
                max_campaigns = Some(parse_positive("--max-campaigns", it.next()));
            }
            "--expect" => serve_opts.expect = parse_num("--expect", it.next()) as usize,
            "--lease-timeout" => {
                serve_opts.lease_timeout =
                    Duration::from_secs(parse_positive("--lease-timeout", it.next()) as u64);
            }
            "--chunk" => serve_opts.chunk = parse_num("--chunk", it.next()) as usize,
            "--journal" => journal = Some(parse_path("--journal", it.next())),
            "--journal-sync" => {
                journal_sync = Some(parse_num("--journal-sync", it.next()) as usize);
            }
            "--insts" => opts.insts = parse_num("--insts", it.next()),
            "--warmup" => opts.warmup = parse_num("--warmup", it.next()),
            "--seed" => opts.seed = parse_num("--seed", it.next()),
            "--quick" => opts.quick = true,
            "--csv" => csv_dir = Some(parse_path("--csv", it.next())),
            "--json" => json_dir = Some(parse_path("--json", it.next())),
            "--cache" => cache_dir = Some(parse_path("--cache", it.next())),
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            name => {
                if names.contains(&name) {
                    eprintln!("warning: duplicate scenario name {name} ignored");
                } else {
                    names.push(name);
                }
            }
        }
    }
    let Some(bind) = bind else {
        usage_error("serve needs --bind ADDR (e.g. --bind 0.0.0.0:7841)");
    };
    if journal_sync.is_some() && journal.is_none() {
        usage_error("--journal-sync requires --journal");
    }
    if names.is_empty() && sweep_files.is_empty() {
        // No campaign on the command line: run the multi-campaign
        // service and take campaigns over the control plane instead.
        if csv_dir.is_some() || json_dir.is_some() {
            usage_error(
                "the campaign service streams results over HTTP (use `fetch --csv/--json`): \
                 drop --csv/--json",
            );
        }
        if opts != ExperimentOpts::default() {
            usage_error(
                "the campaign service takes its options per submission: move \
                 --insts/--warmup/--seed/--quick onto `submit`",
            );
        }
        let Some(http) = http else {
            usage_error(
                "serve without scenario names runs the campaign service and needs \
                 --http ADDR to accept submissions (or name scenarios for a single campaign)",
            );
        };
        serve_service_main(
            &bind,
            &http,
            serve_opts,
            journal.as_deref(),
            journal_sync.unwrap_or(1),
            cache_dir.as_deref(),
            max_campaigns,
        );
        return;
    }
    if max_campaigns.is_some() {
        usage_error("--max-campaigns is a campaign-service flag: drop the scenario names");
    }
    let registry = load_registry(&sweep_files);
    let names = with_sweep_names(names, &registry);
    let selected = select_scenarios(&registry, &names);
    let plans: Vec<_> = selected.iter().map(|s| s.plan(&opts)).collect();
    let runs: usize = plans.iter().map(Vec::len).sum();
    let start = Instant::now();
    let mut executor = Distributed::new(
        bind,
        selected.iter().map(|s| s.name.to_string()).collect(),
        &opts,
        serve_opts,
    )
    .sweeps(registry.sweep_texts().to_vec());
    if let Some(path) = journal {
        executor = executor.journal(JournalSpec {
            path,
            sync_every: journal_sync.unwrap_or(1),
            resume: false,
        });
    }
    if let Some(addr) = http {
        executor = executor.http(addr);
    }
    if let Some(dir) = &cache_dir {
        executor = executor.cache(dir);
    }
    let reports = run_campaign_planned_with(&executor, &selected, &opts, plans)
        .unwrap_or_else(|e| die(&e.to_string()));
    emit_reports(&selected, &reports, csv_dir.as_deref(), json_dir.as_deref());
    eprintln!(
        "[campaign: {} scenario(s), {} simulation(s), distributed coordinator, {:.1}s]",
        selected.len(),
        runs,
        start.elapsed().as_secs_f64()
    );
}

/// Runs the multi-campaign coordinator service: binds the worker and
/// control-plane listeners, then hands the loop to
/// `rfcache_sim::service::serve_service` until `--max-campaigns`
/// campaigns have been fetched (or forever).
fn serve_service_main(
    bind: &str,
    http_bind: &str,
    serve_opts: ServeOptions,
    journal_dir: Option<&Path>,
    journal_sync: usize,
    cache_dir: Option<&Path>,
    max_campaigns: Option<usize>,
) {
    let listener = std::net::TcpListener::bind(bind)
        .unwrap_or_else(|e| die(&format!("cannot bind {bind}: {e}")));
    let addr = listener
        .local_addr()
        .unwrap_or_else(|e| die(&format!("cannot read the bound address: {e}")));
    let http_listener = std::net::TcpListener::bind(http_bind)
        .unwrap_or_else(|e| die(&format!("cannot bind {http_bind}: {e}")));
    let http_addr = http_listener
        .local_addr()
        .unwrap_or_else(|e| die(&format!("cannot read the control-plane address: {e}")));
    eprintln!("[service: workers on {addr}, submissions on http://{http_addr}/campaigns]");
    let cache = cache_dir.map(open_cache);
    let signals = rfcache_sim::transport::ServeSignals::new();
    let start = Instant::now();
    let summary = rfcache_sim::service::serve_service(rfcache_sim::ServiceConfig {
        listener: &listener,
        http: &http_listener,
        opts: &serve_opts,
        signals: &signals,
        cache: cache.as_ref(),
        journal_dir,
        journal_sync,
        max_campaigns,
    })
    .unwrap_or_else(|e| die(&e.to_string()));
    eprintln!(
        "[service: {} campaign(s) submitted, {} completed, {} fetched, {} failed, {:.1}s]",
        summary.submitted,
        summary.completed,
        summary.fetched,
        summary.failed,
        start.elapsed().as_secs_f64()
    );
    if summary.failed > 0 {
        std::process::exit(1);
    }
}

/// Submits a campaign description to a running campaign service and
/// prints the assigned campaign id to stdout (everything else goes to
/// stderr, so `ID=$(experiments submit ...)` just works).
fn submit_main(args: &[String]) {
    let mut opts = ExperimentOpts::default();
    let mut connect: Option<String> = None;
    let mut raw = false;
    let mut sweep_files: Vec<PathBuf> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(parse_value("--connect", it.next())),
            "--sweep" => sweep_files.push(parse_path("--sweep", it.next())),
            "--insts" => opts.insts = parse_num("--insts", it.next()),
            "--warmup" => opts.warmup = parse_num("--warmup", it.next()),
            "--seed" => opts.seed = parse_num("--seed", it.next()),
            "--quick" => opts.quick = true,
            "--json" => raw = true,
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            name => {
                if names.contains(&name) {
                    eprintln!("warning: duplicate scenario name {name} ignored");
                } else {
                    names.push(name);
                }
            }
        }
    }
    let Some(addr) = connect else {
        usage_error("submit needs --connect ADDR (the service's --http address)");
    };
    let registry = load_registry(&sweep_files);
    let names = with_sweep_names(names, &registry);
    let selected = select_scenarios(&registry, &names);
    let request =
        scenario::CampaignRequest::new(selected.iter().map(|s| s.name.to_string()).collect(), opts)
            .with_sweeps(registry.sweep_texts().to_vec());
    let (code, body) = http::post(
        &addr,
        "/campaigns",
        "application/json",
        &request.to_json(),
        Duration::from_secs(5),
    )
    .unwrap_or_else(|e| die(&e));
    if code != 201 {
        die(&format!("{addr}: POST /campaigns answered {code}: {}", body.trim()));
    }
    if raw {
        print!("{body}");
        return;
    }
    let accepted = parse_json(&body)
        .unwrap_or_else(|e| die(&format!("{addr}: malformed submission response: {e}")));
    let id = accepted
        .get("id")
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| die(&format!("{addr}: submission response carries no id: {body}")));
    eprintln!(
        "[submit: campaign {id} queued: {} run(s), fingerprint {}]",
        accepted.get("runs").and_then(JsonValue::as_u64).unwrap_or(0),
        accepted.get("fingerprint").and_then(JsonValue::as_str).unwrap_or("?"),
    );
    println!("{id}");
}

/// Polls a submitted campaign until it completes, then prints its
/// reports (and writes `--csv`/`--json` exports) byte-identically to an
/// in-process run of the same description.
fn fetch_main(args: &[String]) {
    let mut connect: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut timeout = Duration::from_secs(120);
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(parse_value("--connect", it.next())),
            "--id" => id = Some(parse_num("--id", it.next())),
            "--timeout" => {
                timeout = Duration::from_secs(parse_positive("--timeout", it.next()) as u64);
            }
            "--csv" => csv_dir = Some(parse_path("--csv", it.next())),
            "--json" => json_dir = Some(parse_path("--json", it.next())),
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            other => usage_error(&format!("unexpected argument {other} (fetch takes only flags)")),
        }
    }
    let Some(addr) = connect else {
        usage_error("fetch needs --connect ADDR (the service's --http address)");
    };
    let Some(id) = id else {
        usage_error("fetch needs --id N (the id `submit` printed)");
    };

    // Poll the lifecycle until the campaign is fetchable (or doomed).
    let deadline = Instant::now() + timeout;
    loop {
        let (code, body) = http::get(&addr, &format!("/campaigns/{id}"), Duration::from_secs(5))
            .unwrap_or_else(|e| die(&e));
        if code != 200 {
            die(&format!("{addr}: GET /campaigns/{id} answered {code}: {}", body.trim()));
        }
        let status = parse_json(&body)
            .unwrap_or_else(|e| die(&format!("{addr}: malformed campaign status: {e}")));
        match status.get("state").and_then(JsonValue::as_str).unwrap_or("?") {
            "complete" | "fetched" => break,
            "failed" => die(&format!(
                "campaign {id} failed: {}",
                status.get("failure").and_then(JsonValue::as_str).unwrap_or("(no reason)")
            )),
            state => {
                if Instant::now() >= deadline {
                    die(&format!(
                        "campaign {id} still {state} after {}s (is a worker connected? \
                         raise --timeout)",
                        timeout.as_secs()
                    ));
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }

    let (code, body) =
        http::get(&addr, &format!("/campaigns/{id}/results"), Duration::from_secs(5))
            .unwrap_or_else(|e| die(&e));
    if code != 200 {
        die(&format!("{addr}: GET /campaigns/{id}/results answered {code}: {}", body.trim()));
    }
    let doc = parse_json(&body)
        .unwrap_or_else(|e| die(&format!("{addr}: malformed results document: {e}")));
    let entries = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| die(&format!("{addr}: results document carries no scenarios: {body}")));
    for entry in entries {
        let name = entry
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| die("results entry carries no scenario name"));
        let field = |key: &str| {
            entry
                .get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| die(&format!("results entry {name} carries no {key}")))
        };
        // Byte-for-byte what `emit_reports` produces in process: the
        // report to stdout, the table renders to DIR/<name>.{csv,json}.
        println!("{}", field("report"));
        if let Some(dir) = &csv_dir {
            write_fetched(dir, name, "csv", field("csv"));
        }
        if let Some(dir) = &json_dir {
            write_fetched(dir, name, "json", field("json"));
        }
    }
    eprintln!("[fetch: campaign {id}: {} scenario report(s)]", entries.len());
}

/// Writes one fetched export exactly as the in-process exporters would.
fn write_fetched(dir: &Path, name: &str, ext: &str, content: &str) {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
    let path = dir.join(format!("{name}.{ext}"));
    std::fs::write(&path, content)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
}

/// Resumes an interrupted journaled campaign: the plan is re-derived
/// from the journaled header (no scenario names on the command line),
/// completed records are replayed, and only the remainder is served.
fn resume_main(args: &[String]) {
    let mut serve_opts = ServeOptions::default();
    let mut bind: Option<String> = None;
    let mut http: Option<String> = None;
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut journal_sync: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bind" => bind = Some(parse_value("--bind", it.next())),
            "--http" => http = Some(parse_value("--http", it.next())),
            "--expect" => serve_opts.expect = parse_num("--expect", it.next()) as usize,
            "--lease-timeout" => {
                serve_opts.lease_timeout =
                    Duration::from_secs(parse_positive("--lease-timeout", it.next()) as u64);
            }
            "--chunk" => serve_opts.chunk = parse_num("--chunk", it.next()) as usize,
            "--journal" => journal = Some(parse_path("--journal", it.next())),
            "--journal-sync" => {
                journal_sync = Some(parse_num("--journal-sync", it.next()) as usize);
            }
            "--csv" => csv_dir = Some(parse_path("--csv", it.next())),
            "--json" => json_dir = Some(parse_path("--json", it.next())),
            "--cache" => cache_dir = Some(parse_path("--cache", it.next())),
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            other => usage_error(&format!(
                "unexpected argument {other} (resume re-derives the campaign from the journal)"
            )),
        }
    }
    let Some(journal) = journal else {
        usage_error("resume needs --journal FILE (the interrupted campaign's journal)");
    };
    let Some(bind) = bind else {
        usage_error("resume needs --bind ADDR (e.g. --bind 0.0.0.0:7841)");
    };

    // The journal header is the campaign description; only the first
    // line is read here — the executor reads the file once and replays
    // every record with full verification, so pulling a potentially
    // huge journal into memory twice would be pure waste.
    let file = std::fs::File::open(&journal)
        .unwrap_or_else(|e| die(&format!("cannot open journal {}: {e}", journal.display())));
    let mut header_line = String::new();
    std::io::BufReader::new(file)
        .read_line(&mut header_line)
        .unwrap_or_else(|e| die(&format!("cannot read journal {}: {e}", journal.display())));
    if !header_line.ends_with('\n') {
        die(&format!(
            "journal {} has no complete header line (crash before the first sync?)",
            journal.display()
        ));
    }
    let header = CampaignHeader::parse(header_line.trim_end())
        .unwrap_or_else(|e| die(&format!("corrupt journal {}: line 1: {e}", journal.display())));
    let opts = header.opts();
    let registry = Registry::from_texts(&header.sweeps)
        .unwrap_or_else(|e| die(&format!("journal carries an invalid sweep definition: {e}")));
    let selected = registry
        .resolve(&header.scenarios)
        .unwrap_or_else(|e| die(&format!("journal {e} (written by a different binary version?)")));
    let plans: Vec<_> = selected.iter().map(|s| s.plan(&opts)).collect();
    let runs: usize = plans.iter().map(Vec::len).sum();
    if runs != header.runs {
        die(&format!(
            "journal describes a {}-run campaign but this binary plans {runs} runs (plan drift)",
            header.runs
        ));
    }
    eprintln!("[resume: resuming a {runs}-run campaign from {}]", journal.display());
    let start = Instant::now();
    let mut executor = Distributed::new(
        bind,
        selected.iter().map(|s| s.name.to_string()).collect(),
        &opts,
        serve_opts,
    )
    .sweeps(header.sweeps.clone())
    .journal(JournalSpec {
        path: journal,
        sync_every: journal_sync.unwrap_or(1),
        resume: true,
    });
    if let Some(addr) = http {
        executor = executor.http(addr);
    }
    if let Some(dir) = &cache_dir {
        executor = executor.cache(dir);
    }
    let reports = run_campaign_planned_with(&executor, &selected, &opts, plans)
        .unwrap_or_else(|e| die(&e.to_string()));
    emit_reports(&selected, &reports, csv_dir.as_deref(), json_dir.as_deref());
    eprintln!(
        "[campaign: {} scenario(s), {} simulation(s), resumed coordinator, {:.1}s]",
        selected.len(),
        runs,
        start.elapsed().as_secs_f64()
    );
}

/// Runs as a distributed campaign worker until the coordinator says done.
fn work_main(args: &[String]) {
    let mut connect: Option<String> = None;
    let mut work_opts = WorkOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(parse_value("--connect", it.next())),
            // Positive like --lease-timeout: a zero window collapses
            // the retry loop to a single attempt, silently defeating
            // the launched-before-the-coordinator race this flag exists
            // to cover — reject it by name rather than accept a value
            // that does not mean what it appears to.
            "--connect-timeout" => {
                work_opts.connect_timeout =
                    Duration::from_secs(parse_positive("--connect-timeout", it.next()) as u64);
            }
            "--jobs" => work_opts.jobs = parse_num("--jobs", it.next()) as usize,
            "--quit-after-leases" => {
                work_opts.quit_after_leases =
                    Some(parse_num("--quit-after-leases", it.next()) as usize);
            }
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            other => usage_error(&format!("unexpected argument {other} (work takes only flags)")),
        }
    }
    let Some(addr) = connect else {
        usage_error("work needs --connect ADDR (the coordinator's serve --bind address)");
    };
    let start = Instant::now();
    let summary = transport::work(&addr, &work_opts).unwrap_or_else(|e| die(&e));
    eprintln!(
        "[work: {} simulation(s) in {} lease(s){}, {:.1}s]",
        summary.simulated,
        summary.leases,
        if summary.quit_injected { ", quit injected" } else { "" },
        start.elapsed().as_secs_f64()
    );
}

/// Fetches a running coordinator's `/status` snapshot and renders it as
/// a progress summary plus per-worker roster (`--json` passes the raw
/// snapshot through untouched for scripts).
fn status_main(args: &[String]) {
    let mut connect: Option<String> = None;
    let mut raw = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(parse_value("--connect", it.next())),
            "--json" => raw = true,
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            other => usage_error(&format!("unexpected argument {other} (status takes only flags)")),
        }
    }
    let Some(addr) = connect else {
        usage_error("status needs --connect ADDR (the coordinator's --http address)");
    };
    let (code, body) =
        http::get(&addr, "/status", Duration::from_secs(5)).unwrap_or_else(|e| die(&e));
    if code != 200 {
        die(&format!("{addr}: /status answered {code}: {}", body.trim()));
    }
    if raw {
        print!("{body}");
        return;
    }
    let status = parse_json(&body)
        .unwrap_or_else(|e| die(&format!("{addr}: malformed /status response: {e}")));
    if status.get("schema").and_then(JsonValue::as_str) == Some("rfcache-service/v1") {
        render_service_status(&status);
        return;
    }
    let count = |key: &str| status.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let scenarios: Vec<&str> = status
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .map(|names| names.iter().filter_map(JsonValue::as_str).collect())
        .unwrap_or_default();
    let (runs, completed, leased, pending) =
        (count("runs"), count("completed"), count("leased"), count("pending"));
    println!(
        "campaign {}: {}",
        status.get("fingerprint").and_then(JsonValue::as_str).unwrap_or("?"),
        scenarios.join(" ")
    );
    println!(
        "  {runs} run(s): {completed} completed ({} from cache), {leased} leased, \
         {pending} pending ({:.1}% done), {:.1}s elapsed",
        count("cached"),
        if runs == 0 { 100.0 } else { 100.0 * completed as f64 / runs as f64 },
        status.get("elapsed_secs").and_then(JsonValue::as_f64).unwrap_or(0.0)
    );
    println!(
        "  workers: {} connected, {} joined in total",
        count("workers_connected"),
        count("workers_joined")
    );
    if let Some(journal) = status.get("journal").filter(|j| !matches!(j, JsonValue::Null)) {
        let jcount = |key: &str| journal.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        println!(
            "  journal: {} record(s) written ({} replayed), {} byte(s)",
            jcount("records"),
            jcount("replayed"),
            jcount("bytes")
        );
    }
    let roster = status.get("workers").and_then(JsonValue::as_array).unwrap_or(&[]);
    if !roster.is_empty() {
        let mut table = TextTable::new(
            ["worker", "phase", "leases", "records", "lease age"]
                .map(String::from)
                .into_iter()
                .collect(),
        );
        for worker in roster {
            let cell = |key: &str| {
                worker.get(key).and_then(JsonValue::as_u64).map_or("?".into(), |n| n.to_string())
            };
            table.row(vec![
                worker.get("peer").and_then(JsonValue::as_str).unwrap_or("?").to_string(),
                worker.get("phase").and_then(JsonValue::as_str).unwrap_or("?").to_string(),
                cell("leases"),
                cell("records"),
                worker
                    .get("lease_age_secs")
                    .and_then(JsonValue::as_f64)
                    .map_or("-".to_string(), |age| format!("{age:.1}s")),
            ]);
        }
        println!("\n{table}");
    }
}

/// Renders a campaign service's `/status` snapshot: one row per
/// submitted campaign plus the connected-worker roster.
fn render_service_status(status: &JsonValue) {
    let count = |key: &str| status.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let serving = status
        .get("serving")
        .and_then(JsonValue::as_u64)
        .map_or("-".to_string(), |id| id.to_string());
    println!(
        "campaign service: {} campaign(s) submitted, serving {serving}, \
         {} worker(s) connected, {:.1}s up",
        count("submitted"),
        count("workers_connected"),
        status.get("elapsed_secs").and_then(JsonValue::as_f64).unwrap_or(0.0)
    );
    let campaigns = status.get("campaigns").and_then(JsonValue::as_array).unwrap_or(&[]);
    if !campaigns.is_empty() {
        let mut table = TextTable::new(
            ["id", "state", "scenarios", "runs", "completed", "cached"]
                .map(String::from)
                .into_iter()
                .collect(),
        );
        for campaign in campaigns {
            let cell = |key: &str| {
                campaign.get(key).and_then(JsonValue::as_u64).map_or("?".into(), |n| n.to_string())
            };
            let names: Vec<&str> = campaign
                .get("scenarios")
                .and_then(JsonValue::as_array)
                .map(|names| names.iter().filter_map(JsonValue::as_str).collect())
                .unwrap_or_default();
            table.row(vec![
                cell("id"),
                campaign.get("state").and_then(JsonValue::as_str).unwrap_or("?").to_string(),
                names.join(" "),
                cell("runs"),
                cell("completed"),
                cell("cached"),
            ]);
        }
        println!("\n{table}");
    }
}

/// Inspects or maintains a result cache directory: `stats` summarises
/// the store and the recorded sessions (`--json` for scripts), `verify`
/// re-checks every entry end to end and exits 1 if anything is wrong,
/// and `clear` empties the store.
fn cache_main(args: &[String]) {
    use rfcache_bench::perf::json_escape;

    let mut json = false;
    let mut positional: Vec<&str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            value => positional.push(value),
        }
    }
    let [action, dir]: [&str; 2] = positional.try_into().unwrap_or_else(|_| {
        usage_error("cache needs an action and a directory: cache <stats|verify|clear> DIR")
    });
    if !matches!(action, "stats" | "verify" | "clear") {
        usage_error(&format!("unknown cache action {action} (stats, verify or clear)"));
    }
    let dir = PathBuf::from(dir);
    let cache = open_cache(&dir);
    match action {
        "stats" => {
            let stats = cache
                .stats()
                .unwrap_or_else(|e| die(&format!("cannot read cache {}: {e}", dir.display())));
            if json {
                let session = match &stats.last_session {
                    Some(s) => format!(
                        "{{\"mode\": \"{}\", \"lookups\": {}, \"hits\": {}, \"stores\": {}, \
                         \"unix_time\": {}}}",
                        json_escape(&s.mode),
                        s.lookups,
                        s.hits,
                        s.stores,
                        s.unix_time
                    ),
                    None => "null".to_string(),
                };
                println!(
                    "{{\"schema\": \"rfcache-cache-stats/v1\", \"dir\": \"{}\", \
                     \"entries\": {}, \"files\": {}, \"collision_files\": {}, \"bytes\": {}, \
                     \"sessions\": {}, \"lookups\": {}, \"hits\": {}, \"stores\": {}, \
                     \"last_session\": {session}}}",
                    json_escape(&dir.display().to_string()),
                    stats.entries,
                    stats.files,
                    stats.collision_files,
                    stats.bytes,
                    stats.sessions,
                    stats.lookups,
                    stats.hits,
                    stats.stores,
                );
                return;
            }
            println!(
                "cache {}: {} entr{} in {} file(s) ({} with shard-key collisions), {} byte(s)",
                dir.display(),
                stats.entries,
                if stats.entries == 1 { "y" } else { "ies" },
                stats.files,
                stats.collision_files,
                stats.bytes
            );
            println!(
                "  sessions: {} recorded; lifetime {} lookup(s), {} hit(s) ({:.1}%), {} store(s)",
                stats.sessions,
                stats.lookups,
                stats.hits,
                if stats.lookups == 0 {
                    0.0
                } else {
                    100.0 * stats.hits as f64 / stats.lookups as f64
                },
                stats.stores
            );
            if let Some(s) = &stats.last_session {
                println!(
                    "  last session: {} — {} lookup(s), {} hit(s), {} store(s)",
                    s.mode, s.lookups, s.hits, s.stores
                );
            }
        }
        "verify" => {
            let problems = cache
                .verify()
                .unwrap_or_else(|e| die(&format!("cannot read cache {}: {e}", dir.display())));
            if problems.is_empty() {
                eprintln!("[cache {}: every entry verified clean]", dir.display());
                return;
            }
            for problem in &problems {
                eprintln!("{problem}");
            }
            die(&format!("cache {}: {} problem(s) found", dir.display(), problems.len()));
        }
        "clear" => {
            let removed = cache
                .clear()
                .unwrap_or_else(|e| die(&format!("cannot clear cache {}: {e}", dir.display())));
            eprintln!("[cache {}: removed {removed} object file(s)]", dir.display());
        }
        _ => unreachable!("action validated above"),
    }
}

/// Executes one shard of the campaign and writes the shard file.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    selected: &[&scenario::Scenario],
    registry: &Registry,
    opts: &ExperimentOpts,
    plans: &[Vec<RunSpec>],
    index: usize,
    count: usize,
    out_file: Option<PathBuf>,
    cache_dir: Option<&Path>,
) {
    let flat = rfcache_sim::flatten_plans(plans);
    let names = selected.iter().map(|s| s.name.to_string()).collect();
    let header = CampaignHeader::new(names, opts, index, count, flat.len())
        .with_sweeps(registry.sweep_texts().to_vec());
    let cache = cache_dir.map(open_cache);
    let result = match &out_file {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", path.display())));
            let mut out = std::io::BufWriter::new(file);
            run_shard_cached(&header, &flat, opts.jobs, cache.as_ref(), &mut out)
                .and_then(|()| out.flush())
        }
        None => run_shard_cached(
            &header,
            &flat,
            opts.jobs,
            cache.as_ref(),
            &mut std::io::stdout().lock(),
        ),
    };
    result.unwrap_or_else(|e| die(&format!("cannot write shard records: {e}")));
}

/// Opens (creating if needed) the result cache at `dir`, dying with a
/// clear message on failure — every `--cache` entry point funnels here.
fn open_cache(dir: &Path) -> Cache {
    Cache::open(dir)
        .unwrap_or_else(|e| die(&format!("cannot open result cache {}: {e}", dir.display())))
}

/// Merges shard files back into reports and exports.
fn merge_main(args: &[String]) {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => csv_dir = Some(parse_path("--csv", it.next())),
            "--json" => json_dir = Some(parse_path("--json", it.next())),
            flag if flag.starts_with("--") => usage_error(&format!("unknown option {flag}")),
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        usage_error("merge needs at least one shard file");
    }

    let start = Instant::now();
    let mut headers: Vec<CampaignHeader> = Vec::new();
    let mut records = Vec::new();
    for path in &files {
        let (header, shard_records) = read_shard_file(path).unwrap_or_else(|e| die(&e.to_string()));
        if let Some(first) = headers.first() {
            if !header.same_campaign(first) {
                die(&format!(
                    "{} and {} come from different campaigns (scenarios/options/shard count \
                     disagree); re-run the workers with identical arguments",
                    files[0].display(),
                    path.display()
                ));
            }
        }
        if let Some(dup) = headers.iter().position(|h| h.shard == header.shard) {
            die(&format!(
                "{} and {} both claim shard {}/{}",
                files[dup].display(),
                path.display(),
                header.shard,
                header.of
            ));
        }
        headers.push(header);
        records.extend(shard_records);
    }
    let campaign = &headers[0];
    if headers.len() != campaign.of {
        die(&format!(
            "campaign was sharded {} ways but {} shard file(s) were given",
            campaign.of,
            headers.len()
        ));
    }

    // Re-derive the plan the workers executed and verify it matches.
    // Any declarative sweeps travelled inline in the shard headers.
    let opts = campaign.opts();
    let registry = Registry::from_texts(&campaign.sweeps)
        .unwrap_or_else(|e| die(&format!("shard files carry an invalid sweep definition: {e}")));
    let selected: Vec<&scenario::Scenario> =
        registry.resolve(&campaign.scenarios).unwrap_or_else(|e| {
            die(&format!("shard files {e} (written by a different binary version?)"))
        });
    let plans: Vec<_> = selected.iter().map(|s| s.plan(&opts)).collect();
    let flat = rfcache_sim::flatten_plans(&plans);
    if flat.len() != campaign.runs {
        die(&format!(
            "shard headers describe a {}-run campaign but this binary plans {} runs \
             (plan drift)",
            campaign.runs,
            flat.len()
        ));
    }
    let results = assemble_shard_results(&flat, records).unwrap_or_else(|e| die(&e.to_string()));
    let reports = run_campaign_from_parts(&selected, &opts, &plans, results);
    emit_reports(&selected, &reports, csv_dir.as_deref(), json_dir.as_deref());
    eprintln!(
        "[merge: {} scenario(s), {} simulation(s) from {} shard(s), {:.1}s]",
        selected.len(),
        flat.len(),
        headers.len(),
        start.elapsed().as_secs_f64()
    );
}

/// Loads `--sweep` definition files into a scenario registry (dying
/// with a usage error on an invalid definition or duplicate name).
fn load_registry(files: &[PathBuf]) -> Registry {
    let defs: Vec<SweepDef> = files
        .iter()
        .map(|path| SweepDef::load(&path.display().to_string()).unwrap_or_else(|e| usage_error(&e)))
        .collect();
    Registry::with_sweeps(defs).unwrap_or_else(|e| usage_error(&e))
}

/// Appends loaded sweep names to the selection so `--sweep FILE` runs
/// the sweep without repeating its name (explicit names, including
/// `all`, already cover it through the registry).
fn with_sweep_names<'a>(mut names: Vec<&'a str>, registry: &'a Registry) -> Vec<&'a str> {
    if names.contains(&"all") {
        return names;
    }
    for s in registry.sweeps() {
        if !names.contains(&s.name.as_str()) {
            names.push(&s.name);
        }
    }
    names
}

/// Resolves scenario names (or `all`) against the registry.
fn select_scenarios<'r>(registry: &'r Registry, names: &[&str]) -> Vec<&'r scenario::Scenario> {
    let selected: Vec<&scenario::Scenario> = if names.contains(&"all") {
        if names.len() > 1 {
            usage_error("`all` cannot be combined with scenario names");
        }
        registry.iter().collect()
    } else {
        names
            .iter()
            .map(|name| {
                registry
                    .find(name)
                    .unwrap_or_else(|| usage_error(&format!("unknown experiment {name}")))
            })
            .collect()
    };
    if selected.is_empty() {
        usage_error("no experiment selected");
    }
    selected
}

/// Prints each report to stdout and writes the requested exports.
fn emit_reports(
    selected: &[&scenario::Scenario],
    reports: &[Box<dyn ScenarioReport>],
    csv_dir: Option<&std::path::Path>,
    json_dir: Option<&std::path::Path>,
) {
    for (s, report) in selected.iter().zip(reports) {
        println!("{report}");
        let table = report.to_table();
        if let Some(dir) = csv_dir {
            write_csv(dir, &s.name, &table).unwrap_or_else(|e| {
                die(&format!("cannot write {}/{}.csv: {e}", dir.display(), s.name))
            });
        }
        if let Some(dir) = json_dir {
            write_json(dir, &s.name, &table).unwrap_or_else(|e| {
                die(&format!("cannot write {}/{}.json: {e}", dir.display(), s.name))
            });
        }
    }
}

/// The arguments a shard worker needs to re-derive this campaign's plan.
fn campaign_args(
    selected: &[&scenario::Scenario],
    opts: &ExperimentOpts,
    sweep_files: &[PathBuf],
) -> Vec<String> {
    let mut args: Vec<String> = selected.iter().map(|s| s.name.to_string()).collect();
    for file in sweep_files {
        args.push("--sweep".to_string());
        args.push(file.display().to_string());
    }
    for (flag, value) in [
        ("--insts", opts.insts),
        ("--warmup", opts.warmup),
        ("--seed", opts.seed),
        ("--jobs", opts.jobs as u64),
    ] {
        args.push(flag.to_string());
        args.push(value.to_string());
    }
    if opts.quick {
        args.push("--quick".to_string());
    }
    args
}

/// `--list`: the built-in scenarios, plus any `--sweep FILE` sweeps
/// rendered with their axis summaries.
fn list(args: &[String]) {
    let mut sweep_files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sweep" => sweep_files.push(parse_path("--sweep", it.next())),
            "--list" => {}
            other => usage_error(&format!("--list takes only --sweep FILE, not {other}")),
        }
    }
    let registry = load_registry(&sweep_files);
    let width = registry.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in scenario::registry() {
        println!("{:width$}  {}", s.name, s.description);
    }
    if !registry.sweeps().is_empty() {
        println!("\nsweeps (runtime-loaded):");
        for s in registry.sweeps() {
            println!("{:width$}  {}", s.name, s.description);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_num(flag: &str, arg: Option<&String>) -> u64 {
    let Some(arg) = arg else {
        usage_error(&format!("missing value for {flag}"));
    };
    // Underscore grouping (1_000_000) is stripped before parsing, but
    // the error must name the token the user typed, never the mangled
    // one — `--insts _` strips to the empty string, whose stock parse
    // error ("cannot parse integer from empty string") would point at
    // nothing the user can see on their command line.
    let digits = arg.replace('_', "");
    digits.parse().unwrap_or_else(|_| {
        usage_error(&format!("invalid value {arg} for {flag}: expected a number"));
    })
}

fn parse_path(flag: &str, arg: Option<&String>) -> PathBuf {
    PathBuf::from(parse_value(flag, arg))
}

fn parse_value(flag: &str, arg: Option<&String>) -> String {
    // A following `--flag` is not a value: without this check,
    // `--csv --quick` would silently swallow the next flag as its value.
    match arg {
        Some(arg) if !arg.starts_with("--") => arg.clone(),
        _ => usage_error(&format!("missing value for {flag}")),
    }
}

fn parse_positive(flag: &str, arg: Option<&String>) -> usize {
    let n = parse_num(flag, arg) as usize;
    if n == 0 {
        usage_error(&format!("invalid value 0 for {flag}: count must be positive"));
    }
    n
}

/// Parses and validates the `I/N` argument of `--shard`.
fn parse_shard(arg: Option<&String>) -> (usize, usize) {
    let Some(arg) = arg else {
        usage_error("missing value for --shard");
    };
    let invalid = |why: &str| -> ! {
        usage_error(&format!("invalid value {arg} for --shard: {why}"));
    };
    let Some((index, count)) = arg.split_once('/') else {
        invalid("expected I/N (e.g. 0/2)");
    };
    let (Ok(index), Ok(count)) = (index.parse::<usize>(), count.parse::<usize>()) else {
        invalid("expected I/N (e.g. 0/2)");
    };
    if count == 0 {
        invalid("shard count must be positive");
    }
    if index >= count {
        invalid(&format!("shard index {index} must be less than shard count {count}"));
    }
    (index, count)
}
