//! Regenerates the tables and figures of the paper's evaluation, driven
//! by the scenario registry in `rfcache_sim::scenario`.
//!
//! ```text
//! experiments --list
//! experiments <name>... | all [--insts N] [--warmup N] [--seed N] [--quick] [--jobs N]
//! ```
//!
//! `--list` enumerates the registered scenarios; `all` runs every one in
//! canonical order. `--jobs N` caps the worker threads each scenario's
//! benchmark sweep fans out to (default: one per available core).
//!
//! Defaults: 200k measured instructions per benchmark after 60k warmup
//! (the paper simulates 100M after skipping initialization).

use rfcache_sim::experiments::ExperimentOpts;
use rfcache_sim::scenario;
use std::time::Instant;

const USAGE: &str = "usage: experiments --list
       experiments <name>... | all [--insts N] [--warmup N] [--seed N] [--quick] [--jobs N]
run `experiments --list` for the registered scenario names";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        list();
        return;
    }

    let mut opts = ExperimentOpts::default();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--insts" => opts.insts = parse_num(it.next()),
            "--warmup" => opts.warmup = parse_num(it.next()),
            "--seed" => opts.seed = parse_num(it.next()),
            "--jobs" => opts.jobs = parse_num(it.next()) as usize,
            "--quick" => opts.quick = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown option {flag}\n{USAGE}");
                std::process::exit(2);
            }
            name => names.push(name),
        }
    }

    let selected: Vec<&'static scenario::Scenario> = if names.contains(&"all") {
        if names.len() > 1 {
            eprintln!("`all` cannot be combined with scenario names\n{USAGE}");
            std::process::exit(2);
        }
        scenario::registry().iter().collect()
    } else {
        names
            .iter()
            .map(|name| {
                scenario::find(name).unwrap_or_else(|| {
                    eprintln!("unknown experiment {name}\n{USAGE}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment selected\n{USAGE}");
        std::process::exit(2);
    }

    for s in selected {
        let start = Instant::now();
        println!("{}", s.run(&opts));
        eprintln!("[{}: {:.1}s]\n", s.name, start.elapsed().as_secs_f64());
    }
}

fn list() {
    let width = scenario::registry().iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in scenario::registry() {
        println!("{:width$}  {}", s.name, s.description);
    }
}

fn parse_num(arg: Option<&String>) -> u64 {
    arg.and_then(|s| s.replace('_', "").parse().ok()).unwrap_or_else(|| {
        eprintln!("expected a number\n{USAGE}");
        std::process::exit(2);
    })
}
