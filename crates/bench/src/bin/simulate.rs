//! Single configurable simulation run with a full metrics report.
//!
//! ```text
//! simulate --bench gcc --arch rfc [--insts 200000] [--warmup 60000] [--seed 42]
//!          [--window 128] [--phys-regs 128]
//!          [--upper-entries 16] [--caching nonbypass|ready] [--fetch demand|prefetch]
//!          [--ports R,W] [--rfc-ports R,W,LW,B] [--banks N]
//! ```
//!
//! Architectures: `1cyc`, `2cyc`, `2cyc-full`, `rfc`, `replicated`,
//! `onelevel`.
//!
//! `--trace-out FILE` saves the generated instruction stream in the RFCT
//! format; `--trace-in FILE` replays a saved stream instead of generating
//! one (the `--bench` profile is then ignored).

use rfcache_core::{
    CachingPolicy, FetchPolicy, OneLevelBankedConfig, PortLimits, RegFileCacheConfig,
    RegFileConfig, ReplicatedBankConfig, SingleBankConfig,
};
use rfcache_pipeline::PipelineConfig;
use rfcache_sim::{RunSpec, DEFAULT_INSTS, DEFAULT_WARMUP};

fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: simulate --bench <name> --arch <1cyc|2cyc|2cyc-full|rfc|replicated|onelevel> \
         [--insts N] [--warmup N] [--seed N] [--window N] [--phys-regs N] \
         [--upper-entries N] [--caching nonbypass|ready] [--fetch demand|prefetch] \
         [--ports R,W] [--rfc-ports R,W,LW,B] [--banks N]"
    );
    std::process::exit(2);
}

struct Args {
    bench: String,
    trace_in: Option<String>,
    trace_out: Option<String>,
    arch: String,
    insts: u64,
    warmup: u64,
    seed: u64,
    window: Option<usize>,
    phys_regs: Option<usize>,
    upper_entries: usize,
    caching: CachingPolicy,
    fetch: FetchPolicy,
    ports: Option<(u32, u32)>,
    rfc_ports: Option<(u32, u32, u32, u32)>,
    banks: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: "gcc".into(),
        trace_in: None,
        trace_out: None,
        arch: "rfc".into(),
        insts: DEFAULT_INSTS,
        warmup: DEFAULT_WARMUP,
        seed: 42,
        window: None,
        phys_regs: None,
        upper_entries: 16,
        caching: CachingPolicy::NonBypass,
        fetch: FetchPolicy::PrefetchFirstPair,
        ports: None,
        rfc_ports: None,
        banks: 8,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| bail("missing value"));
        match flag.as_str() {
            "--bench" => args.bench = value(),
            "--trace-in" => args.trace_in = Some(value()),
            "--trace-out" => args.trace_out = Some(value()),
            "--arch" => args.arch = value(),
            "--insts" => args.insts = value().parse().unwrap_or_else(|_| bail("bad --insts")),
            "--warmup" => args.warmup = value().parse().unwrap_or_else(|_| bail("bad --warmup")),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| bail("bad --seed")),
            "--window" => args.window = value().parse().ok(),
            "--phys-regs" => args.phys_regs = value().parse().ok(),
            "--upper-entries" => {
                args.upper_entries = value().parse().unwrap_or_else(|_| bail("bad --upper-entries"))
            }
            "--caching" => {
                args.caching = match value().as_str() {
                    "nonbypass" => CachingPolicy::NonBypass,
                    "ready" => CachingPolicy::Ready,
                    _ => bail("bad --caching"),
                }
            }
            "--fetch" => {
                args.fetch = match value().as_str() {
                    "demand" => FetchPolicy::OnDemand,
                    "prefetch" => FetchPolicy::PrefetchFirstPair,
                    _ => bail("bad --fetch"),
                }
            }
            "--ports" => {
                let v = value();
                let parts: Vec<u32> = v.split(',').filter_map(|s| s.parse().ok()).collect();
                if parts.len() != 2 {
                    bail("bad --ports, expected R,W");
                }
                args.ports = Some((parts[0], parts[1]));
            }
            "--rfc-ports" => {
                let v = value();
                let parts: Vec<u32> = v.split(',').filter_map(|s| s.parse().ok()).collect();
                if parts.len() != 4 {
                    bail("bad --rfc-ports, expected R,W,LW,B");
                }
                args.rfc_ports = Some((parts[0], parts[1], parts[2], parts[3]));
            }
            "--banks" => args.banks = value().parse().unwrap_or_else(|_| bail("bad --banks")),
            other => bail(&format!("unknown flag {other}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let single_ports =
        args.ports.map(|(r, w)| PortLimits::limited(r, w)).unwrap_or(PortLimits::UNLIMITED);
    let rf = match args.arch.as_str() {
        "1cyc" => RegFileConfig::Single(SingleBankConfig::one_cycle().with_ports(single_ports)),
        "2cyc" => RegFileConfig::Single(
            SingleBankConfig::two_cycle_single_bypass().with_ports(single_ports),
        ),
        "2cyc-full" => RegFileConfig::Single(
            SingleBankConfig::two_cycle_full_bypass().with_ports(single_ports),
        ),
        "rfc" => {
            let mut cfg = RegFileCacheConfig {
                upper_entries: args.upper_entries,
                ..RegFileCacheConfig::paper_default()
            }
            .with_policies(args.caching, args.fetch);
            if let Some((r, w, lw, b)) = args.rfc_ports {
                cfg = cfg.with_ports(r, w, lw, b);
            }
            RegFileConfig::Cache(cfg)
        }
        "replicated" => RegFileConfig::Replicated(ReplicatedBankConfig {
            banks: args.banks,
            ..ReplicatedBankConfig::default()
        }),
        "onelevel" => RegFileConfig::OneLevel(OneLevelBankedConfig::wallace(args.banks)),
        other => bail(&format!("unknown architecture {other}")),
    };

    let mut pipeline = PipelineConfig::default();
    if let Some(w) = args.window {
        pipeline = pipeline.with_window(w);
    }
    if let Some(p) = args.phys_regs {
        pipeline = pipeline.with_phys_regs(p);
    }

    // Optional trace capture/replay via the RFCT format.
    if let Some(path) = &args.trace_out {
        let profile = rfcache_workload::BenchProfile::by_name(&args.bench)
            .unwrap_or_else(|| bail("unknown benchmark"));
        let insts: Vec<_> = rfcache_workload::TraceGenerator::new(profile, args.seed)
            .take((args.warmup + args.insts) as usize)
            .collect();
        let file = std::fs::File::create(path).unwrap_or_else(|e| bail(&e.to_string()));
        rfcache_workload::write_trace(std::io::BufWriter::new(file), &insts)
            .unwrap_or_else(|e| bail(&e.to_string()));
        eprintln!("wrote {} instructions to {path}", insts.len());
    }
    let metrics = if let Some(path) = &args.trace_in {
        let file = std::fs::File::open(path).unwrap_or_else(|e| bail(&e.to_string()));
        let trace = rfcache_workload::read_trace(std::io::BufReader::new(file))
            .unwrap_or_else(|e| bail(&e.to_string()));
        let mut cpu = rfcache_pipeline::Cpu::new(pipeline, rf, trace.into_iter());
        if args.warmup > 0 {
            cpu.run(args.warmup);
            cpu.reset_metrics();
        }
        cpu.run(args.insts)
    } else {
        RunSpec::new(&args.bench, rf)
            .unwrap_or_else(|e| bail(&e))
            .pipeline(pipeline)
            .insts(args.insts)
            .warmup(args.warmup)
            .seed(args.seed)
            .run()
            .metrics
    };

    let m = &metrics;
    println!("benchmark: {} | architecture: {rf}", args.bench);
    println!("{m}");
    println!(
        "stalls: rob {} window {} phys-reg {} lsq {} branch-limit {}",
        m.stall_rob_full,
        m.stall_window_full,
        m.stall_no_phys_reg,
        m.stall_lsq_full,
        m.stall_branch_limit
    );
    println!(
        "fetch: {} blocks, {} icache stalls, {} BTB bubbles",
        m.fetch.blocks, m.fetch.icache_stalls, m.fetch.btb_bubbles
    );
    if let Some(rate) = m.dcache_hit_rate {
        println!("dcache hit rate: {:.1}%", rate * 100.0);
    }
    let rf_stats = m.rf_combined();
    println!("register file: {rf_stats}");
    if let Some(frac) = rf_stats.read_at_most_once_fraction() {
        println!("values read at most once: {:.1}%", frac * 100.0);
    }
    if rf_stats.read_port_stalls + rf_stats.write_port_stalls > 0 {
        println!(
            "port pressure: {} read-port stalls, {} write-port stalls",
            rf_stats.read_port_stalls, rf_stats.write_port_stalls
        );
    }
}
