//! Benchmark and experiment harness for the rfcache reproduction.
//!
//! * `src/bin/experiments.rs` — regenerates every table and figure of the
//!   paper (see EXPERIMENTS.md at the workspace root).
//! * `benches/` — Criterion benchmarks: component micro-benchmarks
//!   (predictor, caches, trace generation, register file models) and one
//!   reduced-scale end-to-end benchmark per paper experiment.
//! * [`perf`] — the `experiments bench` harness: simulator-throughput
//!   measurement and the `BENCH_cycle_loop.json` perf trajectory.

pub mod perf;
