//! The `experiments bench` harness: simulator throughput (cycles/sec and
//! instructions/sec) on a fixed suite of representative workloads, emitted
//! as a schema-versioned JSON *trajectory* so every optimization PR records
//! its before/after point (`BENCH_cycle_loop.json` at the workspace root).
//!
//! The suite runs every register file model at two scales ("smoke" and
//! "quick") on the same benchmark profile and seed, plus one wall-clock
//! measurement of the full `all --quick` campaign. Each scenario is timed
//! over `repeat` repetitions after `warmup_reps` untimed ones; the minimum
//! is the headline rate (least scheduler noise), the mean is recorded too.
//!
//! Snapshots are appended to an existing trajectory file in place;
//! `scripts/bench_diff.py` compares any two snapshots and gates CI.

use rfcache_core::{
    OneLevelBankedConfig, RegFileCacheConfig, RegFileConfig, ReplicatedBankConfig, SingleBankConfig,
};
use rfcache_pipeline::{Cpu, PipelineConfig};
use rfcache_sim::experiments::ExperimentOpts;
use rfcache_sim::scenario::ScenarioReport;
use rfcache_sim::{run_campaign_planned, run_campaign_planned_with, scenario, Cache, InProcess};
use rfcache_workload::{BenchProfile, TraceGenerator};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Schema identifier stamped into every trajectory file.
pub const SCHEMA: &str = "rfcache-bench/v1";

/// Options of one `experiments bench` invocation.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Timed repetitions per scenario (the minimum is the headline).
    pub repeat: usize,
    /// Untimed warmup repetitions per scenario (JIT-free rust still wants
    /// warm caches and a warm frequency governor).
    pub warmup_reps: usize,
    /// Reduced instruction counts, for CI smoke runs. Scenario *names* are
    /// unchanged so snapshots at different scales stay comparable by rate.
    pub quick: bool,
    /// Label recorded in the snapshot (e.g. "before", "after").
    pub label: String,
    /// Skip the `all --quick` campaign wall-time entry.
    pub skip_campaign: bool,
    /// Run the campaign entry through the result cache at this directory
    /// (recorded as `campaign/all-quick-cached`): an uncached reference
    /// run first checks the cached reports stay byte-identical, then the
    /// timed repetitions measure cache-backed throughput. Benching a cold
    /// directory and then a warm one records the cache speedup.
    pub cache: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            repeat: 3,
            warmup_reps: 1,
            quick: false,
            label: "snapshot".to_string(),
            skip_campaign: false,
            cache: None,
        }
    }
}

/// Throughput of one bench scenario.
#[derive(Debug, Clone)]
pub struct ScenarioStat {
    /// Scenario name (`<model>/<scale>`, or `campaign/all-quick`).
    pub name: String,
    /// Instructions simulated per repetition (measured phase only).
    pub insts: u64,
    /// Cycles simulated per repetition (0 for the campaign entry, which
    /// aggregates many runs and reports instruction throughput only).
    pub cycles: u64,
    /// Fastest repetition, seconds.
    pub secs_min: f64,
    /// Mean over repetitions, seconds.
    pub secs_mean: f64,
}

impl ScenarioStat {
    /// Simulated cycles per wall second (fastest repetition), or `None`
    /// for entries that aggregate runs without a single cycle count.
    pub fn cycles_per_sec(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.cycles as f64 / self.secs_min)
    }

    /// Simulated instructions per wall second (fastest repetition).
    pub fn insts_per_sec(&self) -> f64 {
        self.insts as f64 / self.secs_min
    }
}

/// One measured point of the perf trajectory.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot label (e.g. "before", "after").
    pub label: String,
    /// `git rev-parse --short HEAD`, or "unknown".
    pub git_rev: String,
    /// Whether the working tree had uncommitted changes when measured
    /// (`git status --porcelain` non-empty) — a snapshot taken from a
    /// dirty tree does not reproduce from `git_rev` alone.
    pub git_dirty: bool,
    /// Seconds since the Unix epoch when the snapshot was taken.
    pub unix_time: u64,
    /// Host fingerprint.
    pub host: HostInfo,
    /// Timed repetitions per scenario.
    pub repeat: usize,
    /// Untimed warmup repetitions per scenario.
    pub warmup_reps: usize,
    /// Whether the reduced-scale suite was run.
    pub quick: bool,
    /// Per-scenario throughput.
    pub scenarios: Vec<ScenarioStat>,
}

/// The machine a snapshot was measured on.
#[derive(Debug, Clone)]
pub struct HostInfo {
    /// Hostname (best effort).
    pub hostname: String,
    /// Available logical CPUs.
    pub cpus: usize,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
}

impl HostInfo {
    /// Fingerprints the current host.
    pub fn current() -> Self {
        let hostname = std::env::var("HOSTNAME")
            .ok()
            .or_else(|| std::fs::read_to_string("/etc/hostname").ok().map(|s| s.trim().to_string()))
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        HostInfo {
            hostname,
            cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// The fixed workload suite: every register file architecture at two
/// scales, same benchmark profile and seed throughout so the numbers
/// compare across models.
///
/// Returns `(name, rf, measured_insts, warmup_insts)`.
pub fn workloads(quick: bool) -> Vec<(String, RegFileConfig, u64, u64)> {
    let configs: [(&str, RegFileConfig); 5] = [
        ("single-1c", RegFileConfig::Single(SingleBankConfig::one_cycle())),
        ("single-2c-full", RegFileConfig::Single(SingleBankConfig::two_cycle_full_bypass())),
        ("rfc", RegFileConfig::Cache(RegFileCacheConfig::paper_default())),
        ("replicated", RegFileConfig::Replicated(ReplicatedBankConfig::default())),
        ("onelevel", RegFileConfig::OneLevel(OneLevelBankedConfig::default())),
    ];
    // (scale name, measured insts, warmup insts); `--quick` shrinks the
    // counts 10x but keeps the names, so rates stay comparable.
    let scale = if quick { 1 } else { 10 };
    let scales: [(&str, u64, u64); 2] =
        [("smoke", 2_000 * scale, 500 * scale), ("quick", 20_000 * scale, 6_000 * scale)];
    let mut out = Vec::new();
    for (cname, rf) in configs {
        for (sname, insts, warmup) in scales {
            out.push((format!("{cname}/{sname}"), rf, insts, warmup));
        }
    }
    out
}

/// The benchmark profile every suite entry simulates (int-heavy, branchy,
/// representative of the campaign mix).
pub const BENCH_PROFILE: &str = "gcc";

/// Workload seed (same as the campaign default).
pub const BENCH_SEED: u64 = 42;

/// Times one scenario: builds a fresh CPU per repetition, warms it up
/// untimed, then times the measured phase only — so `cycles / secs` is
/// exactly the simulator's cycle-loop throughput.
fn time_scenario(
    name: &str,
    rf: RegFileConfig,
    insts: u64,
    warmup: u64,
    opts: &BenchOptions,
) -> ScenarioStat {
    let profile = BenchProfile::by_name(BENCH_PROFILE).expect("bench profile exists");
    let mut timed: Vec<(f64, u64, u64)> = Vec::with_capacity(opts.repeat);
    for rep in 0..opts.warmup_reps + opts.repeat {
        let trace = TraceGenerator::new(profile, BENCH_SEED);
        let mut cpu = Cpu::new(PipelineConfig::default(), rf, trace);
        if warmup > 0 {
            cpu.run(warmup);
            cpu.reset_metrics();
        }
        let start = Instant::now();
        let metrics = cpu.run(insts);
        let secs = start.elapsed().as_secs_f64();
        if rep >= opts.warmup_reps {
            timed.push((secs, metrics.cycles, metrics.committed));
        }
    }
    let secs_min = timed.iter().map(|t| t.0).fold(f64::INFINITY, f64::min);
    let secs_mean = timed.iter().map(|t| t.0).sum::<f64>() / timed.len() as f64;
    // Deterministic simulation: every repetition ran the same cycles.
    let (_, cycles, committed) = timed[0];
    ScenarioStat { name: name.to_string(), insts: committed, cycles, secs_min, secs_mean }
}

/// Times the full `all --quick` campaign (every registered scenario, the
/// in-process executor, one worker per core) and reports aggregate
/// instruction throughput.
///
/// With [`BenchOptions::cache`] set the timed repetitions run through the
/// cache-backed executor and the entry is named `campaign/all-quick-cached`
/// (a distinct name, so trajectory diffs never compare cached against
/// uncached rates); an untimed uncached run first pins down the expected
/// reports, and every cached repetition must render byte-identically.
fn time_campaign(opts: &BenchOptions) -> ScenarioStat {
    let mut c_opts = ExperimentOpts { quick: true, ..ExperimentOpts::default() };
    if opts.quick {
        c_opts.insts /= 10;
        c_opts.warmup /= 10;
    }
    let selected: Vec<&scenario::Scenario> = scenario::registry().iter().collect();
    let cached_executor = opts.cache.as_deref().map(|dir| {
        let cache = Cache::open(dir)
            .unwrap_or_else(|e| panic!("cannot open result cache {}: {e}", dir.display()));
        InProcess::new(c_opts.jobs).with_cache(cache)
    });
    // Reports rendered end to end: the byte-identity oracle for the
    // cache-backed repetitions.
    let render = |reports: &[Box<dyn ScenarioReport>]| -> String {
        reports.iter().map(|r| format!("{r}\n{}\n", r.to_table())).collect()
    };
    let reference = cached_executor.as_ref().map(|_| {
        let plans: Vec<_> = selected.iter().map(|s| s.plan(&c_opts)).collect();
        render(&run_campaign_planned(&selected, &c_opts, plans))
    });
    let mut timed: Vec<(f64, u64)> = Vec::with_capacity(opts.repeat);
    for rep in 0..opts.warmup_reps + opts.repeat {
        let plans: Vec<_> = selected.iter().map(|s| s.plan(&c_opts)).collect();
        let total_insts: u64 = plans.iter().flatten().map(|spec| spec.insts).sum();
        let start = Instant::now();
        let reports = match &cached_executor {
            Some(executor) => run_campaign_planned_with(executor, &selected, &c_opts, plans)
                .expect("the in-process executor is infallible"),
            None => run_campaign_planned(&selected, &c_opts, plans),
        };
        let secs = start.elapsed().as_secs_f64();
        if let Some(reference) = &reference {
            assert_eq!(
                &render(&reports),
                reference,
                "cache-backed campaign reports must be byte-identical to the uncached run"
            );
        }
        if rep >= opts.warmup_reps {
            timed.push((secs, total_insts));
        }
    }
    let secs_min = timed.iter().map(|t| t.0).fold(f64::INFINITY, f64::min);
    let secs_mean = timed.iter().map(|t| t.0).sum::<f64>() / timed.len() as f64;
    ScenarioStat {
        name: if opts.cache.is_some() { "campaign/all-quick-cached" } else { "campaign/all-quick" }
            .to_string(),
        insts: timed[0].1,
        cycles: 0,
        secs_min,
        secs_mean,
    }
}

/// Runs the whole suite and assembles a snapshot.
pub fn run_bench(opts: &BenchOptions, progress: &mut dyn FnMut(&ScenarioStat)) -> Snapshot {
    let mut scenarios = Vec::new();
    for (name, rf, insts, warmup) in workloads(opts.quick) {
        let stat = time_scenario(&name, rf, insts, warmup, opts);
        progress(&stat);
        scenarios.push(stat);
    }
    if !opts.skip_campaign {
        let stat = time_campaign(opts);
        progress(&stat);
        scenarios.push(stat);
    }
    Snapshot {
        label: opts.label.clone(),
        git_rev: git_rev(),
        git_dirty: git_dirty(),
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        host: HostInfo::current(),
        repeat: opts.repeat,
        warmup_reps: opts.warmup_reps,
        quick: opts.quick,
        scenarios,
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Whether the working tree differs from `HEAD` (untracked files count).
/// A failed `git` invocation reports dirty: claiming a clean, reproducible
/// rev on no evidence is the worse error.
fn git_dirty() -> bool {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) for
/// the hand-rendered trajectory and stats output.
pub fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders one snapshot as an indented JSON object (4-space base indent,
/// matching its position inside the trajectory's `snapshots` array).
pub fn render_snapshot(s: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"label\": \"{}\",", json_escape(&s.label));
    let _ = writeln!(out, "      \"git_rev\": \"{}\",", json_escape(&s.git_rev));
    let _ = writeln!(out, "      \"dirty\": {},", s.git_dirty);
    let _ = writeln!(out, "      \"unix_time\": {},", s.unix_time);
    let _ = writeln!(
        out,
        "      \"host\": {{\"hostname\": \"{}\", \"cpus\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        json_escape(&s.host.hostname),
        s.host.cpus,
        json_escape(&s.host.os),
        json_escape(&s.host.arch)
    );
    let _ = writeln!(out, "      \"repeat\": {},", s.repeat);
    let _ = writeln!(out, "      \"warmup_reps\": {},", s.warmup_reps);
    let _ = writeln!(out, "      \"quick\": {},", s.quick);
    let _ = writeln!(out, "      \"scenarios\": [");
    for (i, sc) in s.scenarios.iter().enumerate() {
        let comma = if i + 1 < s.scenarios.len() { "," } else { "" };
        let mut fields = format!(
            "\"name\": \"{}\", \"insts\": {}, \"secs_min\": {:.6}, \"secs_mean\": {:.6}, \
             \"insts_per_sec\": {:.1}",
            json_escape(&sc.name),
            sc.insts,
            sc.secs_min,
            sc.secs_mean,
            sc.insts_per_sec()
        );
        if let Some(cps) = sc.cycles_per_sec() {
            let _ = write!(fields, ", \"cycles\": {}, \"cycles_per_sec\": {:.1}", sc.cycles, cps);
        }
        let _ = writeln!(out, "        {{{fields}}}{comma}");
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
    out
}

/// The exact tail every trajectory file written by this module ends with;
/// appending splices a new snapshot right before it.
const TRAJECTORY_TAIL: &str = "\n  ]\n}\n";

/// Renders a fresh trajectory file holding one snapshot.
pub fn render_trajectory(s: &Snapshot) -> String {
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"snapshots\": [\n{}{TRAJECTORY_TAIL}",
        render_snapshot(s)
    )
}

/// Appends `snapshot` to the trajectory in `existing` (the full previous
/// file contents), or errors when the file is not one of ours.
pub fn append_snapshot(existing: &str, s: &Snapshot) -> Result<String, String> {
    if !existing.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("not a {SCHEMA} trajectory (schema key missing)"));
    }
    let Some(stripped) = existing.strip_suffix(TRAJECTORY_TAIL) else {
        return Err("trajectory file has an unexpected tail; regenerate it".to_string());
    };
    Ok(format!("{stripped},\n{}{TRAJECTORY_TAIL}", render_snapshot(s)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            label: "test".into(),
            git_rev: "abc1234".into(),
            git_dirty: false,
            unix_time: 1_700_000_000,
            host: HostInfo {
                hostname: "ci".into(),
                cpus: 4,
                os: "linux".into(),
                arch: "x86_64".into(),
            },
            repeat: 1,
            warmup_reps: 0,
            quick: true,
            scenarios: vec![
                ScenarioStat {
                    name: "single-1c/smoke".into(),
                    insts: 2_000,
                    cycles: 1_500,
                    secs_min: 0.002,
                    secs_mean: 0.003,
                },
                ScenarioStat {
                    name: "campaign/all-quick".into(),
                    insts: 100_000,
                    cycles: 0,
                    secs_min: 1.5,
                    secs_mean: 1.6,
                },
            ],
        }
    }

    #[test]
    fn suite_covers_every_model_at_both_scales() {
        let w = workloads(false);
        assert_eq!(w.len(), 10);
        for model in ["single-1c", "single-2c-full", "rfc", "replicated", "onelevel"] {
            for scale in ["smoke", "quick"] {
                assert!(
                    w.iter().any(|(n, ..)| n == &format!("{model}/{scale}")),
                    "{model}/{scale}"
                );
            }
        }
        // Quick mode shrinks the counts but keeps the names.
        let q = workloads(true);
        assert_eq!(
            q.iter().map(|(n, ..)| n.clone()).collect::<Vec<_>>(),
            w.iter().map(|(n, ..)| n.clone()).collect::<Vec<_>>()
        );
        assert!(q.iter().zip(&w).all(|(a, b)| a.2 < b.2));
    }

    #[test]
    fn rates_divide_by_fastest_repetition() {
        let s = sample_snapshot();
        assert_eq!(s.scenarios[0].cycles_per_sec(), Some(1_500.0 / 0.002));
        assert_eq!(s.scenarios[0].insts_per_sec(), 2_000.0 / 0.002);
        assert_eq!(s.scenarios[1].cycles_per_sec(), None, "campaign entry has no cycle count");
    }

    #[test]
    fn trajectory_roundtrip_appends_in_place() {
        let s = sample_snapshot();
        let one = render_trajectory(&s);
        assert!(one.contains("\"schema\": \"rfcache-bench/v1\""));
        assert!(one.ends_with(TRAJECTORY_TAIL));
        assert_eq!(one.matches("\"label\"").count(), 1);

        let two = append_snapshot(&one, &s).unwrap();
        assert_eq!(two.matches("\"label\"").count(), 2);
        assert!(two.ends_with(TRAJECTORY_TAIL));
        // Appending is associative with rendering: a third append works too.
        let three = append_snapshot(&two, &s).unwrap();
        assert_eq!(three.matches("\"label\"").count(), 3);

        append_snapshot("{}", &s).expect_err("foreign JSON must be rejected");
    }

    #[test]
    fn snapshot_json_has_required_keys() {
        let s = sample_snapshot();
        let json = render_snapshot(&s);
        for key in [
            "label",
            "git_rev",
            "dirty",
            "host",
            "repeat",
            "scenarios",
            "secs_min",
            "insts_per_sec",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        assert!(json.contains("\"dirty\": false,"));
        assert!(json.contains("\"cycles_per_sec\""));
    }
}
