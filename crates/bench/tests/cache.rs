//! End-to-end tests of `--cache` and the `cache` subcommand: a warm
//! cache must reproduce the cold run's reports byte for byte in every
//! execution mode (in-process, `--workers`, `--dist-workers`), `cache
//! stats` must show a 100%-hit warm session, and `verify`/`clear` must
//! catch corruption and empty the store.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A two-scenario campaign: big enough to exercise several specs, small
/// enough to keep the debug-build test quick.
const CAMPAIGN: &[&str] = &["fig6", "fig5", "--quick", "--insts", "2000", "--warmup", "500"];

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfcache_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file in `dir`, name → bytes.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

/// Runs [`CAMPAIGN`] with `extra` appended, exporting CSV + JSON into
/// `export`, and asserts success.
fn run_campaign(export: &Path, extra: &[&str]) -> Output {
    let out = experiments(
        &[
            CAMPAIGN,
            extra,
            &["--csv", export.to_str().unwrap(), "--json", export.to_str().unwrap()],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    out
}

/// Every object file currently in the cache directory.
fn object_files(cache: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for shard in std::fs::read_dir(cache.join("objects")).expect("objects dir") {
        let shard = shard.unwrap().path();
        if shard.is_dir() {
            files.extend(std::fs::read_dir(shard).unwrap().map(|e| e.unwrap().path()));
        }
    }
    files.sort();
    files
}

#[test]
fn warm_cache_is_byte_identical_in_every_mode() {
    let work = temp_dir("modes");
    let cache = work.join("cache");
    let cache_str = cache.to_str().unwrap().to_string();
    let ref_dir = work.join("ref");

    // The uncached reference, then the cold cache-populating run: caching
    // must be invisible in the reports even while it is being filled.
    let reference = run_campaign(&ref_dir, &[]);
    let cold_dir = work.join("cold");
    let cold = run_campaign(&cold_dir, &["--cache", &cache_str]);
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&cold.stdout),
        "a cold cache must not change the reports"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&cold_dir));

    // Warm in-process.
    let warm_dir = work.join("warm");
    let warm = run_campaign(&warm_dir, &["--cache", &cache_str]);
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&warm.stdout),
        "warm in-process reports diverge"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&warm_dir));
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("served from"), "warm run must report its hits: {stderr}");

    // Warm subprocess shards: every worker consults the same directory.
    let shard_dir = work.join("shard");
    let sharded = run_campaign(&shard_dir, &["--workers", "2", "--cache", &cache_str]);
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&sharded.stdout),
        "warm --workers reports diverge"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&shard_dir));

    // Warm distributed: the coordinator pre-fills every index from the
    // cache at plan time and never leases them to the workers.
    let dist_dir = work.join("dist");
    let dist = run_campaign(&dist_dir, &["--dist-workers", "2", "--cache", &cache_str]);
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&dist.stdout),
        "warm --dist-workers reports diverge"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));
    let stderr = String::from_utf8_lossy(&dist.stderr);
    assert!(
        stderr.contains("satisfied from the cache"),
        "the coordinator must report the pre-filled indices: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn stats_reports_a_full_hit_warm_session() {
    use rfcache_sim::JsonValue;

    let work = temp_dir("stats");
    let cache = work.join("cache");
    let cache_str = cache.to_str().unwrap().to_string();
    run_campaign(&work.join("cold"), &["--cache", &cache_str]);
    run_campaign(&work.join("warm"), &["--cache", &cache_str]);

    let out = experiments(&["cache", "stats", &cache_str, "--json"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let body = String::from_utf8_lossy(&out.stdout).into_owned();
    let stats = rfcache_sim::parse_json(&body)
        .unwrap_or_else(|e| panic!("malformed stats JSON: {e}\n{body}"));
    let count = |key: &str| stats.get(key).and_then(JsonValue::as_u64).expect(key);
    assert!(count("entries") > 0, "stats: {body}");
    assert_eq!(count("sessions"), 2, "one session per campaign run: {body}");

    // The warm session saw only hits and stored nothing.
    let last = stats.get("last_session").expect("last_session");
    let session = |key: &str| last.get(key).and_then(JsonValue::as_u64).expect(key);
    assert!(session("lookups") > 0, "stats: {body}");
    assert_eq!(session("hits"), session("lookups"), "warm run must be 100% hits: {body}");
    assert_eq!(session("stores"), 0, "a fully warm run has nothing to store: {body}");

    // The human rendering agrees on the headline numbers.
    let pretty = experiments(&["cache", "stats", &cache_str]);
    assert!(pretty.status.success());
    let text = String::from_utf8_lossy(&pretty.stdout).into_owned();
    assert!(text.contains("sessions: 2 recorded"), "pretty stats: {text}");
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn verify_catches_corruption_and_clear_empties_the_store() {
    use rfcache_sim::JsonValue;

    let work = temp_dir("verify");
    let cache = work.join("cache");
    let cache_str = cache.to_str().unwrap().to_string();
    run_campaign(&work.join("cold"), &["--cache", &cache_str]);

    let out = experiments(&["cache", "verify", &cache_str]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Flip one byte in one object file: verify must fail naming it.
    let victim = object_files(&cache).into_iter().next().expect("cache holds object files");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&victim, &bytes).unwrap();

    let out = experiments(&["cache", "verify", &cache_str]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let name = victim.file_name().unwrap().to_string_lossy().into_owned();
    assert!(stderr.contains(&name), "verify must name the bad file: {stderr}");

    let out = experiments(&["cache", "clear", &cache_str]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(object_files(&cache).is_empty(), "clear must remove every object file");

    let out = experiments(&["cache", "stats", &cache_str, "--json"]);
    assert!(out.status.success());
    let body = String::from_utf8_lossy(&out.stdout).into_owned();
    let stats = rfcache_sim::parse_json(&body).expect("stats JSON parses");
    assert_eq!(stats.get("entries").and_then(JsonValue::as_u64), Some(0), "stats: {body}");
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn cache_subcommand_names_its_usage_errors() {
    let out = experiments(&["cache"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cache needs an action and a directory"), "stderr: {stderr}");

    let out = experiments(&["cache", "stats"]);
    assert_eq!(out.status.code(), Some(2));

    let out = experiments(&["cache", "prune", "/tmp/nonexistent"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown cache action prune"), "stderr: {stderr}");

    let out = experiments(&["cache", "stats", "/tmp", "--badflag"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown option --badflag"), "stderr: {stderr}");
}
