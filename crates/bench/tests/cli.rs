//! End-to-end tests of the `experiments` binary: campaign scheduling,
//! scenario-name dedup, structured export, and flag-error reporting.

use std::path::PathBuf;
use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

/// A throwaway output directory unique to this test binary run.
fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfcache_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dedupes_scenarios_and_exports_one_file_each() {
    let dir = temp_out("export");
    let out = experiments()
        .args(["table2", "fig6", "fig6", "--quick", "--insts", "2000", "--warmup", "500"])
        .arg("--csv")
        .arg(&dir)
        .arg("--json")
        .arg(&dir)
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stderr.contains("duplicate scenario name fig6"), "stderr: {stderr}");
    // The duplicate ran once: one Figure 6 report, one campaign line.
    assert_eq!(stdout.matches("Figure 6").count(), 1, "stdout: {stdout}");
    assert!(stderr.contains("2 scenario(s)"), "stderr: {stderr}");

    for name in ["table2", "fig6"] {
        let csv = std::fs::read_to_string(dir.join(format!("{name}.csv"))).unwrap();
        assert!(csv.lines().count() >= 2, "{name}.csv too short: {csv}");
        let json = std::fs::read_to_string(dir.join(format!("{name}.json"))).unwrap();
        assert!(json.contains("\"header\"") && json.contains("\"rows\""), "{name}.json: {json}");
    }
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 4, "exactly one csv + json per scenario");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reports_which_flag_is_missing_its_value() {
    // Regression: a trailing valueless flag used to die with a generic
    // "expected a number" that never named the flag.
    let out = experiments().args(["fig6", "--insts"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing value for --insts"), "stderr: {stderr}");

    let out = experiments().args(["fig6", "--jobs", "many"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value many for --jobs"), "stderr: {stderr}");

    // Underscore grouping is stripped before parsing (1_000 is fine),
    // but the error must name the token the user typed: `_` strips to
    // the empty string, and the old message surfaced that mangled form.
    let out = experiments().args(["fig6", "--insts", "_"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value _ for --insts"), "stderr: {stderr}");

    let out = experiments()
        .args(["fig6", "--quick", "--insts", "2_000", "--warmup", "500"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "grouped numbers must still parse");

    let out = experiments().args(["fig6", "--csv"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing value for --csv"), "stderr: {stderr}");

    // A following flag must not be swallowed as the directory value.
    let out = experiments().args(["fig6", "--csv", "--quick"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing value for --csv"), "stderr: {stderr}");
}

#[test]
fn reports_malformed_shard_slices_with_the_flag_name() {
    // I ≥ N, N = 0, non-numeric, missing separator, missing value: all
    // must name --shard in the PR 2 flag-error style and exit 2.
    for (arg, detail) in [
        ("2/2", "shard index 2 must be less than shard count 2"),
        ("5/4", "shard index 5 must be less than shard count 4"),
        ("0/0", "shard count must be positive"),
        ("x/2", "expected I/N"),
        ("1", "expected I/N"),
        ("1/2/3", "expected I/N"),
    ] {
        let out = experiments().args(["fig6", "--shard", arg]).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "--shard {arg}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("invalid value {arg} for --shard: {detail}")),
            "--shard {arg} stderr: {stderr}"
        );
    }

    let out = experiments().args(["fig6", "--shard"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing value for --shard"), "stderr: {stderr}");

    // --out is a shard-worker flag.
    let out = experiments().args(["fig6", "--out", "x.jsonl"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--out requires --shard"), "stderr: {stderr}");

    // merge with no files names the problem.
    let out = experiments().args(["merge"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("merge needs at least one shard file"), "stderr: {stderr}");
}

#[test]
fn diagnostics_stay_on_stderr_and_stdout_stays_machine_readable() {
    // Duplicate-name warning and the campaign summary are diagnostics:
    // stdout must carry nothing but the reports.
    let out = experiments()
        .args(["table2", "table2", "--quick", "--insts", "1500", "--warmup", "300"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning: duplicate scenario name table2"), "stderr: {stderr}");
    assert!(stderr.contains("[campaign:"), "stderr: {stderr}");
    assert!(!stdout.contains("warning"), "stdout: {stdout}");
    assert!(!stdout.contains("[campaign"), "stdout: {stdout}");
    assert!(stdout.contains("Table 2"), "stdout: {stdout}");
}

#[test]
fn seed_flag_selects_the_workload_stream() {
    let run = |seed: &str| {
        let out = experiments()
            .args(["readstats", "--quick", "--insts", "1500", "--warmup", "300", "--seed", seed])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a1 = run("1");
    let a2 = run("1");
    let b = run("99");
    assert_eq!(a1, a2, "equal seeds must reproduce the report exactly");
    assert_ne!(a1, b, "the seed must be threaded into every planned RunSpec");
}

#[test]
fn merge_names_the_missing_and_duplicated_indices() {
    let dir = temp_out("coverage");
    std::fs::create_dir_all(&dir).unwrap();
    let base = ["fig6", "--quick", "--insts", "1500", "--warmup", "300"];
    let s0 = dir.join("s0.jsonl");
    let s1 = dir.join("s1.jsonl");
    for (shard, path) in [("0/2", &s0), ("1/2", &s1)] {
        let out = experiments()
            .args(base)
            .args(["--shard", shard, "--out", path.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    }

    // Drop shard 1's first record (the campaign index right after the
    // header line) — the coverage error must name that index, not just
    // report a count.
    let intact = std::fs::read_to_string(&s1).unwrap();
    let lines: Vec<&str> = intact.lines().collect();
    assert!(lines.len() >= 3, "need a header and at least two records");
    let dropped = lines[1];
    let marker = "\"index\": ";
    let at = dropped.find(marker).unwrap() + marker.len();
    let index: String = dropped[at..].chars().take_while(char::is_ascii_digit).collect();
    let mut tampered: Vec<&str> = lines.clone();
    tampered.remove(1);
    std::fs::write(&s1, format!("{}\n", tampered.join("\n"))).unwrap();

    let s0_records = std::fs::read_to_string(&s0).unwrap().lines().count() - 1;
    let plan_size = s0_records + (lines.len() - 1);
    let merge = experiments()
        .args(["merge", s0.to_str().unwrap(), s1.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!merge.status.success());
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(
        stderr.contains(&format!("missing 1 of {plan_size} campaign index(es): [{index}]")),
        "stderr: {stderr}"
    );

    // Duplicate a record instead: the error must name it as duplicated.
    std::fs::write(&s1, format!("{intact}{dropped}\n")).unwrap();
    let merge = experiments()
        .args(["merge", s0.to_str().unwrap(), s1.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!merge.status.success());
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(
        stderr.contains(&format!("duplicated campaign index(es): [{index}]")),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("missing"), "a pure duplicate must not report gaps: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_unknown_scenarios_and_empty_selection() {
    let out = experiments().args(["fig4"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment fig4"));

    let out = experiments().args(["--quick"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no experiment selected"));
}
