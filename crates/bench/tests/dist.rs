//! End-to-end tests of the distributed TCP backend: `serve` + `work`
//! processes (and the one-command `--dist-workers` path) must reproduce
//! the single-process run byte for byte — stdout reports and CSV/JSON
//! exports alike — including when a worker dies mid-campaign and its
//! leases are re-issued.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

/// A two-scenario campaign: big enough for several leases, small enough
/// to keep the debug-build test quick.
const CAMPAIGN: &[&str] = &["fig6", "fig5", "--quick", "--insts", "2000", "--warmup", "500"];

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfcache_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file in `dir`, name → bytes.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

fn run_reference(dir: &Path) -> Output {
    let out = experiments(
        &[CAMPAIGN, &["--csv", dir.to_str().unwrap(), "--json", dir.to_str().unwrap()]].concat(),
    );
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    out
}

#[test]
fn dist_workers_is_byte_identical_to_single_process() {
    let work = temp_dir("workers");
    let ref_dir = work.join("ref");
    let dist_dir = work.join("dist");
    let reference = run_reference(&ref_dir);

    let dist = experiments(
        &[
            CAMPAIGN,
            &[
                "--dist-workers",
                "2",
                "--csv",
                dist_dir.to_str().unwrap(),
                "--json",
                dist_dir.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert!(dist.status.success(), "stderr: {}", String::from_utf8_lossy(&dist.stderr));
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&dist.stdout),
        "distributed stdout reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));
    let _ = std::fs::remove_dir_all(&work);
}

/// Spawns a coordinator (`serve` or `resume`) on an ephemeral port and
/// returns the child plus the address it logged, draining the rest of
/// its stderr in a thread (a full pipe would deadlock the coordinator).
fn spawn_coordinator(args: &[&str]) -> (Child, String, std::sync::mpsc::Receiver<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("coordinator spawns");
    let stderr = child.stderr.take().unwrap();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let (log_tx, log_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut log = String::new();
        for line in BufReader::new(stderr).lines() {
            let line = line.unwrap_or_default();
            if let Some(rest) = line.strip_prefix("[serve: listening on ") {
                let addr = rest.split(',').next().unwrap_or(rest).trim_end_matches(']');
                let _ = addr_tx.send(addr.to_string());
            }
            log.push_str(&line);
            log.push('\n');
        }
        let _ = log_tx.send(log);
    });
    let addr = addr_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("the coordinator logs its listening address");
    (child, addr, log_rx)
}

/// [`spawn_coordinator`] for a fresh `serve` over [`CAMPAIGN`], one
/// index per lease.
fn spawn_serve(dist_dir: &Path) -> (Child, String, std::sync::mpsc::Receiver<String>) {
    let mut args: Vec<&str> =
        vec!["serve", "--bind", "127.0.0.1:0", "--chunk", "1", "--lease-timeout", "600"];
    args.extend_from_slice(CAMPAIGN);
    args.extend_from_slice(&[
        "--csv",
        dist_dir.to_str().unwrap(),
        "--json",
        dist_dir.to_str().unwrap(),
    ]);
    spawn_coordinator(&args)
}

#[test]
fn killed_worker_leases_are_reissued_and_output_converges() {
    let work = temp_dir("reissue");
    let ref_dir = work.join("ref");
    let dist_dir = work.join("dist");
    let reference = run_reference(&ref_dir);

    let (serve, addr, serve_log) = spawn_serve(&dist_dir);

    // Worker 1 completes exactly one lease, then simulates a crash:
    // it exits on receiving its second lease without processing it —
    // that lease is in flight from the coordinator's point of view.
    let faulty =
        experiments(&["work", "--connect", &addr, "--jobs", "1", "--quit-after-leases", "1"]);
    assert!(faulty.status.success(), "stderr: {}", String::from_utf8_lossy(&faulty.stderr));
    let faulty_log = String::from_utf8_lossy(&faulty.stderr);
    assert!(faulty_log.contains("fault injection"), "stderr: {faulty_log}");

    // Worker 2 joins afterwards and must pick up the re-queued lease
    // plus everything still pending.
    let survivor = experiments(&["work", "--connect", &addr]);
    assert!(survivor.status.success(), "stderr: {}", String::from_utf8_lossy(&survivor.stderr));

    let out = serve.wait_with_output().expect("serve exits");
    let log = serve_log.recv_timeout(std::time::Duration::from_secs(10)).unwrap_or_default();
    assert!(out.status.success(), "serve stderr: {log}");
    assert!(log.contains("re-queued"), "the dead worker's lease must be re-queued: {log}");

    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&out.stdout),
        "post-crash reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn work_and_serve_name_their_required_flags() {
    let out = experiments(&["work"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("work needs --connect"), "stderr: {stderr}");

    let out = experiments(&["serve", "fig6"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("serve needs --bind"), "stderr: {stderr}");

    let out = experiments(&["fig6", "--dist-workers", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value 0 for --dist-workers"), "stderr: {stderr}");

    let out = experiments(&["fig6", "--dist-workers", "2", "--workers", "2"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drop --shard/--workers"), "stderr: {stderr}");

    // A zero connect window would make the deadline expire before the
    // first attempt; like --lease-timeout, it must be rejected by name.
    let out = experiments(&["work", "--connect", "127.0.0.1:1", "--connect-timeout", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value 0 for --connect-timeout"), "stderr: {stderr}");

    // A worker pointed at nothing fails with the address in the message
    // (short retry window so the test stays fast).
    let out = experiments(&["work", "--connect", "127.0.0.1:1", "--connect-timeout", "1"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("127.0.0.1:1"), "stderr: {stderr}");

    // resume names its two required flags.
    let out = experiments(&["resume", "--bind", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resume needs --journal"), "stderr: {stderr}");

    let out = experiments(&["resume", "--journal", "nope.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resume needs --bind"), "stderr: {stderr}");

    // --journal outside the distributed backends is a usage error.
    let out = experiments(&["fig6", "--journal", "x.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--journal requires --dist-workers"), "stderr: {stderr}");
}

/// Reads the coordinator's live thread count from procfs (Linux only —
/// elsewhere the soak still verifies byte-identity, just not the
/// thread invariant).
#[cfg(target_os = "linux")]
fn thread_count(pid: u32) -> Option<usize> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// The tentpole invariant, end to end: 64 concurrent workers against
/// one coordinator whose readiness loop runs handshakes, leasing,
/// record streaming, and the HTTP control plane on a single thread —
/// and the output is still byte-identical to the in-process and
/// sharded backends.
#[test]
fn soak_64_workers_one_thread_and_a_live_control_plane() {
    use rfcache_sim::JsonValue;

    let soak: &[&str] = &["all", "--quick", "--insts", "2000", "--warmup", "500"];
    let work = temp_dir("soak");
    let ref_dir = work.join("ref");
    let shard_dir = work.join("shard");
    let dist_dir = work.join("dist");

    let reference = experiments(
        &[soak, &["--csv", ref_dir.to_str().unwrap(), "--json", ref_dir.to_str().unwrap()]]
            .concat(),
    );
    assert!(reference.status.success(), "stderr: {}", String::from_utf8_lossy(&reference.stderr));

    let sharded = experiments(
        &[
            soak,
            &[
                "--workers",
                "2",
                "--csv",
                shard_dir.to_str().unwrap(),
                "--json",
                shard_dir.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert!(sharded.status.success(), "stderr: {}", String::from_utf8_lossy(&sharded.stderr));
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&sharded.stdout),
        "sharded stdout reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&shard_dir));

    // The 64-worker distributed run, with the control plane attached.
    let mut dist = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(
            [
                soak,
                &[
                    "--dist-workers",
                    "64",
                    "--http",
                    "127.0.0.1:0",
                    "--csv",
                    dist_dir.to_str().unwrap(),
                    "--json",
                    dist_dir.to_str().unwrap(),
                ],
            ]
            .concat(),
        )
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("coordinator spawns");
    let pid = dist.id();
    let stderr = dist.stderr.take().unwrap();
    let (http_tx, http_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let line = line.unwrap_or_default();
            if let Some(rest) = line.strip_prefix("[serve: http status on ") {
                let _ = http_tx.send(rest.trim_end_matches(']').to_string());
            }
        }
    });
    let http_addr = http_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("the coordinator logs its control-plane address");

    // Probe /status until at least one worker has joined: a 200 answer
    // can only come from the serve loop itself, so at that moment the
    // coordinator is verifiably mid-campaign.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let status = loop {
        assert!(std::time::Instant::now() < deadline, "no worker joined within 60s");
        let probe = experiments(&["status", "--connect", &http_addr, "--json"]);
        if !probe.status.success() {
            std::thread::sleep(std::time::Duration::from_millis(50));
            continue;
        }
        let body = String::from_utf8_lossy(&probe.stdout).into_owned();
        let parsed = rfcache_sim::parse_json(&body)
            .unwrap_or_else(|e| panic!("malformed /status JSON: {e}\n{body}"));
        let joined =
            parsed.get("workers_joined").and_then(JsonValue::as_u64).expect("workers_joined");
        if joined >= 1 {
            break parsed;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };

    // One readiness loop means one thread — handshakes, leases, record
    // streaming, and this very /status answer all interleave on it.
    #[cfg(target_os = "linux")]
    {
        let threads = thread_count(pid).expect("coordinator is alive mid-campaign");
        assert_eq!(threads, 1, "the coordinator must stay single-threaded while serving");
    }

    // Progress counters partition the plan at every instant.
    let count = |key: &str| status.get(key).and_then(JsonValue::as_u64).unwrap_or(u64::MAX);
    assert_eq!(
        count("completed") + count("leased") + count("pending"),
        count("runs"),
        "status counters must partition the plan: {status:?}"
    );
    assert!(count("runs") > 64, "all --quick plans more runs than workers");

    // The liveness endpoint answers from the same loop.
    let (code, body) =
        rfcache_sim::http::get(&http_addr, "/healthz", std::time::Duration::from_secs(5))
            .expect("/healthz answers");
    assert_eq!(code, 200, "healthz body: {body}");
    assert!(body.contains("\"ok\""), "healthz body: {body}");

    // The pretty renderer digests the same snapshot.
    let pretty = experiments(&["status", "--connect", &http_addr]);
    if pretty.status.success() {
        let text = String::from_utf8_lossy(&pretty.stdout).into_owned();
        assert!(text.contains("run(s):"), "pretty status: {text}");
        assert!(text.contains("workers:"), "pretty status: {text}");
    }
    // (A non-zero exit here means the campaign finished between probes —
    // the mid-campaign assertions above already ran against live JSON.)

    let out = dist.wait_with_output().expect("coordinator exits");
    assert!(out.status.success(), "dist run failed");
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&out.stdout),
        "64-worker distributed stdout reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn status_subcommand_names_its_flags_and_failures() {
    let out = experiments(&["status"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("status needs --connect"), "stderr: {stderr}");

    let out = experiments(&["status", "--connect", "127.0.0.1:1", "--pretty"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown option --pretty"), "stderr: {stderr}");

    // A dead coordinator is a plain failure naming the address.
    let out = experiments(&["status", "--connect", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("127.0.0.1:1"), "stderr: {stderr}");

    // --http outside the distributed backends is a usage error.
    let out = experiments(&["fig6", "--http", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--http requires --dist-workers"), "stderr: {stderr}");
}

#[test]
fn killed_coordinator_resumes_from_its_journal_byte_identically() {
    let work = temp_dir("resume");
    let ref_dir = work.join("ref");
    let dist_dir = work.join("dist");
    let journal = work.join("campaign.journal");
    let journal_str = journal.to_str().unwrap().to_string();
    let reference = run_reference(&ref_dir);

    // A journaling coordinator, one index per lease so the worker below
    // completes exactly three records before "crashing".
    let mut serve_args: Vec<&str> = vec![
        "serve",
        "--bind",
        "127.0.0.1:0",
        "--chunk",
        "1",
        "--lease-timeout",
        "600",
        "--journal",
        &journal_str,
        "--journal-sync",
        "1",
    ];
    serve_args.extend_from_slice(CAMPAIGN);
    serve_args.extend_from_slice(&[
        "--csv",
        dist_dir.to_str().unwrap(),
        "--json",
        dist_dir.to_str().unwrap(),
    ]);
    let (mut serve, addr, _serve_log) = spawn_coordinator(&serve_args);

    // Three leases land in the journal, then the worker quits; records
    // are accepted (and journaled) before the next lease is issued, so
    // the journal is guaranteed to hold them once the worker exits.
    let faulty =
        experiments(&["work", "--connect", &addr, "--jobs", "1", "--quit-after-leases", "3"]);
    assert!(faulty.status.success(), "stderr: {}", String::from_utf8_lossy(&faulty.stderr));

    // Crash the coordinator outright: its in-memory slot table is gone,
    // only the journal survives.
    serve.kill().expect("coordinator killed");
    let _ = serve.wait();
    let journaled = std::fs::read_to_string(&journal).unwrap();
    assert!(
        journaled.lines().count() >= 4,
        "journal should hold the header plus three records: {journaled}"
    );

    // Tear the final line, as a crash mid-`write` would.
    let torn = format!("{journaled}{{\"index\": 0, \"finge");
    std::fs::write(&journal, torn).unwrap();

    // A fresh serve must refuse to clobber the resumable journal.
    let clobber = experiments(&serve_args);
    assert_eq!(clobber.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&clobber.stderr);
    assert!(stderr.contains("already exists"), "stderr: {stderr}");

    // Resume: the campaign (scenarios, options, plan) comes from the
    // journal header; the torn line is dropped, the three complete
    // records are replayed, and only the remainder is served.
    let (resume, addr, resume_log) = spawn_coordinator(&[
        "resume",
        "--journal",
        &journal_str,
        "--bind",
        "127.0.0.1:0",
        "--chunk",
        "1",
        "--lease-timeout",
        "600",
        "--csv",
        dist_dir.to_str().unwrap(),
        "--json",
        dist_dir.to_str().unwrap(),
    ]);
    let survivor = experiments(&["work", "--connect", &addr]);
    assert!(survivor.status.success(), "stderr: {}", String::from_utf8_lossy(&survivor.stderr));

    let out = resume.wait_with_output().expect("resume exits");
    let log = resume_log.recv_timeout(std::time::Duration::from_secs(10)).unwrap_or_default();
    assert!(out.status.success(), "resume stderr: {log}");
    assert!(log.contains("torn"), "the torn final line must be reported: {log}");
    assert!(
        log.contains("replayed 3 of"),
        "exactly the three journaled records must be replayed: {log}"
    );

    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&out.stdout),
        "resumed reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));

    // The finished journal is a valid one-shard shard file: merge alone
    // reproduces the same reports.
    let merged = experiments(&["merge", &journal_str]);
    assert!(merged.status.success(), "stderr: {}", String::from_utf8_lossy(&merged.stderr));
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&merged.stdout),
        "merging the completed journal diverges from the single-process run"
    );
    let _ = std::fs::remove_dir_all(&work);
}
