//! End-to-end tests of the distributed TCP backend: `serve` + `work`
//! processes (and the one-command `--dist-workers` path) must reproduce
//! the single-process run byte for byte — stdout reports and CSV/JSON
//! exports alike — including when a worker dies mid-campaign and its
//! leases are re-issued.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

/// A two-scenario campaign: big enough for several leases, small enough
/// to keep the debug-build test quick.
const CAMPAIGN: &[&str] = &["fig6", "fig5", "--quick", "--insts", "2000", "--warmup", "500"];

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfcache_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file in `dir`, name → bytes.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

fn run_reference(dir: &Path) -> Output {
    let out = experiments(
        &[CAMPAIGN, &["--csv", dir.to_str().unwrap(), "--json", dir.to_str().unwrap()]].concat(),
    );
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    out
}

#[test]
fn dist_workers_is_byte_identical_to_single_process() {
    let work = temp_dir("workers");
    let ref_dir = work.join("ref");
    let dist_dir = work.join("dist");
    let reference = run_reference(&ref_dir);

    let dist = experiments(
        &[
            CAMPAIGN,
            &[
                "--dist-workers",
                "2",
                "--csv",
                dist_dir.to_str().unwrap(),
                "--json",
                dist_dir.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert!(dist.status.success(), "stderr: {}", String::from_utf8_lossy(&dist.stderr));
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&dist.stdout),
        "distributed stdout reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));
    let _ = std::fs::remove_dir_all(&work);
}

/// Spawns a coordinator (`serve` or `resume`) on an ephemeral port and
/// returns the child plus the address it logged, draining the rest of
/// its stderr in a thread (a full pipe would deadlock the coordinator).
fn spawn_coordinator(args: &[&str]) -> (Child, String, std::sync::mpsc::Receiver<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("coordinator spawns");
    let stderr = child.stderr.take().unwrap();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let (log_tx, log_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut log = String::new();
        for line in BufReader::new(stderr).lines() {
            let line = line.unwrap_or_default();
            if let Some(rest) = line.strip_prefix("[serve: listening on ") {
                let addr = rest.split(',').next().unwrap_or(rest).trim_end_matches(']');
                let _ = addr_tx.send(addr.to_string());
            }
            log.push_str(&line);
            log.push('\n');
        }
        let _ = log_tx.send(log);
    });
    let addr = addr_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("the coordinator logs its listening address");
    (child, addr, log_rx)
}

/// [`spawn_coordinator`] for a fresh `serve` over [`CAMPAIGN`], one
/// index per lease.
fn spawn_serve(dist_dir: &Path) -> (Child, String, std::sync::mpsc::Receiver<String>) {
    let mut args: Vec<&str> =
        vec!["serve", "--bind", "127.0.0.1:0", "--chunk", "1", "--lease-timeout", "600"];
    args.extend_from_slice(CAMPAIGN);
    args.extend_from_slice(&[
        "--csv",
        dist_dir.to_str().unwrap(),
        "--json",
        dist_dir.to_str().unwrap(),
    ]);
    spawn_coordinator(&args)
}

#[test]
fn killed_worker_leases_are_reissued_and_output_converges() {
    let work = temp_dir("reissue");
    let ref_dir = work.join("ref");
    let dist_dir = work.join("dist");
    let reference = run_reference(&ref_dir);

    let (serve, addr, serve_log) = spawn_serve(&dist_dir);

    // Worker 1 completes exactly one lease, then simulates a crash:
    // it exits on receiving its second lease without processing it —
    // that lease is in flight from the coordinator's point of view.
    let faulty =
        experiments(&["work", "--connect", &addr, "--jobs", "1", "--quit-after-leases", "1"]);
    assert!(faulty.status.success(), "stderr: {}", String::from_utf8_lossy(&faulty.stderr));
    let faulty_log = String::from_utf8_lossy(&faulty.stderr);
    assert!(faulty_log.contains("fault injection"), "stderr: {faulty_log}");

    // Worker 2 joins afterwards and must pick up the re-queued lease
    // plus everything still pending.
    let survivor = experiments(&["work", "--connect", &addr]);
    assert!(survivor.status.success(), "stderr: {}", String::from_utf8_lossy(&survivor.stderr));

    let out = serve.wait_with_output().expect("serve exits");
    let log = serve_log.recv_timeout(std::time::Duration::from_secs(10)).unwrap_or_default();
    assert!(out.status.success(), "serve stderr: {log}");
    assert!(log.contains("re-queued"), "the dead worker's lease must be re-queued: {log}");

    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&out.stdout),
        "post-crash reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn work_and_serve_name_their_required_flags() {
    let out = experiments(&["work"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("work needs --connect"), "stderr: {stderr}");

    let out = experiments(&["serve", "fig6"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("serve needs --bind"), "stderr: {stderr}");

    let out = experiments(&["fig6", "--dist-workers", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value 0 for --dist-workers"), "stderr: {stderr}");

    let out = experiments(&["fig6", "--dist-workers", "2", "--workers", "2"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drop --shard/--workers"), "stderr: {stderr}");

    // A zero connect window would make the deadline expire before the
    // first attempt; like --lease-timeout, it must be rejected by name.
    let out = experiments(&["work", "--connect", "127.0.0.1:1", "--connect-timeout", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid value 0 for --connect-timeout"), "stderr: {stderr}");

    // A worker pointed at nothing fails with the address in the message
    // (short retry window so the test stays fast).
    let out = experiments(&["work", "--connect", "127.0.0.1:1", "--connect-timeout", "1"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("127.0.0.1:1"), "stderr: {stderr}");

    // resume names its two required flags.
    let out = experiments(&["resume", "--bind", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resume needs --journal"), "stderr: {stderr}");

    let out = experiments(&["resume", "--journal", "nope.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resume needs --bind"), "stderr: {stderr}");

    // --journal outside the distributed backends is a usage error.
    let out = experiments(&["fig6", "--journal", "x.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--journal requires --dist-workers"), "stderr: {stderr}");
}

#[test]
fn killed_coordinator_resumes_from_its_journal_byte_identically() {
    let work = temp_dir("resume");
    let ref_dir = work.join("ref");
    let dist_dir = work.join("dist");
    let journal = work.join("campaign.journal");
    let journal_str = journal.to_str().unwrap().to_string();
    let reference = run_reference(&ref_dir);

    // A journaling coordinator, one index per lease so the worker below
    // completes exactly three records before "crashing".
    let mut serve_args: Vec<&str> = vec![
        "serve",
        "--bind",
        "127.0.0.1:0",
        "--chunk",
        "1",
        "--lease-timeout",
        "600",
        "--journal",
        &journal_str,
        "--journal-sync",
        "1",
    ];
    serve_args.extend_from_slice(CAMPAIGN);
    serve_args.extend_from_slice(&[
        "--csv",
        dist_dir.to_str().unwrap(),
        "--json",
        dist_dir.to_str().unwrap(),
    ]);
    let (mut serve, addr, _serve_log) = spawn_coordinator(&serve_args);

    // Three leases land in the journal, then the worker quits; records
    // are accepted (and journaled) before the next lease is issued, so
    // the journal is guaranteed to hold them once the worker exits.
    let faulty =
        experiments(&["work", "--connect", &addr, "--jobs", "1", "--quit-after-leases", "3"]);
    assert!(faulty.status.success(), "stderr: {}", String::from_utf8_lossy(&faulty.stderr));

    // Crash the coordinator outright: its in-memory slot table is gone,
    // only the journal survives.
    serve.kill().expect("coordinator killed");
    let _ = serve.wait();
    let journaled = std::fs::read_to_string(&journal).unwrap();
    assert!(
        journaled.lines().count() >= 4,
        "journal should hold the header plus three records: {journaled}"
    );

    // Tear the final line, as a crash mid-`write` would.
    let torn = format!("{journaled}{{\"index\": 0, \"finge");
    std::fs::write(&journal, torn).unwrap();

    // A fresh serve must refuse to clobber the resumable journal.
    let clobber = experiments(&serve_args);
    assert_eq!(clobber.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&clobber.stderr);
    assert!(stderr.contains("already exists"), "stderr: {stderr}");

    // Resume: the campaign (scenarios, options, plan) comes from the
    // journal header; the torn line is dropped, the three complete
    // records are replayed, and only the remainder is served.
    let (resume, addr, resume_log) = spawn_coordinator(&[
        "resume",
        "--journal",
        &journal_str,
        "--bind",
        "127.0.0.1:0",
        "--chunk",
        "1",
        "--lease-timeout",
        "600",
        "--csv",
        dist_dir.to_str().unwrap(),
        "--json",
        dist_dir.to_str().unwrap(),
    ]);
    let survivor = experiments(&["work", "--connect", &addr]);
    assert!(survivor.status.success(), "stderr: {}", String::from_utf8_lossy(&survivor.stderr));

    let out = resume.wait_with_output().expect("resume exits");
    let log = resume_log.recv_timeout(std::time::Duration::from_secs(10)).unwrap_or_default();
    assert!(out.status.success(), "resume stderr: {log}");
    assert!(log.contains("torn"), "the torn final line must be reported: {log}");
    assert!(
        log.contains("replayed 3 of"),
        "exactly the three journaled records must be replayed: {log}"
    );

    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&out.stdout),
        "resumed reports diverge from the single-process run"
    );
    assert_eq!(dir_contents(&ref_dir), dir_contents(&dist_dir));

    // The finished journal is a valid one-shard shard file: merge alone
    // reproduces the same reports.
    let merged = experiments(&["merge", &journal_str]);
    assert!(merged.status.success(), "stderr: {}", String::from_utf8_lossy(&merged.stderr));
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&merged.stdout),
        "merging the completed journal diverges from the single-process run"
    );
    let _ = std::fs::remove_dir_all(&work);
}
