//! End-to-end tests of the multi-campaign coordinator service: one
//! `serve --http` process must accept several `POST /campaigns`
//! submissions, serve them through the queued → serving → complete →
//! fetched lifecycle without restarting, answer every error path with
//! the right 4xx while a campaign is in flight, and hand `fetch`
//! results that are byte-identical to running the same description in
//! process — with `--cache` results from one campaign pre-filling the
//! next.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// Two campaign descriptions sharing the `readstats` scenario, so the
/// second can be partially satisfied from the first's cached results.
const OPTS: &[&str] = &["--quick", "--insts", "2000", "--warmup", "500"];
const CAMPAIGN_A: &[&str] = &["readstats"];
const CAMPAIGN_B: &[&str] = &["readstats", "fig3"];

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfcache_service_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file in `dir`, name → bytes.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

/// Spawns the campaign service on ephemeral ports and returns the child
/// plus the worker and control-plane addresses it logged (draining the
/// rest of stderr in a thread — a full pipe would deadlock the loop).
fn spawn_service(extra: &[&str]) -> (Child, String, String, std::sync::mpsc::Receiver<String>) {
    let mut args: Vec<&str> =
        vec!["serve", "--bind", "127.0.0.1:0", "--http", "127.0.0.1:0", "--chunk", "1"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("service spawns");
    let stderr = child.stderr.take().unwrap();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let (log_tx, log_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut log = String::new();
        for line in BufReader::new(stderr).lines() {
            let line = line.unwrap_or_default();
            // "[service: workers on A, submissions on http://B/campaigns]"
            if let Some(rest) = line.strip_prefix("[service: workers on ") {
                if let Some((workers, control)) = rest.split_once(", submissions on http://") {
                    let control = control.trim_end_matches(']').trim_end_matches("/campaigns");
                    let _ = addr_tx.send((workers.to_string(), control.to_string()));
                }
            }
            log.push_str(&line);
            log.push('\n');
        }
        let _ = log_tx.send(log);
    });
    let (workers, control) =
        addr_rx.recv_timeout(Duration::from_secs(30)).expect("the service logs its two addresses");
    (child, workers, control, log_rx)
}

/// Submits a campaign and returns the id `submit` printed to stdout.
fn submit(control: &str, names: &[&str]) -> String {
    let args = [&["submit", "--connect", control], names, OPTS].concat();
    let out = experiments(&args);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let id = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(id.parse::<u64>().is_ok(), "submit must print a numeric id, got {id:?}");
    id
}

/// The tentpole invariant end to end: one service process, two POSTed
/// campaigns served back to back, per-campaign journals, the second
/// pre-filled from the first's cached results — and both fetches
/// byte-identical (stdout reports and CSV/JSON exports) to in-process
/// runs of the same descriptions.
#[test]
fn two_campaigns_through_one_service_are_byte_identical_and_cache_warmed() {
    let work = temp_dir("lifecycle");
    let journals = work.join("journals");
    let cache = work.join("cache");
    let (ref_a, ref_b) = (work.join("ref_a"), work.join("ref_b"));
    let (got_a, got_b) = (work.join("got_a"), work.join("got_b"));

    let reference = |names: &[&str], dir: &Path| {
        let out = experiments(
            &[names, OPTS, &["--csv", dir.to_str().unwrap(), "--json", dir.to_str().unwrap()]]
                .concat(),
        );
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        out
    };
    let reference_a = reference(CAMPAIGN_A, &ref_a);
    let reference_b = reference(CAMPAIGN_B, &ref_b);

    let (service, workers, control, service_log) = spawn_service(&[
        "--journal",
        journals.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
        "--max-campaigns",
        "2",
    ]);

    // Both submissions land up front; the second queues behind the first.
    let id_a = submit(&control, CAMPAIGN_A);
    let id_b = submit(&control, CAMPAIGN_B);
    assert_ne!(id_a, id_b);

    // The pretty status renderer sees the service schema.
    let status = experiments(&["status", "--connect", &control]);
    assert!(status.status.success(), "stderr: {}", String::from_utf8_lossy(&status.stderr));
    let text = String::from_utf8_lossy(&status.stdout).into_owned();
    assert!(text.contains("campaign service:"), "pretty status: {text}");
    assert!(text.contains("queued") || text.contains("serving"), "pretty status: {text}");

    // One worker per campaign (a worker exits when its campaign is done).
    let worker_a = experiments(&["work", "--connect", &workers, "--jobs", "2"]);
    assert!(worker_a.status.success(), "stderr: {}", String::from_utf8_lossy(&worker_a.stderr));
    let fetch_a = experiments(&[
        "fetch",
        "--connect",
        &control,
        "--id",
        &id_a,
        "--csv",
        got_a.to_str().unwrap(),
        "--json",
        got_a.to_str().unwrap(),
    ]);
    assert!(fetch_a.status.success(), "stderr: {}", String::from_utf8_lossy(&fetch_a.stderr));

    let worker_b = experiments(&["work", "--connect", &workers, "--jobs", "2"]);
    assert!(worker_b.status.success(), "stderr: {}", String::from_utf8_lossy(&worker_b.stderr));
    let fetch_b = experiments(&[
        "fetch",
        "--connect",
        &control,
        "--id",
        &id_b,
        "--csv",
        got_b.to_str().unwrap(),
        "--json",
        got_b.to_str().unwrap(),
    ]);
    assert!(fetch_b.status.success(), "stderr: {}", String::from_utf8_lossy(&fetch_b.stderr));

    // --max-campaigns 2: both fetched, so the service exits cleanly.
    let out = service.wait_with_output().expect("service exits");
    let log = service_log.recv_timeout(Duration::from_secs(10)).unwrap_or_default();
    assert!(out.status.success(), "service stderr: {log}");

    // Byte-identity of everything a client sees.
    assert_eq!(
        String::from_utf8_lossy(&reference_a.stdout),
        String::from_utf8_lossy(&fetch_a.stdout),
        "campaign A reports diverge from the in-process run"
    );
    assert_eq!(
        String::from_utf8_lossy(&reference_b.stdout),
        String::from_utf8_lossy(&fetch_b.stdout),
        "campaign B reports diverge from the in-process run"
    );
    assert_eq!(dir_contents(&ref_a), dir_contents(&got_a));
    assert_eq!(dir_contents(&ref_b), dir_contents(&got_b));

    // Campaign B shares `readstats` with campaign A, so its promotion
    // must have pre-filled those runs from the cache...
    assert!(
        log.contains("4 from cache"),
        "campaign B must be pre-filled from campaign A's cached results: {log}"
    );
    // ...and worker B must therefore have simulated only the remainder.
    let worker_b_log = String::from_utf8_lossy(&worker_b.stderr);
    assert!(
        worker_b_log.contains("[work: 4 simulation(s)"),
        "worker B should simulate only the uncached runs: {worker_b_log}"
    );

    // Each campaign write-ahead journaled to its own file, and both
    // journals are complete valid shard files (header + every record).
    for (id, names, runs) in [(&id_a, CAMPAIGN_A, 4usize), (&id_b, CAMPAIGN_B, 8)] {
        let path = journals.join(format!("campaign-{id}.journal"));
        let journal = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("journal {} missing: {e}", path.display()));
        assert_eq!(
            journal.lines().count(),
            1 + runs,
            "journal {} should hold the header plus {runs} records",
            path.display()
        );
        assert!(journal.lines().next().unwrap().contains(names[0]), "header names scenarios");
    }
    let _ = std::fs::remove_dir_all(&work);
}

/// Every control-plane error path answers with the right status code —
/// and none of them disturb the campaign that is serving throughout.
#[test]
fn error_paths_answer_4xx_without_disturbing_the_inflight_campaign() {
    use rfcache_sim::http;
    let timeout = Duration::from_secs(5);

    let work = temp_dir("errors");
    let out_ref = experiments(&[CAMPAIGN_A, OPTS].concat());
    assert!(out_ref.status.success());

    let (service, workers, control, service_log) = spawn_service(&["--max-campaigns", "1"]);
    let id = submit(&control, CAMPAIGN_A);

    // The campaign is now serving (no worker yet): hit every error path.
    let post = |body: &str| {
        http::post(&control, "/campaigns", "application/json", body, timeout)
            .expect("control plane answers")
    };
    let (code, body) = post("{\"scenarios\": [\"readstats\"");
    assert_eq!(code, 400, "malformed JSON: {body}");
    let (code, body) = post("{\"scenarios\": [\"no_such_scenario\"]}");
    assert_eq!(code, 400, "unknown scenario: {body}");
    assert!(body.contains("no_such_scenario"), "the reason names the scenario: {body}");
    let (code, body) = post("{\"scenarios\": []}");
    assert_eq!(code, 400, "empty scenario list: {body}");
    let (code, body) = post("{\"scenarios\": [\"readstats\"], \"surprise\": 1}");
    assert_eq!(code, 400, "unknown field: {body}");

    let oversized = format!("{{\"scenarios\": [\"{}\"]}}", "x".repeat(http::MAX_BODY));
    let (code, body) = post(&oversized);
    assert_eq!(code, 413, "oversized body: {body}");

    let (code, body) = http::get(&control, "/campaigns/999", timeout).expect("answers");
    assert_eq!(code, 404, "unknown campaign id: {body}");
    let (code, body) = http::get(&control, "/campaigns/999/results", timeout).expect("answers");
    assert_eq!(code, 404, "unknown campaign results: {body}");
    let (code, body) = http::get(&control, "/campaigns/nope", timeout).expect("answers");
    assert_eq!(code, 404, "non-numeric campaign id: {body}");

    // Results before completion: a 409, not a hang and not a 404.
    let (code, body) =
        http::get(&control, &format!("/campaigns/{id}/results"), timeout).expect("answers");
    assert_eq!(code, 409, "premature results fetch: {body}");
    assert!(body.contains("serving") || body.contains("queued"), "names the state: {body}");

    // The in-flight campaign survived all of the above: a worker joins,
    // completes it, and the fetched reports match the in-process run.
    let worker = experiments(&["work", "--connect", &workers, "--jobs", "2"]);
    assert!(worker.status.success(), "stderr: {}", String::from_utf8_lossy(&worker.stderr));
    let fetched = experiments(&["fetch", "--connect", &control, "--id", &id]);
    assert!(fetched.status.success(), "stderr: {}", String::from_utf8_lossy(&fetched.stderr));
    assert_eq!(
        String::from_utf8_lossy(&out_ref.stdout),
        String::from_utf8_lossy(&fetched.stdout),
        "reports diverge after the error-path barrage"
    );

    let out = service.wait_with_output().expect("service exits");
    let log = service_log.recv_timeout(Duration::from_secs(10)).unwrap_or_default();
    assert!(out.status.success(), "service stderr: {log}");
    let _ = std::fs::remove_dir_all(&work);
}

/// The between-campaigns worker fix: a worker that connects while no
/// campaign is serving is told to retry (never wedged in a handshake),
/// gives up cleanly when its connect window closes, and joins normally
/// once a campaign arrives.
#[test]
fn idle_workers_are_rejected_with_retry_not_wedged() {
    // No campaign ever arrives: the worker must fail within its window,
    // not block until the handshake deadline (30s) or forever.
    let (service, workers, control, service_log) = spawn_service(&["--max-campaigns", "1"]);
    let started = Instant::now();
    let hopeless = experiments(&["work", "--connect", &workers, "--connect-timeout", "2"]);
    let waited = started.elapsed();
    assert_eq!(hopeless.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&hopeless.stderr);
    assert!(stderr.contains("no campaign to serve"), "stderr: {stderr}");
    assert!(stderr.contains("retrying"), "the retry hint must be surfaced: {stderr}");
    assert!(waited < Duration::from_secs(15), "worker wedged for {waited:?}");

    // A worker that starts waiting *before* the submission exists must
    // keep retrying and then join the campaign when it is promoted.
    let workers_addr = workers.clone();
    let patient = std::thread::spawn(move || {
        experiments(&["work", "--connect", &workers_addr, "--connect-timeout", "30"])
    });
    std::thread::sleep(Duration::from_millis(700)); // guarantee ≥1 retry cycle
    let id = submit(&control, CAMPAIGN_A);
    let patient = patient.join().expect("worker thread joins");
    assert!(patient.status.success(), "stderr: {}", String::from_utf8_lossy(&patient.stderr));
    let fetched = experiments(&["fetch", "--connect", &control, "--id", &id]);
    assert!(fetched.status.success(), "stderr: {}", String::from_utf8_lossy(&fetched.stderr));

    let out = service.wait_with_output().expect("service exits");
    let log = service_log.recv_timeout(Duration::from_secs(10)).unwrap_or_default();
    assert!(out.status.success(), "service stderr: {log}");
    assert!(
        log.contains("no campaign to serve (retry sent)"),
        "idle connections must be turned away with a retry: {log}"
    );
}

/// The service-mode flag surface names its mistakes.
#[test]
fn service_flags_and_subcommands_name_their_requirements() {
    // Service mode (no scenario names) without --http is a usage error
    // pointing both ways.
    let out = experiments(&["serve", "--bind", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("needs --http"), "stderr: {stderr}");

    // Per-campaign options belong on submit, not on the service.
    let out = experiments(&["serve", "--bind", "127.0.0.1:0", "--http", "127.0.0.1:0", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("onto `submit`"), "stderr: {stderr}");

    // --max-campaigns only means something in service mode.
    let out = experiments(&["serve", "--bind", "127.0.0.1:0", "--max-campaigns", "2", "fig6"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("campaign-service flag"), "stderr: {stderr}");

    let out = experiments(&["submit", "readstats"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("submit needs --connect"), "stderr: {stderr}");

    let out = experiments(&["fetch", "--connect", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fetch needs --id"), "stderr: {stderr}");

    // A dead service is a plain failure naming the address.
    let out = experiments(&["submit", "--connect", "127.0.0.1:1", "readstats"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("127.0.0.1:1"), "stderr: {stderr}");
}
