//! End-to-end tests of sharded campaign execution: N shard-worker
//! invocations plus `merge` (and the one-command `--workers` path) must
//! reproduce the single-process run byte for byte — stdout reports and
//! CSV/JSON exports alike.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Scenario selection + planning options shared by every invocation
/// under test. `all` covers the whole registry; the reduced instruction
/// budget keeps the debug-build test quick.
const CAMPAIGN: &[&str] = &["all", "--quick", "--insts", "2000", "--warmup", "500"];

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfcache_shard_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file in `dir`, name → bytes.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

fn run_reference(dir: &Path) -> Output {
    let out = experiments(
        &[CAMPAIGN, &["--csv", dir.to_str().unwrap(), "--json", dir.to_str().unwrap()]].concat(),
    );
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    out
}

#[test]
fn two_shard_merge_is_byte_identical_to_single_process() {
    let work = temp_dir("merge2");
    let ref_dir = work.join("ref");
    let merged_dir = work.join("merged");
    let reference = run_reference(&ref_dir);

    let mut shard_files = Vec::new();
    for shard in ["0/2", "1/2"] {
        let file = work.join(format!("s{}.jsonl", &shard[..1]));
        let out =
            experiments(&[CAMPAIGN, &["--shard", shard, "--out", file.to_str().unwrap()]].concat());
        assert!(
            out.status.success(),
            "shard {shard} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(out.stdout.is_empty(), "worker with --out must keep stdout empty");
        shard_files.push(file);
    }

    let merge = experiments(&[
        "merge",
        shard_files[0].to_str().unwrap(),
        shard_files[1].to_str().unwrap(),
        "--csv",
        merged_dir.to_str().unwrap(),
        "--json",
        merged_dir.to_str().unwrap(),
    ]);
    assert!(merge.status.success(), "stderr: {}", String::from_utf8_lossy(&merge.stderr));

    // Reports on stdout and all 13 + 13 export files must match exactly.
    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&merge.stdout),
        "merged stdout reports diverge from the single-process run"
    );
    let ref_files = dir_contents(&ref_dir);
    let merged_files = dir_contents(&merged_dir);
    assert_eq!(ref_files.len(), 26, "13 CSV + 13 JSON files expected");
    assert_eq!(ref_files.keys().collect::<Vec<_>>(), merged_files.keys().collect::<Vec<_>>());
    for (name, bytes) in &ref_files {
        assert_eq!(bytes, &merged_files[name], "{name} diverges between merge and reference");
    }
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn four_shards_and_stdout_workers_also_reproduce_the_reference() {
    let work = temp_dir("merge4");
    let ref_dir = work.join("ref");
    let reference = run_reference(&ref_dir);

    // 4 shards, shard records on stdout (no --out): redirecting the
    // machine-readable stream is enough to build the shard file.
    let mut merge_args: Vec<String> = vec!["merge".into()];
    for shard in 0..4 {
        let out = experiments(&[CAMPAIGN, &["--shard", &format!("{shard}/4")]].concat());
        assert!(out.status.success());
        let file = work.join(format!("s{shard}.jsonl"));
        std::fs::write(&file, &out.stdout).unwrap();
        merge_args.push(file.to_str().unwrap().into());
    }
    let merged_dir = work.join("merged");
    for flag in ["--csv", "--json"] {
        merge_args.push(flag.into());
        merge_args.push(merged_dir.to_str().unwrap().into());
    }
    let args: Vec<&str> = merge_args.iter().map(String::as_str).collect();
    let merge = experiments(&args);
    assert!(merge.status.success(), "stderr: {}", String::from_utf8_lossy(&merge.stderr));
    assert_eq!(reference.stdout, merge.stdout);
    assert_eq!(dir_contents(&ref_dir), dir_contents(&work.join("merged")));

    // And the one-command Subprocess-executor path.
    let workers_dir = work.join("workers");
    let workers = experiments(
        &[
            CAMPAIGN,
            &[
                "--workers",
                "2",
                "--csv",
                workers_dir.to_str().unwrap(),
                "--json",
                workers_dir.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert!(workers.status.success(), "stderr: {}", String::from_utf8_lossy(&workers.stderr));
    assert_eq!(reference.stdout, workers.stdout);
    assert_eq!(dir_contents(&ref_dir), dir_contents(&workers_dir));
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn merge_rejects_mismatched_campaigns_and_incomplete_shard_sets() {
    let work = temp_dir("drift");
    let s0 = work.join("s0.jsonl");
    let s1 = work.join("s1.jsonl");
    let base = ["fig6", "--quick", "--insts", "1500", "--warmup", "300"];
    let out =
        experiments(&[&base[..], &["--shard", "0/2", "--out", s0.to_str().unwrap()]].concat());
    assert!(out.status.success());
    // Same campaign shape but a different seed: plan drift.
    let out = experiments(
        &[&base[..], &["--seed", "7", "--shard", "1/2", "--out", s1.to_str().unwrap()]].concat(),
    );
    assert!(out.status.success());

    let merge = experiments(&["merge", s0.to_str().unwrap(), s1.to_str().unwrap()]);
    assert!(!merge.status.success());
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(stderr.contains("different campaigns"), "stderr: {stderr}");

    // A lone shard of two cannot be merged.
    let merge = experiments(&["merge", s0.to_str().unwrap()]);
    assert!(!merge.status.success());
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(stderr.contains("sharded 2 ways"), "stderr: {stderr}");

    // The same shard twice is named, not silently deduplicated.
    let merge = experiments(&["merge", s0.to_str().unwrap(), s0.to_str().unwrap()]);
    assert!(!merge.status.success());
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(stderr.contains("both claim shard 0/2"), "stderr: {stderr}");

    // Tampering with a record's fingerprint is caught as plan drift.
    let out =
        experiments(&[&base[..], &["--shard", "1/2", "--out", s1.to_str().unwrap()]].concat());
    assert!(out.status.success());
    let content = std::fs::read_to_string(&s1).unwrap();
    let marker = "\"fingerprint\": \"";
    let at = content.find(marker).unwrap() + marker.len();
    let mut tampered = content.clone();
    tampered.replace_range(at..at + 16, "0123456789abcdef");
    assert_ne!(content, tampered, "tampering must change the record");
    std::fs::write(&s1, tampered).unwrap();
    let merge = experiments(&["merge", s0.to_str().unwrap(), s1.to_str().unwrap()]);
    assert!(!merge.status.success());
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(stderr.contains("plan drift") || stderr.contains("corrupt"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&work);
}
