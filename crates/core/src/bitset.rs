//! A fixed-capacity bitset over dense physical-register indices.
//!
//! The cycle loop builds and queries per-cycle register sets (ready
//! unissued consumers, occupancy samples) tens of millions of times per
//! campaign; a `HashSet<u16>` there costs hashing and heap traffic for
//! sets whose universe — `phys_regs` — is small and known at
//! construction. This bitset is a `Vec<u64>` of words sized once, with
//! O(1) insert/remove/contains/len and word-skipping iteration.

/// A set of `u16` keys from a fixed universe `0..capacity`.
///
/// # Examples
///
/// ```
/// use rfcache_core::RegBitSet;
/// let mut set = RegBitSet::new(96);
/// assert!(set.insert(17));
/// assert!(!set.insert(17), "already present");
/// assert!(set.contains(17));
/// assert_eq!(set.len(), 1);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![17]);
/// assert!(set.remove(17));
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegBitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl RegBitSet {
    /// An empty set accepting keys `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        RegBitSet { words: vec![0; capacity.div_ceil(64)], capacity, len: 0 }
    }

    /// The key universe the set was sized for.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds `key`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `key >= capacity`.
    #[inline]
    pub fn insert(&mut self, key: u16) -> bool {
        assert!((key as usize) < self.capacity, "key {key} out of range");
        let (word, bit) = (key as usize / 64, 1u64 << (key % 64));
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `key`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, key: u16) -> bool {
        let word = key as usize / 64;
        if word >= self.words.len() {
            return false;
        }
        let bit = 1u64 << (key % 64);
        let present = self.words[word] & bit != 0;
        self.words[word] &= !bit;
        self.len -= present as usize;
        present
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: u16) -> bool {
        let word = key as usize / 64;
        word < self.words.len() && self.words[word] & (1 << (key % 64)) != 0
    }

    /// Number of keys in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every key, keeping the capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// The keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let rest = rest & (rest - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |rest| (wi * 64 + rest.trailing_zeros() as usize) as u16)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut set = RegBitSet::new(130);
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64));
        assert_eq!(set.len(), 4);
        assert!(set.contains(129) && !set.contains(128));
        assert!(set.remove(63));
        assert!(!set.remove(63));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn iter_ascending_across_word_boundaries() {
        let mut set = RegBitSet::new(200);
        for k in [199, 0, 64, 63, 65, 127, 128] {
            set.insert(k);
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut set = RegBitSet::new(80);
        set.insert(70);
        set.clear();
        assert!(set.is_empty() && !set.contains(70));
        assert_eq!(set.capacity(), 80);
        assert!(set.insert(70));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        RegBitSet::new(64).insert(64);
    }

    #[test]
    fn contains_and_remove_out_of_range_are_false() {
        let mut set = RegBitSet::new(10);
        assert!(!set.contains(1000));
        assert!(!set.remove(1000));
    }
}
