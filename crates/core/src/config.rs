//! Configuration types for the register file architectures.

use std::fmt;

/// Bypass network extent for a multi-cycle register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BypassNetwork {
    /// One bypass level per read-stage cycle: a dependent instruction can
    /// start executing the cycle after its producer finishes
    /// (back-to-back). This is the expensive option the paper wants to
    /// avoid for multi-cycle files.
    Full,
    /// Only the last bypass level is kept; values are catchable from the
    /// network exactly `read_latency` cycles after production, leaving no
    /// availability holes but sacrificing back-to-back execution when the
    /// read latency exceeds one cycle.
    SingleLevel,
}

impl fmt::Display for BypassNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BypassNetwork::Full => write!(f, "full bypass"),
            BypassNetwork::SingleLevel => write!(f, "1 bypass level"),
        }
    }
}

/// Which produced values are written into the upper level of the register
/// file cache (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachingPolicy {
    /// Cache every result that was *not* read from the bypass network.
    NonBypass,
    /// Cache only results that are source operands of a not-yet-issued
    /// instruction whose operands are now all available.
    Ready,
}

impl fmt::Display for CachingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CachingPolicy::NonBypass => write!(f, "non-bypass caching"),
            CachingPolicy::Ready => write!(f, "ready caching"),
        }
    }
}

/// How values are moved from the lower to the upper level (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchPolicy {
    /// Transfer an operand only once an instruction that needs it has all
    /// its operands available.
    OnDemand,
    /// Additionally, when an instruction issues, prefetch the other source
    /// operand of the first instruction in the window that consumes its
    /// result.
    PrefetchFirstPair,
}

impl fmt::Display for FetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchPolicy::OnDemand => write!(f, "fetch-on-demand"),
            FetchPolicy::PrefetchFirstPair => write!(f, "prefetch-first-pair"),
        }
    }
}

/// Replacement policy of the upper bank (the paper uses pseudo-LRU; the
/// alternatives support the ablation study in the benchmark suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Tree pseudo-LRU (the paper's choice).
    #[default]
    PseudoLru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (xorshift over the slot index).
    Random,
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Replacement::PseudoLru => write!(f, "pseudo-LRU"),
            Replacement::Fifo => write!(f, "FIFO"),
            Replacement::Random => write!(f, "random"),
        }
    }
}

/// Per-cycle port limits; `None` models the paper's "unlimited bandwidth"
/// experiments (Figures 5–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortLimits {
    /// Read ports usable per cycle.
    pub read: Option<u32>,
    /// Write ports usable per cycle.
    pub write: Option<u32>,
}

impl PortLimits {
    /// Unlimited read and write bandwidth.
    pub const UNLIMITED: PortLimits = PortLimits { read: None, write: None };

    /// Limited to `read`/`write` ports per cycle.
    pub fn limited(read: u32, write: u32) -> Self {
        PortLimits { read: Some(read), write: Some(write) }
    }
}

/// Configuration of a conventional single-banked register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SingleBankConfig {
    /// Register read latency in cycles (issue → execute distance).
    pub latency: u64,
    /// Bypass network extent.
    pub bypass: BypassNetwork,
    /// Port limits.
    pub ports: PortLimits,
}

impl SingleBankConfig {
    /// The paper's baseline: 1-cycle access, one bypass level, unlimited
    /// ports. (With a 1-cycle file a single bypass level *is* full bypass.)
    pub fn one_cycle() -> Self {
        SingleBankConfig {
            latency: 1,
            bypass: BypassNetwork::SingleLevel,
            ports: PortLimits::UNLIMITED,
        }
    }

    /// Two-cycle file with only the last bypass level.
    pub fn two_cycle_single_bypass() -> Self {
        SingleBankConfig {
            latency: 2,
            bypass: BypassNetwork::SingleLevel,
            ports: PortLimits::UNLIMITED,
        }
    }

    /// Two-cycle file with a full (two-level) bypass network.
    pub fn two_cycle_full_bypass() -> Self {
        SingleBankConfig { latency: 2, bypass: BypassNetwork::Full, ports: PortLimits::UNLIMITED }
    }

    /// Replaces the port limits (builder-style).
    #[must_use]
    pub fn with_ports(mut self, ports: PortLimits) -> Self {
        self.ports = ports;
        self
    }
}

/// Configuration of the register file cache (two-level organization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegFileCacheConfig {
    /// Upper-bank entries (16 in the paper).
    pub upper_entries: usize,
    /// Lower-bank access latency in cycles (2 for every Table 2 config).
    pub lower_latency: u64,
    /// Caching policy for produced results.
    pub caching: CachingPolicy,
    /// Transfer policy for upper-bank misses.
    pub fetch: FetchPolicy,
    /// Upper-bank replacement policy.
    pub replacement: Replacement,
    /// Upper-bank read ports per cycle (`None` = unlimited).
    pub upper_read_ports: Option<u32>,
    /// Upper-bank result-write ports per cycle (`None` = unlimited). Bus
    /// arrivals use dedicated ports and are not counted here.
    pub upper_write_ports: Option<u32>,
    /// Lower-bank write ports per cycle (`None` = unlimited).
    pub lower_write_ports: Option<u32>,
    /// Inter-level transfer buses (`None` = unlimited).
    pub buses: Option<u32>,
}

impl RegFileCacheConfig {
    /// The paper's best configuration at unlimited bandwidth: 16-entry
    /// upper bank, 2-cycle lower bank, non-bypass caching with
    /// prefetch-first-pair, pseudo-LRU replacement.
    pub fn paper_default() -> Self {
        RegFileCacheConfig {
            upper_entries: 16,
            lower_latency: 2,
            caching: CachingPolicy::NonBypass,
            fetch: FetchPolicy::PrefetchFirstPair,
            replacement: Replacement::PseudoLru,
            upper_read_ports: None,
            upper_write_ports: None,
            lower_write_ports: None,
            buses: None,
        }
    }

    /// Variant with different policies (builder-style).
    #[must_use]
    pub fn with_policies(mut self, caching: CachingPolicy, fetch: FetchPolicy) -> Self {
        self.caching = caching;
        self.fetch = fetch;
        self
    }

    /// Variant with Table 2-style port limits (builder-style).
    #[must_use]
    pub fn with_ports(
        mut self,
        upper_read: u32,
        upper_write: u32,
        lower_write: u32,
        buses: u32,
    ) -> Self {
        self.upper_read_ports = Some(upper_read);
        self.upper_write_ports = Some(upper_write);
        self.lower_write_ports = Some(lower_write);
        self.buses = Some(buses);
        self
    }
}

/// Configuration of a one-level replicated-bank organization (Alpha 21264
/// style, §5 of the paper): every result is written to all banks, with a
/// one-cycle delay to remote banks; each functional-unit cluster reads its
/// local bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicatedConfig {
    /// Number of replicated banks (2 in the 21264 integer unit).
    pub banks: u32,
    /// Per-bank read-port limit (`None` = unlimited).
    pub read_ports_per_bank: Option<u32>,
    /// Extra cycles before a result becomes readable in remote banks.
    pub remote_write_delay: u64,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        ReplicatedConfig { banks: 2, read_ports_per_bank: None, remote_write_delay: 1 }
    }
}

/// Any register file architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegFileConfig {
    /// Conventional single-banked file.
    Single(SingleBankConfig),
    /// The two-level register file cache.
    Cache(RegFileCacheConfig),
    /// One-level replicated banks.
    Replicated(ReplicatedConfig),
    /// One-level banked organization without replication.
    OneLevel(crate::OneLevelBankedConfig),
}

impl RegFileConfig {
    /// Instantiates the timing model for a file of `phys_regs` registers.
    pub fn build(&self, phys_regs: usize) -> Box<dyn crate::RegFileModel> {
        match *self {
            RegFileConfig::Single(c) => Box::new(crate::SingleBankModel::new(c, phys_regs)),
            RegFileConfig::Cache(c) => Box::new(crate::RegFileCacheModel::new(c, phys_regs)),
            RegFileConfig::Replicated(c) => Box::new(crate::ReplicatedBankModel::new(c, phys_regs)),
            RegFileConfig::OneLevel(c) => Box::new(crate::OneLevelBankedModel::new(c, phys_regs)),
        }
    }

    /// Register read latency (issue → execute distance) of the
    /// architecture.
    pub fn read_latency(&self) -> u64 {
        match self {
            RegFileConfig::Single(c) => c.latency,
            RegFileConfig::Cache(_) | RegFileConfig::Replicated(_) | RegFileConfig::OneLevel(_) => {
                1
            }
        }
    }
}

impl fmt::Display for RegFileConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegFileConfig::Single(c) => {
                write!(f, "{}-cycle single-banked, {}", c.latency, c.bypass)
            }
            RegFileConfig::Cache(c) => {
                write!(f, "register file cache ({} + {})", c.caching, c.fetch)
            }
            RegFileConfig::Replicated(c) => write!(f, "{}-bank replicated", c.banks),
            RegFileConfig::OneLevel(c) => write!(f, "{}-bank one-level", c.banks),
        }
    }
}

pub use self::ReplicatedConfig as ReplicatedBankConfig;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_latencies() {
        assert_eq!(SingleBankConfig::one_cycle().latency, 1);
        assert_eq!(SingleBankConfig::two_cycle_single_bypass().latency, 2);
        assert_eq!(SingleBankConfig::two_cycle_full_bypass().bypass, BypassNetwork::Full);
        assert_eq!(RegFileCacheConfig::paper_default().upper_entries, 16);
    }

    #[test]
    fn read_latency_per_architecture() {
        assert_eq!(
            RegFileConfig::Single(SingleBankConfig::two_cycle_full_bypass()).read_latency(),
            2
        );
        assert_eq!(RegFileConfig::Cache(RegFileCacheConfig::paper_default()).read_latency(), 1);
        assert_eq!(RegFileConfig::Replicated(ReplicatedConfig::default()).read_latency(), 1);
    }

    #[test]
    fn builders_compose() {
        let c = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand)
            .with_ports(4, 3, 2, 3);
        assert_eq!(c.caching, CachingPolicy::Ready);
        assert_eq!(c.buses, Some(3));
        let s = SingleBankConfig::one_cycle().with_ports(PortLimits::limited(3, 2));
        assert_eq!(s.ports.read, Some(3));
    }

    #[test]
    fn display_strings_match_paper_vocabulary() {
        let rfc = RegFileConfig::Cache(RegFileCacheConfig::paper_default());
        let s = rfc.to_string();
        assert!(s.contains("non-bypass caching"), "{s}");
        assert!(s.contains("prefetch-first-pair"), "{s}");
    }
}
