//! Static dispatch over the concrete register file models.
//!
//! The core calls into its register file model several times per
//! simulated instruction; through `Box<dyn RegFileModel>` every one of
//! those calls is an indirect branch the optimizer cannot see through.
//! [`RegFile`] is a plain enum over the concrete models: one predictable
//! match per call, and the model bodies inline into the cycle loop.
//! The trait (and its `Box<dyn RegFileModel>` forwarding impl) remains
//! the seam for tests and external models.

use crate::config::{CachingPolicy, FetchPolicy, RegFileConfig};
use crate::model::{PlanError, ReadPlan, RegFileModel, RegFileStats, SourceRead, WindowQuery};
use crate::onelevel::OneLevelBankedModel;
use crate::replicated::ReplicatedBankModel;
use crate::rfc::RegFileCacheModel;
use crate::single::SingleBankModel;
use rfcache_isa::{Cycle, PhysReg};

/// Any concrete register file model, statically dispatched.
///
/// Built by [`RegFileConfig::build_model`]; implements [`RegFileModel`]
/// by delegating to the variant, so it drops in anywhere the trait is
/// accepted — in particular as the default model type of the CPU.
// The size skew is deliberate: the CPU stores two of these by value
// precisely so the active model's state is inline, not behind a Box.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum RegFile {
    /// [`SingleBankModel`].
    Single(SingleBankModel),
    /// [`RegFileCacheModel`].
    Cache(RegFileCacheModel),
    /// [`ReplicatedBankModel`].
    Replicated(ReplicatedBankModel),
    /// [`OneLevelBankedModel`].
    OneLevel(OneLevelBankedModel),
}

/// Expands one delegating method body.
macro_rules! delegate {
    ($self:ident, $m:ident ( $($arg:expr),* )) => {
        match $self {
            RegFile::Single(m) => m.$m($($arg),*),
            RegFile::Cache(m) => m.$m($($arg),*),
            RegFile::Replicated(m) => m.$m($($arg),*),
            RegFile::OneLevel(m) => m.$m($($arg),*),
        }
    };
}

impl RegFileModel for RegFile {
    #[inline]
    fn read_latency(&self) -> u64 {
        delegate!(self, read_latency())
    }
    #[inline]
    fn begin_cycle(&mut self, now: Cycle) {
        delegate!(self, begin_cycle(now))
    }
    #[inline]
    fn on_alloc(&mut self, preg: PhysReg) {
        delegate!(self, on_alloc(preg))
    }
    #[inline]
    fn seed_initial(&mut self, preg: PhysReg) {
        delegate!(self, seed_initial(preg))
    }
    #[inline]
    fn schedule_result(&mut self, preg: PhysReg, produced_at: Cycle) {
        delegate!(self, schedule_result(preg, produced_at))
    }
    #[inline]
    fn try_writeback(&mut self, preg: PhysReg, now: Cycle, window: &dyn WindowQuery) -> bool {
        delegate!(self, try_writeback(preg, now, window))
    }
    #[inline]
    fn is_written(&self, preg: PhysReg) -> bool {
        delegate!(self, is_written(preg))
    }
    #[inline]
    fn is_produced(&self, preg: PhysReg, now: Cycle) -> bool {
        delegate!(self, is_produced(preg, now))
    }
    #[inline]
    fn operand_obtainable(&self, preg: PhysReg, now: Cycle) -> bool {
        delegate!(self, operand_obtainable(preg, now))
    }
    #[inline]
    fn plan_read(&mut self, srcs: &[PhysReg], now: Cycle) -> Result<ReadPlan, PlanError> {
        delegate!(self, plan_read(srcs, now))
    }
    #[inline]
    fn commit_read(&mut self, plan: &[SourceRead], now: Cycle) {
        delegate!(self, commit_read(plan, now))
    }
    #[inline]
    fn request_demand(&mut self, preg: PhysReg, now: Cycle) {
        delegate!(self, request_demand(preg, now))
    }
    #[inline]
    fn request_prefetch(&mut self, preg: PhysReg, now: Cycle) {
        delegate!(self, request_prefetch(preg, now))
    }
    #[inline]
    fn on_free(&mut self, preg: PhysReg) {
        delegate!(self, on_free(preg))
    }
    #[inline]
    fn caching_policy(&self) -> Option<CachingPolicy> {
        delegate!(self, caching_policy())
    }
    #[inline]
    fn fetch_policy(&self) -> Option<FetchPolicy> {
        delegate!(self, fetch_policy())
    }
    #[inline]
    fn stats(&self) -> &RegFileStats {
        delegate!(self, stats())
    }
    fn debug_operand(&self, preg: PhysReg) -> String {
        delegate!(self, debug_operand(preg))
    }
}

impl RegFileConfig {
    /// Builds the configured model as a statically dispatched [`RegFile`]
    /// with `phys_regs` physical registers per class. The boxed
    /// [`build`](RegFileConfig::build) remains for callers that want a
    /// trait object.
    pub fn build_model(&self, phys_regs: usize) -> RegFile {
        match *self {
            RegFileConfig::Single(c) => RegFile::Single(SingleBankModel::new(c, phys_regs)),
            RegFileConfig::Cache(c) => RegFile::Cache(RegFileCacheModel::new(c, phys_regs)),
            RegFileConfig::Replicated(c) => {
                RegFile::Replicated(ReplicatedBankModel::new(c, phys_regs))
            }
            RegFileConfig::OneLevel(c) => RegFile::OneLevel(OneLevelBankedModel::new(c, phys_regs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RegFileCacheConfig, SingleBankConfig};
    use crate::OneLevelBankedConfig;

    #[test]
    fn build_model_picks_the_configured_variant() {
        let single = RegFileConfig::Single(SingleBankConfig::one_cycle()).build_model(8);
        assert!(matches!(single, RegFile::Single(_)));
        let cache = RegFileConfig::Cache(RegFileCacheConfig::paper_default()).build_model(64);
        assert!(matches!(cache, RegFile::Cache(_)));
        let repl = RegFileConfig::Replicated(crate::config::ReplicatedBankConfig::default())
            .build_model(8);
        assert!(matches!(repl, RegFile::Replicated(_)));
        let one = RegFileConfig::OneLevel(OneLevelBankedConfig::default()).build_model(8);
        assert!(matches!(one, RegFile::OneLevel(_)));
    }

    #[test]
    fn enum_delegates_to_the_inner_model() {
        use crate::model::NullWindow;
        let mut rf = RegFileConfig::Single(SingleBankConfig::one_cycle()).build_model(8);
        assert_eq!(rf.read_latency(), 1);
        rf.begin_cycle(0);
        let p = PhysReg::new(3);
        rf.on_alloc(p);
        rf.schedule_result(p, 0);
        assert!(rf.try_writeback(p, 0, &NullWindow));
        assert!(rf.is_written(p));
        rf.begin_cycle(5);
        let plan = rf.plan_read(&[p], 5).unwrap();
        rf.commit_read(&plan, 5);
        assert_eq!(rf.stats().regfile_reads, 1);
    }
}
