//! Register file architectures — the paper's core contribution.
//!
//! This crate implements the timing behaviour of the register file
//! organizations compared in Cruz et al., ISCA 2000:
//!
//! * [`SingleBankModel`] — a conventional single-banked register file with
//!   a 1- or 2-cycle access and either a full bypass network or a single
//!   (last) level of bypass.
//! * [`RegFileCacheModel`] — the proposed two-level *register file cache*:
//!   a small fully-associative upper bank read by the functional units in
//!   one cycle, backed by the full physical register file in the lower
//!   bank, connected by a limited number of transfer buses. Results are
//!   selectively written into the upper bank (*non-bypass* or *ready*
//!   caching); values missing from the upper bank are transferred on
//!   demand or prefetched (*prefetch-first-pair*).
//! * [`ReplicatedBankModel`] — a one-level organization with fully
//!   replicated banks (Alpha 21264 style), included as the related-work
//!   baseline of §5.
//! * [`OneLevelBankedModel`] — the non-replicated one-level multi-banked
//!   organization (Wallace & Bagherzadeh style), the extension the paper
//!   lists as future work in §6.
//!
//! All models speak the same cycle-accurate protocol, [`RegFileModel`],
//! which the out-of-order core (`rfcache-pipeline`) drives once per cycle:
//! `begin_cycle` → write-backs (`try_writeback`) → issue (`plan_read` /
//! `commit_read`) plus transfer requests. The protocol's timing contract is
//! documented on the trait.
//!
//! # Examples
//!
//! ```
//! use rfcache_core::{RegFileConfig, RegFileModel, SingleBankConfig};
//!
//! // A one-cycle, single-banked file with unlimited ports.
//! let config = RegFileConfig::Single(SingleBankConfig::one_cycle());
//! let model = config.build(128);
//! assert_eq!(model.read_latency(), 1);
//! ```

#![warn(missing_docs)]

mod bitset;
mod config;
mod dispatch;
mod model;
mod onelevel;
mod plru;
mod replicated;
mod rfc;
mod single;

pub use bitset::RegBitSet;
pub use config::{
    BypassNetwork, CachingPolicy, FetchPolicy, PortLimits, RegFileCacheConfig, RegFileConfig,
    Replacement, ReplicatedBankConfig, SingleBankConfig,
};
pub use dispatch::RegFile;
pub use model::{
    MissList, NullWindow, PlanError, ReadPath, ReadPlan, RegFileModel, RegFileStats, SmallList,
    SourceRead, WindowQuery,
};
pub use onelevel::{OneLevelBankedConfig, OneLevelBankedModel};
pub use plru::{PlruTree, ReplacementState};
pub use replicated::ReplicatedBankModel;
pub use rfc::RegFileCacheModel;
pub use single::SingleBankModel;
