//! The cycle-accurate protocol between the out-of-order core and a
//! register file model, plus state shared by all implementations.
//!
//! # Timing contract
//!
//! * An instruction **issues** at cycle `c` and starts executing at
//!   `c + read_latency()`; its result is **produced** at the end of its
//!   execute stage (cycle `p`), which the core announces via
//!   [`RegFileModel::schedule_result`] as soon as `p` is known.
//! * The core retires produced results through a write-back queue: each
//!   cycle it offers them oldest-first via [`RegFileModel::try_writeback`];
//!   the model accepts as many as it has write ports, records the value as
//!   *written* (readable by reads starting that same cycle — write-before-
//!   read), and applies its caching policy.
//! * To issue an instruction the core calls [`RegFileModel::plan_read`]
//!   with the source registers; the model answers how each operand would be
//!   obtained at this cycle (bypass network or register file read) or that
//!   the instruction cannot issue yet (operand unavailable or read ports
//!   exhausted). If the core goes ahead it calls
//!   [`RegFileModel::commit_read`], which consumes ports and marks
//!   bypass-consumed values.
//! * The core must call [`RegFileModel::begin_cycle`] exactly once per
//!   cycle, before any other call of that cycle, with a strictly
//!   increasing cycle number.

use crate::config::{CachingPolicy, FetchPolicy};
use rfcache_isa::{Cycle, PhysReg};
use std::fmt;

/// How one source operand will be obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Caught from the bypass network (consumes no read port).
    #[default]
    Bypass,
    /// Read from the register file (upper bank for the register file
    /// cache); consumes one read port.
    RegFile,
}

/// One planned operand read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceRead {
    /// The physical register read.
    pub preg: PhysReg,
    /// The path the value takes.
    pub path: ReadPath,
}

/// A fixed-capacity inline list: the allocation-free carrier for read
/// plans and miss lists on the per-instruction issue path. Instructions
/// have at most two sources, so the capacity is never a constraint; it
/// dereferences to a slice, so call sites index and iterate as before.
///
/// # Panics
///
/// [`push`](SmallList::push) panics when the list is full — plans are
/// bounded by the ISA's source count, so overflow is a logic error.
#[derive(Clone, Copy)]
pub struct SmallList<T: Copy + Default, const N: usize> {
    len: u8,
    items: [T; N],
}

impl<T: Copy + Default, const N: usize> SmallList<T, N> {
    /// An empty list.
    #[inline]
    pub fn new() -> Self {
        SmallList { len: 0, items: [T::default(); N] }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, item: T) {
        self.items[self.len as usize] = item;
        self.len += 1;
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallList<T, N> {
    fn default() -> Self {
        SmallList::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SmallList<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallList<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallList<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallList<T, N> {}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallList<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut list = SmallList::new();
        for item in iter {
            list.push(item);
        }
        list
    }
}

/// The planned operand reads of one instruction (at most two sources).
pub type ReadPlan = SmallList<SourceRead, 4>;

/// The operands an [`PlanError::UpperMiss`] wants transferred.
pub type MissList = SmallList<PhysReg, 4>;

/// Why an instruction cannot issue this cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Some operand's value cannot be obtained this cycle on any path
    /// (not yet produced, or in an availability hole awaiting write-back).
    NotReady,
    /// All operand values exist, but the listed ones are absent from the
    /// upper bank (register file cache only). The core should file demand
    /// transfer requests for them.
    UpperMiss(MissList),
    /// Operands are readable but the cycle's read ports are exhausted.
    NoReadPort,
}

/// Window information the caching policies need at write-back time. The
/// out-of-order core implements this over its issue queue.
pub trait WindowQuery {
    /// Whether some not-yet-issued instruction in the window uses `preg`
    /// as a source and has **all** of its source values produced.
    fn has_ready_unissued_consumer(&self, preg: PhysReg) -> bool;
}

/// A [`WindowQuery`] that reports no consumers; useful in unit tests and
/// for policies that do not need window information.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullWindow;

impl WindowQuery for NullWindow {
    fn has_ready_unissued_consumer(&self, _preg: PhysReg) -> bool {
        false
    }
}

/// Statistics accumulated by a register file model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegFileStats {
    /// Operands delivered by the bypass network.
    pub bypass_reads: u64,
    /// Operands delivered by register file (upper bank) reads.
    pub regfile_reads: u64,
    /// Results written back (to the lower/main bank).
    pub writebacks: u64,
    /// Results additionally written to the upper bank (cached).
    pub cached_results: u64,
    /// Results not cached because the caching policy declined.
    pub policy_skipped: u64,
    /// Results not cached because no upper write port was free.
    pub port_skipped: u64,
    /// Upper-bank evictions.
    pub evictions: u64,
    /// Demand transfers started.
    pub demand_transfers: u64,
    /// Prefetch transfers started.
    pub prefetch_transfers: u64,
    /// Prefetch requests dropped (value already cached, in flight, or not
    /// yet written to the lower bank).
    pub prefetch_dropped: u64,
    /// Issue attempts rejected for want of a read port.
    pub read_port_stalls: u64,
    /// Issue attempts rejected because an operand was absent from the
    /// upper bank (register file cache only).
    pub upper_miss_stalls: u64,
    /// Write-backs deferred for want of a write port.
    pub write_port_stalls: u64,
    /// Values freed having been read exactly zero times.
    pub values_never_read: u64,
    /// Values freed having been read exactly once.
    pub values_read_once: u64,
    /// Values freed having been read more than once.
    pub values_read_many: u64,
}

impl RegFileStats {
    /// Fraction of freed values read at most once (the §3 statistic: 88%
    /// for SpecInt95, 85% for SpecFP95).
    pub fn read_at_most_once_fraction(&self) -> Option<f64> {
        let total = self.values_never_read + self.values_read_once + self.values_read_many;
        (total > 0).then(|| (self.values_never_read + self.values_read_once) as f64 / total as f64)
    }

    /// Fraction of operands obtained from the bypass network.
    pub fn bypass_fraction(&self) -> Option<f64> {
        let total = self.bypass_reads + self.regfile_reads;
        (total > 0).then(|| self.bypass_reads as f64 / total as f64)
    }
}

impl fmt::Display for RegFileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} bypass / {} regfile; {} writebacks ({} cached); {} demand + {} prefetch transfers",
            self.bypass_reads,
            self.regfile_reads,
            self.writebacks,
            self.cached_results,
            self.demand_transfers,
            self.prefetch_transfers
        )
    }
}

/// The cycle-accurate register file protocol. See the module documentation
/// for the timing contract.
/// `Send` is a supertrait so whole CPUs (which box models as
/// `dyn RegFileModel`) can move across threads — the scenario engine runs
/// independent simulations on a worker pool.
pub trait RegFileModel: Send {
    /// Issue → execute distance in cycles.
    fn read_latency(&self) -> u64;

    /// Starts cycle `now`: resets per-cycle port budgets and advances
    /// internal machinery (e.g. bus transfers).
    fn begin_cycle(&mut self, now: Cycle);

    /// A physical register was allocated at rename; its previous life (if
    /// any) is over.
    fn on_alloc(&mut self, preg: PhysReg);

    /// Seeds `preg` with an architectural value that exists before the
    /// simulation starts (the initial mapping of the logical registers):
    /// live, produced and written at cycle 0, resident only in the main
    /// (lower) bank.
    fn seed_initial(&mut self, preg: PhysReg);

    /// The producer of `preg` will finish executing at the end of cycle
    /// `produced_at`.
    fn schedule_result(&mut self, preg: PhysReg, produced_at: Cycle);

    /// Offers the produced value of `preg` for write-back at cycle `now`.
    /// Returns `false` when no write port is free this cycle (the core
    /// retries next cycle). On success the model applies its caching
    /// policy using `window`.
    fn try_writeback(&mut self, preg: PhysReg, now: Cycle, window: &dyn WindowQuery) -> bool;

    /// Whether the value of `preg` has been written to the main (lower)
    /// bank — the condition for the producing instruction to commit.
    fn is_written(&self, preg: PhysReg) -> bool;

    /// Whether the value of `preg` has been produced (is architecturally
    /// available somewhere, not necessarily readable this cycle).
    fn is_produced(&self, preg: PhysReg, now: Cycle) -> bool;

    /// Cheap allocation-free pre-check: could [`plan_read`](Self::plan_read)
    /// make progress for `preg` at cycle `now` — either deliver the value
    /// on some path (ignoring port limits) or report it for a demand
    /// transfer? Used by the issue stage to skip full planning for
    /// operands that would only yield [`PlanError::NotReady`].
    fn operand_obtainable(&self, preg: PhysReg, now: Cycle) -> bool;

    /// Plans the operand reads of an instruction issuing at cycle `now`
    /// with the given source registers. On failure the error says why the
    /// instruction cannot issue this cycle.
    ///
    /// # Errors
    ///
    /// [`PlanError::NotReady`] when an operand is unobtainable this cycle,
    /// [`PlanError::UpperMiss`] when operands must first be transferred to
    /// the upper bank, [`PlanError::NoReadPort`] on port exhaustion.
    fn plan_read(&mut self, srcs: &[PhysReg], now: Cycle) -> Result<ReadPlan, PlanError>;

    /// Commits a plan returned by [`plan_read`](Self::plan_read) this same
    /// cycle: consumes ports, updates recency, marks bypassed values.
    fn commit_read(&mut self, plan: &[SourceRead], now: Cycle);

    /// Requests a demand transfer of `preg` into the upper bank (no-op for
    /// single-banked files).
    fn request_demand(&mut self, preg: PhysReg, now: Cycle);

    /// Requests a prefetch of `preg` into the upper bank (no-op unless the
    /// fetch policy is prefetch-first-pair).
    fn request_prefetch(&mut self, preg: PhysReg, now: Cycle);

    /// The physical register was freed (its instruction squashed or its
    /// renaming superseded at commit); the model clears all state for it.
    fn on_free(&mut self, preg: PhysReg);

    /// The caching policy (for reporting).
    fn caching_policy(&self) -> Option<CachingPolicy> {
        None
    }

    /// The fetch policy (for reporting).
    fn fetch_policy(&self) -> Option<FetchPolicy> {
        None
    }

    /// Accumulated statistics.
    fn stats(&self) -> &RegFileStats;

    /// Human-readable internal state of one operand (for deadlock
    /// diagnostics). The default implementation returns an empty string.
    fn debug_operand(&self, preg: PhysReg) -> String {
        let _ = preg;
        String::new()
    }
}

/// Forwarding impl so a boxed model is itself a model: keeps trait-object
/// CPUs (`Cpu<I, Box<dyn RegFileModel>>`) expressible now that the core
/// is generic over the model type, e.g. to test enum dispatch against
/// virtual dispatch.
impl RegFileModel for Box<dyn RegFileModel> {
    fn read_latency(&self) -> u64 {
        (**self).read_latency()
    }
    fn begin_cycle(&mut self, now: Cycle) {
        (**self).begin_cycle(now)
    }
    fn on_alloc(&mut self, preg: PhysReg) {
        (**self).on_alloc(preg)
    }
    fn seed_initial(&mut self, preg: PhysReg) {
        (**self).seed_initial(preg)
    }
    fn schedule_result(&mut self, preg: PhysReg, produced_at: Cycle) {
        (**self).schedule_result(preg, produced_at)
    }
    fn try_writeback(&mut self, preg: PhysReg, now: Cycle, window: &dyn WindowQuery) -> bool {
        (**self).try_writeback(preg, now, window)
    }
    fn is_written(&self, preg: PhysReg) -> bool {
        (**self).is_written(preg)
    }
    fn is_produced(&self, preg: PhysReg, now: Cycle) -> bool {
        (**self).is_produced(preg, now)
    }
    fn operand_obtainable(&self, preg: PhysReg, now: Cycle) -> bool {
        (**self).operand_obtainable(preg, now)
    }
    fn plan_read(&mut self, srcs: &[PhysReg], now: Cycle) -> Result<ReadPlan, PlanError> {
        (**self).plan_read(srcs, now)
    }
    fn commit_read(&mut self, plan: &[SourceRead], now: Cycle) {
        (**self).commit_read(plan, now)
    }
    fn request_demand(&mut self, preg: PhysReg, now: Cycle) {
        (**self).request_demand(preg, now)
    }
    fn request_prefetch(&mut self, preg: PhysReg, now: Cycle) {
        (**self).request_prefetch(preg, now)
    }
    fn on_free(&mut self, preg: PhysReg) {
        (**self).on_free(preg)
    }
    fn caching_policy(&self) -> Option<CachingPolicy> {
        (**self).caching_policy()
    }
    fn fetch_policy(&self) -> Option<FetchPolicy> {
        (**self).fetch_policy()
    }
    fn stats(&self) -> &RegFileStats {
        (**self).stats()
    }
    fn debug_operand(&self, preg: PhysReg) -> String {
        (**self).debug_operand(preg)
    }
}

/// Lifetime state of one physical register, shared by all models.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PregState {
    /// Cycle at the end of which the value is produced.
    pub produced_at: Option<Cycle>,
    /// Cycle from which the value is readable in the main/lower bank.
    pub written_at: Option<Cycle>,
    /// Whether any consumer obtained the value from the bypass network.
    pub bypass_consumed: bool,
    /// Lifetime read count.
    pub reads: u32,
    /// Whether the register currently holds a live allocation.
    pub live: bool,
}

impl PregState {
    /// Resets the state for a fresh allocation.
    pub fn reset_for_alloc(&mut self) {
        *self = PregState { live: true, ..PregState::default() };
    }

    /// Folds the finished lifetime into the read-count statistics.
    pub fn account_reads(&self, stats: &mut RegFileStats) {
        // Only count lifetimes that actually produced a value; squashed
        // allocations never had a readable value.
        if self.produced_at.is_some() {
            match self.reads {
                0 => stats.values_never_read += 1,
                1 => stats.values_read_once += 1,
                _ => stats.values_read_many += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_once_fraction() {
        let stats = RegFileStats {
            values_never_read: 10,
            values_read_once: 78,
            values_read_many: 12,
            ..RegFileStats::default()
        };
        assert!((stats.read_at_most_once_fraction().unwrap() - 0.88).abs() < 1e-9);
    }

    #[test]
    fn fractions_none_when_empty() {
        let stats = RegFileStats::default();
        assert_eq!(stats.read_at_most_once_fraction(), None);
        assert_eq!(stats.bypass_fraction(), None);
    }

    #[test]
    fn preg_state_alloc_reset() {
        let mut s = PregState {
            produced_at: Some(5),
            written_at: Some(6),
            bypass_consumed: true,
            reads: 3,
            live: true,
        };
        s.reset_for_alloc();
        assert!(s.live);
        assert_eq!(s.produced_at, None);
        assert_eq!(s.reads, 0);
        assert!(!s.bypass_consumed);
    }

    #[test]
    fn squashed_lifetimes_not_counted() {
        let mut stats = RegFileStats::default();
        let s = PregState { live: true, ..PregState::default() };
        s.account_reads(&mut stats);
        assert_eq!(stats.values_never_read, 0);
    }

    #[test]
    fn null_window_reports_nothing() {
        assert!(!NullWindow.has_ready_unissued_consumer(PhysReg::new(3)));
    }
}
