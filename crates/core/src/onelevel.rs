//! One-level multiple-banked register file (the paper's §3 "single-level
//! organization", evaluated as future work in §6 and related to Wallace &
//! Bagherzadeh's scalable register file).
//!
//! Physical registers are distributed across `banks` equal banks
//! (`bank = preg mod banks`); every bank feeds the functional units
//! directly in one cycle, but each has only a few read and write ports.
//! There is no replication and no inter-bank transfer: a result is written
//! to the one bank that holds its register, and reads contend for that
//! bank's ports. Port conflicts are the price of the cheaper banks; the
//! bypass network stays single-level like the register file cache's.

use crate::model::{
    PlanError, PregState, ReadPath, ReadPlan, RegFileModel, RegFileStats, SourceRead, WindowQuery,
};
use rfcache_isa::{Cycle, PhysReg};

/// Configuration of the one-level banked organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OneLevelBankedConfig {
    /// Number of banks the physical registers are distributed over.
    pub banks: u32,
    /// Read ports per bank per cycle (`None` = unlimited).
    pub read_ports_per_bank: Option<u32>,
    /// Write ports per bank per cycle (`None` = unlimited).
    pub write_ports_per_bank: Option<u32>,
}

impl OneLevelBankedConfig {
    /// The configuration studied by Wallace & Bagherzadeh (§5 of the
    /// paper): banks with two read ports and one write port.
    pub fn wallace(banks: u32) -> Self {
        OneLevelBankedConfig { banks, read_ports_per_bank: Some(2), write_ports_per_bank: Some(1) }
    }
}

impl Default for OneLevelBankedConfig {
    fn default() -> Self {
        OneLevelBankedConfig::wallace(8)
    }
}

/// Timing model of the one-level multiple-banked register file.
///
/// # Examples
///
/// ```
/// use rfcache_core::{OneLevelBankedConfig, OneLevelBankedModel, RegFileModel};
///
/// let rf = OneLevelBankedModel::new(OneLevelBankedConfig::wallace(8), 128);
/// assert_eq!(rf.read_latency(), 1);
/// assert_eq!(rf.bank_of(rfcache_isa::PhysReg::new(9)), 1);
/// ```
#[derive(Debug)]
pub struct OneLevelBankedModel {
    config: OneLevelBankedConfig,
    states: Vec<PregState>,
    reads_used: Vec<u32>,
    writes_used: Vec<u32>,
    stats: RegFileStats,
}

impl OneLevelBankedModel {
    /// Creates a model for `phys_regs` registers.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs == 0` or `config.banks == 0`.
    pub fn new(config: OneLevelBankedConfig, phys_regs: usize) -> Self {
        assert!(phys_regs > 0, "need at least one physical register");
        assert!(config.banks >= 1, "need at least one bank");
        OneLevelBankedModel {
            states: vec![PregState::default(); phys_regs],
            reads_used: vec![0; config.banks as usize],
            writes_used: vec![0; config.banks as usize],
            stats: RegFileStats::default(),
            config,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &OneLevelBankedConfig {
        &self.config
    }

    /// Bank holding `preg`.
    pub fn bank_of(&self, preg: PhysReg) -> usize {
        preg.index() % self.config.banks as usize
    }
}

impl RegFileModel for OneLevelBankedModel {
    fn read_latency(&self) -> u64 {
        1
    }

    fn begin_cycle(&mut self, _now: Cycle) {
        self.reads_used.fill(0);
        self.writes_used.fill(0);
    }

    fn on_alloc(&mut self, preg: PhysReg) {
        self.states[preg.index()].reset_for_alloc();
    }

    fn seed_initial(&mut self, preg: PhysReg) {
        let st = &mut self.states[preg.index()];
        st.reset_for_alloc();
        st.produced_at = Some(0);
        st.written_at = Some(0);
    }

    fn schedule_result(&mut self, preg: PhysReg, produced_at: Cycle) {
        self.states[preg.index()].produced_at = Some(produced_at);
    }

    fn try_writeback(&mut self, preg: PhysReg, now: Cycle, _window: &dyn WindowQuery) -> bool {
        let bank = self.bank_of(preg);
        if let Some(limit) = self.config.write_ports_per_bank {
            if self.writes_used[bank] >= limit {
                self.stats.write_port_stalls += 1;
                return false;
            }
        }
        self.writes_used[bank] += 1;
        self.states[preg.index()].written_at = Some(now);
        self.stats.writebacks += 1;
        true
    }

    fn is_written(&self, preg: PhysReg) -> bool {
        self.states[preg.index()].written_at.is_some()
    }

    fn is_produced(&self, preg: PhysReg, now: Cycle) -> bool {
        matches!(self.states[preg.index()].produced_at, Some(p) if p <= now)
    }

    fn operand_obtainable(&self, preg: PhysReg, now: Cycle) -> bool {
        match self.states[preg.index()].produced_at {
            Some(p) if now == p => true,
            Some(p) if now > p => self.states[preg.index()].written_at.is_some(),
            _ => false,
        }
    }

    fn plan_read(&mut self, srcs: &[PhysReg], now: Cycle) -> Result<ReadPlan, PlanError> {
        let mut plan = ReadPlan::new();
        for &preg in srcs {
            let st = &self.states[preg.index()];
            let Some(produced) = st.produced_at else { return Err(PlanError::NotReady) };
            if now == produced {
                plan.push(SourceRead { preg, path: ReadPath::Bypass });
            } else if matches!(st.written_at, Some(w) if now >= w) {
                plan.push(SourceRead { preg, path: ReadPath::RegFile });
            } else {
                return Err(PlanError::NotReady);
            }
        }
        if let Some(limit) = self.config.read_ports_per_bank {
            // Per-bank demand of this instruction alone, computed by
            // scanning the (at most two-entry) plan instead of a
            // banks-sized side table: each bank is checked once, at its
            // first register-file read.
            for (i, read) in plan.iter().enumerate() {
                if read.path != ReadPath::RegFile {
                    continue;
                }
                let bank = self.bank_of(read.preg);
                let already_counted = plan[..i]
                    .iter()
                    .any(|r| r.path == ReadPath::RegFile && self.bank_of(r.preg) == bank);
                if already_counted {
                    continue;
                }
                let demand = plan[i..]
                    .iter()
                    .filter(|r| r.path == ReadPath::RegFile && self.bank_of(r.preg) == bank)
                    .count() as u32;
                if self.reads_used[bank] + demand > limit {
                    self.stats.read_port_stalls += 1;
                    return Err(PlanError::NoReadPort);
                }
            }
        }
        Ok(plan)
    }

    fn commit_read(&mut self, plan: &[SourceRead], _now: Cycle) {
        for read in plan {
            let st = &mut self.states[read.preg.index()];
            st.reads += 1;
            match read.path {
                ReadPath::Bypass => {
                    st.bypass_consumed = true;
                    self.stats.bypass_reads += 1;
                }
                ReadPath::RegFile => {
                    let bank = self.bank_of(read.preg);
                    self.reads_used[bank] += 1;
                    self.stats.regfile_reads += 1;
                }
            }
        }
    }

    fn request_demand(&mut self, _preg: PhysReg, _now: Cycle) {}

    fn request_prefetch(&mut self, _preg: PhysReg, _now: Cycle) {}

    fn on_free(&mut self, preg: PhysReg) {
        let st = &mut self.states[preg.index()];
        if st.live {
            let snapshot = *st;
            snapshot.account_reads(&mut self.stats);
        }
        *st = PregState::default();
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NullWindow;

    fn model(banks: u32, r: u32, w: u32) -> OneLevelBankedModel {
        let config = OneLevelBankedConfig {
            banks,
            read_ports_per_bank: Some(r),
            write_ports_per_bank: Some(w),
        };
        OneLevelBankedModel::new(config, 32)
    }

    fn seed_written(rf: &mut OneLevelBankedModel, pregs: &[u16]) {
        rf.begin_cycle(0);
        for &i in pregs {
            let p = PhysReg::new(i);
            rf.on_alloc(p);
            rf.schedule_result(p, 0);
            assert!(rf.try_writeback(p, 0, &NullWindow));
        }
    }

    #[test]
    fn registers_map_round_robin_to_banks() {
        let rf = model(4, 2, 1);
        assert_eq!(rf.bank_of(PhysReg::new(0)), 0);
        assert_eq!(rf.bank_of(PhysReg::new(5)), 1);
        assert_eq!(rf.bank_of(PhysReg::new(7)), 3);
    }

    #[test]
    fn same_bank_reads_conflict_different_banks_do_not() {
        let mut rf = model(2, 1, 2);
        seed_written(&mut rf, &[0, 1, 2]);
        rf.begin_cycle(5);
        // preg0 and preg2 share bank 0: together they exceed 1 read port.
        assert_eq!(
            rf.plan_read(&[PhysReg::new(0), PhysReg::new(2)], 5),
            Err(PlanError::NoReadPort)
        );
        // preg0 (bank 0) and preg1 (bank 1) are fine.
        let plan = rf.plan_read(&[PhysReg::new(0), PhysReg::new(1)], 5).unwrap();
        rf.commit_read(&plan, 5);
        // Bank 0's single port is now used; preg2 must wait a cycle.
        assert_eq!(rf.plan_read(&[PhysReg::new(2)], 5), Err(PlanError::NoReadPort));
        rf.begin_cycle(6);
        assert!(rf.plan_read(&[PhysReg::new(2)], 6).is_ok());
    }

    #[test]
    fn write_ports_are_per_bank() {
        let mut rf = model(2, 2, 1);
        rf.begin_cycle(0);
        for i in [0u16, 2, 1] {
            let p = PhysReg::new(i);
            rf.on_alloc(p);
            rf.schedule_result(p, 0);
        }
        rf.begin_cycle(1);
        assert!(rf.try_writeback(PhysReg::new(0), 1, &NullWindow));
        // Second write to bank 0 this cycle: stalls.
        assert!(!rf.try_writeback(PhysReg::new(2), 1, &NullWindow));
        // Bank 1 is unaffected.
        assert!(rf.try_writeback(PhysReg::new(1), 1, &NullWindow));
        rf.begin_cycle(2);
        assert!(rf.try_writeback(PhysReg::new(2), 2, &NullWindow));
    }

    #[test]
    fn bypass_does_not_consume_bank_ports() {
        let mut rf = model(2, 1, 1);
        rf.begin_cycle(0);
        let p = PhysReg::new(0);
        rf.on_alloc(p);
        rf.schedule_result(p, 4);
        rf.begin_cycle(4);
        let plan = rf.plan_read(&[p], 4).unwrap();
        assert_eq!(plan[0].path, ReadPath::Bypass);
    }

    #[test]
    fn wallace_preset() {
        let c = OneLevelBankedConfig::wallace(8);
        assert_eq!(c.read_ports_per_bank, Some(2));
        assert_eq!(c.write_ports_per_bank, Some(1));
        assert_eq!(OneLevelBankedConfig::default().banks, 8);
    }
}
