//! Replacement state for the fully-associative upper bank: tree pseudo-LRU
//! (the paper's policy), FIFO, and pseudo-random alternatives for the
//! ablation study.

use crate::config::Replacement;

/// Tree pseudo-LRU over `n` slots (`n` a power of two).
///
/// A complete binary tree of `n - 1` direction bits; each access flips the
/// bits along its slot's path to point *away* from it, and the victim is
/// found by following the bits from the root.
///
/// # Examples
///
/// ```
/// use rfcache_core::PlruTree;
/// let mut plru = PlruTree::new(4);
/// plru.touch(0);
/// plru.touch(1);
/// plru.touch(2);
/// plru.touch(3);
/// assert_eq!(plru.victim(), 0); // least recently touched
/// ```
#[derive(Debug, Clone)]
pub struct PlruTree {
    /// Direction bits; `bits[i]` false = left subtree holds the victim.
    bits: Vec<bool>,
    slots: usize,
}

impl PlruTree {
    /// Creates a tree for `slots` entries.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two or is less than 2.
    pub fn new(slots: usize) -> Self {
        assert!(slots.is_power_of_two() && slots >= 2, "PLRU needs a power-of-two slot count >= 2");
        PlruTree { bits: vec![false; slots - 1], slots }
    }

    /// Number of slots tracked.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Marks `slot` as most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots()`.
    pub fn touch(&mut self, slot: usize) {
        assert!(slot < self.slots, "slot {slot} out of range");
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.slots;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if slot < mid {
                // Slot is in the left half: point the bit right (away).
                self.bits[node] = true;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.bits[node] = false;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Returns the pseudo-LRU victim slot (does not modify state).
    pub fn victim(&self) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.slots;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

/// Replacement state implementing the configured policy over `n` slots.
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// Tree pseudo-LRU.
    PseudoLru(PlruTree),
    /// FIFO pointer.
    Fifo {
        /// Next victim slot.
        next: usize,
        /// Total slots.
        slots: usize,
    },
    /// Xorshift pseudo-random victim selection.
    Random {
        /// Generator state.
        state: u64,
        /// Total slots.
        slots: usize,
    },
}

impl ReplacementState {
    /// Creates replacement state for `slots` entries under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `slots < 2`, or (for pseudo-LRU) not a power of two.
    pub fn new(policy: Replacement, slots: usize) -> Self {
        assert!(slots >= 2, "replacement needs at least two slots");
        match policy {
            Replacement::PseudoLru => ReplacementState::PseudoLru(PlruTree::new(slots)),
            Replacement::Fifo => ReplacementState::Fifo { next: 0, slots },
            Replacement::Random => ReplacementState::Random { state: 0x9e37_79b9_7f4a_7c15, slots },
        }
    }

    /// Records a use of `slot` (no-op for FIFO/random).
    pub fn touch(&mut self, slot: usize) {
        if let ReplacementState::PseudoLru(t) = self {
            t.touch(slot);
        }
    }

    /// Chooses a victim slot and advances internal state where needed.
    pub fn pick_victim(&mut self) -> usize {
        match self {
            ReplacementState::PseudoLru(t) => t.victim(),
            ReplacementState::Fifo { next, slots } => {
                let v = *next;
                *next = (*next + 1) % *slots;
                v
            }
            ReplacementState::Random { state, slots } => {
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                (*state % *slots as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plru_victim_is_untouched_slot() {
        let mut p = PlruTree::new(8);
        for s in 1..8 {
            p.touch(s);
        }
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn plru_approximates_lru_order() {
        let mut p = PlruTree::new(4);
        p.touch(2);
        p.touch(0);
        p.touch(3);
        p.touch(1);
        // True LRU victim would be 2; PLRU must at least avoid the MRU.
        let v = p.victim();
        assert_ne!(v, 1, "victim must not be the most recently used slot");
    }

    #[test]
    fn plru_touch_then_victim_differs() {
        let mut p = PlruTree::new(16);
        for round in 0..64 {
            let v = p.victim();
            p.touch(v);
            let next = p.victim();
            assert_ne!(v, next, "round {round}: immediately re-picked the touched slot");
        }
    }

    #[test]
    fn fifo_cycles_through_slots() {
        let mut r = ReplacementState::new(Replacement::Fifo, 4);
        let picks: Vec<_> = (0..8).map(|_| r.pick_victim()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn random_stays_in_range_and_varies() {
        let mut r = ReplacementState::new(Replacement::Random, 16);
        let picks: Vec<_> = (0..256).map(|_| r.pick_victim()).collect();
        assert!(picks.iter().all(|&v| v < 16));
        let distinct: std::collections::HashSet<_> = picks.iter().collect();
        assert!(distinct.len() > 8, "random picks too uniform: {distinct:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = PlruTree::new(12);
    }

    #[test]
    fn plru_16_entries_covers_all_slots_eventually() {
        // Repeatedly evicting and touching must cycle over every slot.
        let mut p = PlruTree::new(16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let v = p.victim();
            seen.insert(v);
            p.touch(v);
        }
        assert_eq!(seen.len(), 16);
    }
}
