//! One-level replicated multiple-banked organization (Alpha 21264 style),
//! included as the related-work baseline of §5: every bank holds a full
//! copy of the register file with fewer read ports; results are written to
//! every bank, reaching remote banks one cycle later; each functional-unit
//! cluster reads its local bank.

use crate::config::ReplicatedBankConfig;
use crate::model::{
    PlanError, PregState, ReadPath, ReadPlan, RegFileModel, RegFileStats, SourceRead, WindowQuery,
};
use rfcache_isa::{Cycle, PhysReg};

/// Timing model of a replicated-bank register file.
///
/// Instructions are assigned to clusters round-robin at issue. An operand
/// is readable in a cluster once the value has been written to that
/// cluster's bank: the producing cluster's bank at write-back, remote
/// banks [`ReplicatedBankConfig::remote_write_delay`] cycles later. The
/// bypass network forwards within a cluster only.
///
/// # Examples
///
/// ```
/// use rfcache_core::{RegFileModel, ReplicatedBankConfig, ReplicatedBankModel};
///
/// let rf = ReplicatedBankModel::new(ReplicatedBankConfig::default(), 128);
/// assert_eq!(rf.read_latency(), 1);
/// ```
#[derive(Debug)]
pub struct ReplicatedBankModel {
    config: ReplicatedBankConfig,
    states: Vec<PregState>,
    /// Cluster that produced each register's value.
    producer_cluster: Vec<u32>,
    /// Cluster the next issuing instruction is assigned to.
    next_cluster: u32,
    /// Read ports consumed this cycle, per cluster.
    reads_used: Vec<u32>,
    stats: RegFileStats,
}

impl ReplicatedBankModel {
    /// Creates a model for `phys_regs` registers.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs == 0` or `config.banks == 0`.
    pub fn new(config: ReplicatedBankConfig, phys_regs: usize) -> Self {
        assert!(phys_regs > 0, "need at least one physical register");
        assert!(config.banks >= 1, "need at least one bank");
        ReplicatedBankModel {
            states: vec![PregState::default(); phys_regs],
            producer_cluster: vec![0; phys_regs],
            next_cluster: 0,
            reads_used: vec![0; config.banks as usize],
            stats: RegFileStats::default(),
            config,
        }
    }

    /// The cluster the next issuing instruction will use.
    pub fn current_cluster(&self) -> u32 {
        self.next_cluster
    }

    fn readable_in(&self, preg: PhysReg, cluster: u32, now: Cycle) -> bool {
        let st = &self.states[preg.index()];
        match st.written_at {
            Some(w) => {
                let effective = if self.producer_cluster[preg.index()] == cluster {
                    w
                } else {
                    w + self.config.remote_write_delay
                };
                now >= effective
            }
            None => false,
        }
    }
}

impl RegFileModel for ReplicatedBankModel {
    fn read_latency(&self) -> u64 {
        1
    }

    fn begin_cycle(&mut self, _now: Cycle) {
        self.reads_used.fill(0);
    }

    fn on_alloc(&mut self, preg: PhysReg) {
        self.states[preg.index()].reset_for_alloc();
    }

    fn seed_initial(&mut self, preg: PhysReg) {
        let st = &mut self.states[preg.index()];
        st.reset_for_alloc();
        st.produced_at = Some(0);
        st.written_at = Some(0);
    }

    fn schedule_result(&mut self, preg: PhysReg, produced_at: Cycle) {
        self.states[preg.index()].produced_at = Some(produced_at);
        // The producing instruction itself ran in some cluster; attribute
        // round-robin like every other issue.
        self.producer_cluster[preg.index()] = self.next_cluster;
    }

    fn try_writeback(&mut self, preg: PhysReg, now: Cycle, _window: &dyn WindowQuery) -> bool {
        // Every bank has a dedicated write port per result bus (full
        // replication); write-back never stalls on ports in this model.
        self.states[preg.index()].written_at = Some(now);
        self.stats.writebacks += 1;
        true
    }

    fn is_written(&self, preg: PhysReg) -> bool {
        self.states[preg.index()].written_at.is_some()
    }

    fn is_produced(&self, preg: PhysReg, now: Cycle) -> bool {
        matches!(self.states[preg.index()].produced_at, Some(p) if p <= now)
    }

    fn operand_obtainable(&self, preg: PhysReg, now: Cycle) -> bool {
        // Conservative pre-check: readability depends on the consuming
        // cluster, which is not known here; report the most permissive
        // answer (plan_read settles it).
        match self.states[preg.index()].produced_at {
            Some(p) if now == p => true,
            Some(p) if now > p => self.states[preg.index()].written_at.is_some(),
            _ => false,
        }
    }

    fn plan_read(&mut self, srcs: &[PhysReg], now: Cycle) -> Result<ReadPlan, PlanError> {
        let cluster = self.next_cluster;
        let mut plan = ReadPlan::new();
        let mut ports_needed = 0;
        for &preg in srcs {
            let st = &self.states[preg.index()];
            let Some(produced) = st.produced_at else { return Err(PlanError::NotReady) };
            let local = self.producer_cluster[preg.index()] == cluster;
            if now == produced && local {
                plan.push(SourceRead { preg, path: ReadPath::Bypass });
            } else if self.readable_in(preg, cluster, now) {
                ports_needed += 1;
                plan.push(SourceRead { preg, path: ReadPath::RegFile });
            } else {
                return Err(PlanError::NotReady);
            }
        }
        if let Some(limit) = self.config.read_ports_per_bank {
            if self.reads_used[cluster as usize] + ports_needed > limit {
                self.stats.read_port_stalls += 1;
                return Err(PlanError::NoReadPort);
            }
        }
        Ok(plan)
    }

    fn commit_read(&mut self, plan: &[SourceRead], _now: Cycle) {
        let cluster = self.next_cluster;
        for read in plan {
            let st = &mut self.states[read.preg.index()];
            st.reads += 1;
            match read.path {
                ReadPath::Bypass => {
                    st.bypass_consumed = true;
                    self.stats.bypass_reads += 1;
                }
                ReadPath::RegFile => {
                    self.reads_used[cluster as usize] += 1;
                    self.stats.regfile_reads += 1;
                }
            }
        }
        self.next_cluster = (self.next_cluster + 1) % self.config.banks;
    }

    fn request_demand(&mut self, _preg: PhysReg, _now: Cycle) {}

    fn request_prefetch(&mut self, _preg: PhysReg, _now: Cycle) {}

    fn on_free(&mut self, preg: PhysReg) {
        let st = &mut self.states[preg.index()];
        if st.live {
            let snapshot = *st;
            snapshot.account_reads(&mut self.stats);
        }
        *st = PregState::default();
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NullWindow;

    fn two_banks() -> ReplicatedBankModel {
        ReplicatedBankModel::new(ReplicatedBankConfig::default(), 16)
    }

    #[test]
    fn remote_reads_wait_an_extra_cycle() {
        let mut rf = two_banks();
        let r = PhysReg::new(0);
        rf.begin_cycle(0);
        rf.on_alloc(r);
        rf.schedule_result(r, 2); // produced by cluster 0
        rf.begin_cycle(3);
        assert!(rf.try_writeback(r, 3, &NullWindow));
        // Cluster 0 (local): readable at 3.
        assert_eq!(rf.current_cluster(), 0);
        let plan = rf.plan_read(&[r], 3).unwrap();
        // Committing the read advances to cluster 1.
        rf.commit_read(&plan, 3);
        // Cluster 1 (remote): not readable until 4.
        assert_eq!(rf.current_cluster(), 1);
        assert_eq!(rf.plan_read(&[r], 3), Err(PlanError::NotReady));
        rf.begin_cycle(4);
        assert!(rf.plan_read(&[r], 4).is_ok());
    }

    #[test]
    fn per_bank_read_ports() {
        let cfg =
            ReplicatedBankConfig { banks: 2, read_ports_per_bank: Some(1), remote_write_delay: 1 };
        let mut rf = ReplicatedBankModel::new(cfg, 16);
        let (a, b) = (PhysReg::new(0), PhysReg::new(1));
        rf.begin_cycle(0);
        for r in [a, b] {
            rf.on_alloc(r);
            rf.schedule_result(r, 0);
        }
        rf.begin_cycle(1);
        assert!(rf.try_writeback(a, 1, &NullWindow));
        assert!(rf.try_writeback(b, 1, &NullWindow));
        rf.begin_cycle(2);
        // Two operands need two ports in cluster 0: rejected.
        assert_eq!(rf.plan_read(&[a, b], 2), Err(PlanError::NoReadPort));
        // One operand fits.
        let plan = rf.plan_read(&[a], 2).unwrap();
        rf.commit_read(&plan, 2);
        // The next instruction runs in cluster 1 with a fresh port budget.
        assert!(rf.plan_read(&[b], 2).is_ok());
    }

    #[test]
    fn bypass_only_within_producing_cluster() {
        let mut rf = two_banks();
        let r = PhysReg::new(0);
        rf.begin_cycle(0);
        rf.on_alloc(r);
        rf.schedule_result(r, 5); // producer assigned to cluster 0
        rf.begin_cycle(5);
        // Cluster 0 catches the bypass.
        let plan = rf.plan_read(&[r], 5).unwrap();
        assert_eq!(plan[0].path, ReadPath::Bypass);
        rf.commit_read(&plan, 5);
        // Cluster 1 cannot: value not produced locally, not yet written.
        assert_eq!(rf.plan_read(&[r], 5), Err(PlanError::NotReady));
    }
}
