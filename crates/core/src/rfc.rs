//! The register file cache: the paper's two-level multiple-banked
//! organization.
//!
//! All physical registers live in the **lower** bank; a small
//! fully-associative **upper** bank holds the values expected to be needed
//! soon. Functional units read only the upper bank (one cycle) or the
//! single bypass level, so the bypass network stays as cheap as a 1-cycle
//! monolithic file's. Results are always written to the lower bank and —
//! depending on the caching policy — also to the upper bank. Values absent
//! from the upper bank travel upward over a limited number of buses, on
//! demand or by prefetch.

use crate::config::{CachingPolicy, FetchPolicy, RegFileCacheConfig};
use crate::model::{
    MissList, PlanError, PregState, ReadPath, ReadPlan, RegFileModel, RegFileStats, SourceRead,
    WindowQuery,
};
use crate::plru::ReplacementState;
use rfcache_isa::{Cycle, PhysReg};
use std::collections::VecDeque;

/// How long a demand-transferred value is protected from eviction after
/// arrival (until first read), bounding the livelock where two operands of
/// one instruction keep evicting each other out of a small upper bank.
const DEMAND_PIN_CYCLES: u64 = 16;

/// Transfer status of one physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Transfer {
    /// No transfer pending.
    #[default]
    None,
    /// Waiting in the demand or prefetch queue.
    Queued,
    /// On a bus; readable from the upper bank at the given cycle.
    InFlight {
        /// First cycle at which an issuing instruction can read the value.
        ready_at: Cycle,
    },
}

/// Timing model of the two-level register file cache.
///
/// # Examples
///
/// ```
/// use rfcache_core::{NullWindow, ReadPath, RegFileCacheConfig, RegFileCacheModel, RegFileModel};
/// use rfcache_isa::PhysReg;
///
/// let mut rf = RegFileCacheModel::new(RegFileCacheConfig::paper_default(), 32);
/// let p = PhysReg::new(3);
/// rf.begin_cycle(0);
/// rf.on_alloc(p);
/// rf.schedule_result(p, 2);
/// // Not consumed from the bypass ⇒ non-bypass caching writes it upward.
/// rf.begin_cycle(3);
/// assert!(rf.try_writeback(p, 3, &NullWindow));
/// let plan = rf.plan_read(&[p], 3).unwrap();
/// assert_eq!(plan[0].path, ReadPath::RegFile); // upper-bank hit
/// ```
#[derive(Debug)]
pub struct RegFileCacheModel {
    config: RegFileCacheConfig,
    states: Vec<PregState>,
    transfers: Vec<Transfer>,
    /// Whether each preg currently resides in the upper bank.
    in_upper: Vec<bool>,
    /// Upper bank slots (`None` = free).
    slots: Vec<Option<PhysReg>>,
    /// Slot index of each preg when resident.
    slot_of: Vec<Option<u16>>,
    replacement: ReplacementState,
    free_slots: Vec<u16>,
    /// Demand transfer queue (oldest first).
    demand_queue: VecDeque<PhysReg>,
    /// Prefetch queue, served only when no demand is waiting.
    prefetch_queue: VecDeque<PhysReg>,
    /// Completion cycle of each busy bus (unlimited buses if `None`).
    bus_free_at: Option<Vec<Cycle>>,
    /// In-flight arrivals, ordered by readiness cycle; the flag marks
    /// demand (vs prefetch) transfers.
    arrivals: VecDeque<(Cycle, PhysReg, bool)>,
    /// Eviction protection for freshly demand-transferred values.
    pinned_until: Vec<Cycle>,
    /// Current cycle (for pin checks during insertion).
    now: Cycle,
    reads_used: u32,
    result_writes_used: u32,
    lower_writes_used: u32,
    stats: RegFileStats,
}

impl RegFileCacheModel {
    /// Creates a model for `phys_regs` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs == 0`, `upper_entries < 2` or not a power of
    /// two (pseudo-LRU requirement), `upper_entries >= phys_regs`, or
    /// `lower_latency == 0`.
    pub fn new(config: RegFileCacheConfig, phys_regs: usize) -> Self {
        assert!(phys_regs > 0, "need at least one physical register");
        assert!(
            config.upper_entries < phys_regs,
            "upper bank must be smaller than the register file"
        );
        assert!(config.lower_latency >= 1, "lower-bank latency must be at least one cycle");
        let replacement = ReplacementState::new(config.replacement, config.upper_entries);
        RegFileCacheModel {
            states: vec![PregState::default(); phys_regs],
            transfers: vec![Transfer::None; phys_regs],
            in_upper: vec![false; phys_regs],
            slots: vec![None; config.upper_entries],
            slot_of: vec![None; phys_regs],
            replacement,
            free_slots: (0..config.upper_entries as u16).rev().collect(),
            demand_queue: VecDeque::new(),
            prefetch_queue: VecDeque::new(),
            bus_free_at: config.buses.map(|b| vec![0; b as usize]),
            arrivals: VecDeque::new(),
            pinned_until: vec![0; phys_regs],
            now: 0,
            reads_used: 0,
            result_writes_used: 0,
            lower_writes_used: 0,
            stats: RegFileStats::default(),
            config,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &RegFileCacheConfig {
        &self.config
    }

    /// Number of values currently resident in the upper bank.
    pub fn upper_occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether `preg` is resident in the upper bank.
    pub fn in_upper(&self, preg: PhysReg) -> bool {
        self.in_upper[preg.index()]
    }

    /// Inserts `preg` into the upper bank, evicting if necessary.
    fn insert_upper(&mut self, preg: PhysReg) {
        if self.in_upper[preg.index()] {
            if let Some(slot) = self.slot_of[preg.index()] {
                self.replacement.touch(slot as usize);
            }
            return;
        }
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let mut victim_slot = self.replacement.pick_victim() as u16;
                // A freshly demand-transferred value is protected until its
                // consumer reads it (or the pin expires): evicting it would
                // let two operands of one instruction displace each other
                // forever. Fall back to any unpinned slot; if everything is
                // pinned, evict the *most recently pinned* one — demand
                // requests are filed oldest-instruction-first, so the
                // oldest consumer's operands carry the oldest pins and
                // survive, guaranteeing forward progress.
                let pin_of = |s: u16| {
                    self.slots[s as usize]
                        .map(|p| self.pinned_until[p.index()])
                        .filter(|&until| until > self.now)
                };
                if pin_of(victim_slot).is_some() {
                    let slots = 0..self.slots.len() as u16;
                    if let Some(alt) = slots.clone().find(|&s| pin_of(s).is_none()) {
                        victim_slot = alt;
                    } else if let Some(youngest) = slots.max_by_key(|&s| pin_of(s).unwrap_or(0)) {
                        victim_slot = youngest;
                    }
                }
                if let Some(victim) = self.slots[victim_slot as usize] {
                    self.in_upper[victim.index()] = false;
                    self.slot_of[victim.index()] = None;
                    self.stats.evictions += 1;
                }
                victim_slot
            }
        };
        self.slots[slot as usize] = Some(preg);
        self.slot_of[preg.index()] = Some(slot);
        self.in_upper[preg.index()] = true;
        self.replacement.touch(slot as usize);
    }

    /// Removes `preg` from the upper bank without counting an eviction.
    fn remove_upper(&mut self, preg: PhysReg) {
        if let Some(slot) = self.slot_of[preg.index()].take() {
            self.slots[slot as usize] = None;
            self.free_slots.push(slot);
            self.in_upper[preg.index()] = false;
        }
    }

    /// Starts queued transfers on free buses, demands before prefetches.
    fn start_transfers(&mut self, now: Cycle) {
        loop {
            // Find a free bus (or synthesize one when unlimited).
            let bus_idx = match &self.bus_free_at {
                Some(buses) => match buses.iter().position(|&b| b <= now) {
                    Some(i) => Some(i),
                    None => break, // all buses busy
                },
                None => None,
            };

            // Pop the next startable request, preferring demands. Requests
            // whose preconditions lapsed (freed, already resident) are
            // dropped; requests for values not yet written to the lower
            // bank stay queued.
            let mut candidate = None;
            for queue_is_demand in [true, false] {
                let queue =
                    if queue_is_demand { &mut self.demand_queue } else { &mut self.prefetch_queue };
                let mut scanned = 0;
                while scanned < queue.len() {
                    let preg = queue[scanned];
                    let idx = preg.index();
                    if self.transfers[idx] != Transfer::Queued {
                        queue.remove(scanned); // stale (freed or restarted)
                        continue;
                    }
                    if !self.states[idx].live || self.in_upper[idx] {
                        queue.remove(scanned);
                        self.transfers[idx] = Transfer::None;
                        continue;
                    }
                    let written = matches!(self.states[idx].written_at, Some(w) if w <= now);
                    if !written {
                        // Not yet in the lower bank: leave it queued and
                        // look past it (bounded scan keeps this cheap).
                        scanned += 1;
                        if scanned >= 8 {
                            break;
                        }
                        continue;
                    }
                    queue.remove(scanned);
                    candidate = Some((preg, queue_is_demand));
                    break;
                }
                if candidate.is_some() {
                    break;
                }
            }

            let Some((preg, is_demand)) = candidate else { break };
            let ready_at = now + self.config.lower_latency;
            self.transfers[preg.index()] = Transfer::InFlight { ready_at };
            self.arrivals.push_back((ready_at, preg, is_demand));
            if is_demand {
                self.stats.demand_transfers += 1;
            } else {
                self.stats.prefetch_transfers += 1;
            }
            if let (Some(i), Some(buses)) = (bus_idx, self.bus_free_at.as_mut()) {
                buses[i] = ready_at;
            }
        }
    }

    /// Lands transfers whose values become readable this cycle.
    fn process_arrivals(&mut self, now: Cycle) {
        while let Some(&(ready_at, preg, is_demand)) = self.arrivals.front() {
            if ready_at > now {
                break;
            }
            self.arrivals.pop_front();
            if self.transfers[preg.index()] == (Transfer::InFlight { ready_at })
                && self.states[preg.index()].live
            {
                self.transfers[preg.index()] = Transfer::None;
                if is_demand {
                    self.pinned_until[preg.index()] = now + DEMAND_PIN_CYCLES;
                }
                self.insert_upper(preg);
            }
        }
    }
}

impl RegFileModel for RegFileCacheModel {
    fn read_latency(&self) -> u64 {
        1 // functional units always read the one-cycle upper bank
    }

    fn begin_cycle(&mut self, now: Cycle) {
        self.now = now;
        self.reads_used = 0;
        self.result_writes_used = 0;
        self.lower_writes_used = 0;
        self.process_arrivals(now);
        self.start_transfers(now);
    }

    fn on_alloc(&mut self, preg: PhysReg) {
        self.states[preg.index()].reset_for_alloc();
        self.transfers[preg.index()] = Transfer::None;
        self.remove_upper(preg);
    }

    fn seed_initial(&mut self, preg: PhysReg) {
        let st = &mut self.states[preg.index()];
        st.reset_for_alloc();
        st.produced_at = Some(0);
        st.written_at = Some(0);
    }

    fn schedule_result(&mut self, preg: PhysReg, produced_at: Cycle) {
        self.states[preg.index()].produced_at = Some(produced_at);
    }

    fn try_writeback(&mut self, preg: PhysReg, now: Cycle, window: &dyn WindowQuery) -> bool {
        if let Some(limit) = self.config.lower_write_ports {
            if self.lower_writes_used >= limit {
                self.stats.write_port_stalls += 1;
                return false;
            }
        }
        self.lower_writes_used += 1;
        self.states[preg.index()].written_at = Some(now);
        self.stats.writebacks += 1;

        let cache_it = match self.config.caching {
            CachingPolicy::NonBypass => !self.states[preg.index()].bypass_consumed,
            CachingPolicy::Ready => window.has_ready_unissued_consumer(preg),
        };
        if !cache_it {
            self.stats.policy_skipped += 1;
            return true;
        }
        if let Some(limit) = self.config.upper_write_ports {
            if self.result_writes_used >= limit {
                self.stats.port_skipped += 1;
                return true;
            }
        }
        self.result_writes_used += 1;
        self.insert_upper(preg);
        self.stats.cached_results += 1;
        true
    }

    fn is_written(&self, preg: PhysReg) -> bool {
        self.states[preg.index()].written_at.is_some()
    }

    fn is_produced(&self, preg: PhysReg, now: Cycle) -> bool {
        matches!(self.states[preg.index()].produced_at, Some(p) if p <= now)
    }

    fn operand_obtainable(&self, preg: PhysReg, now: Cycle) -> bool {
        // A produced value is always actionable: bypass at `now == p`,
        // upper-bank read, or an upper miss that plan_read must surface so
        // the core files a demand transfer.
        matches!(self.states[preg.index()].produced_at, Some(p) if now >= p)
    }

    fn plan_read(&mut self, srcs: &[PhysReg], now: Cycle) -> Result<ReadPlan, PlanError> {
        let mut plan = ReadPlan::new();
        let mut ports_needed = 0;
        let mut missing = MissList::new();
        let mut any_unproduced = false;
        for &preg in srcs {
            let st = &self.states[preg.index()];
            let Some(produced) = st.produced_at else {
                any_unproduced = true;
                continue;
            };
            if now == produced {
                // Single bypass level: catch the value as it leaves the FU.
                plan.push(SourceRead { preg, path: ReadPath::Bypass });
            } else if now > produced && self.in_upper[preg.index()] {
                ports_needed += 1;
                plan.push(SourceRead { preg, path: ReadPath::RegFile });
            } else if now > produced {
                missing.push(preg);
            } else {
                any_unproduced = true;
            }
        }
        if any_unproduced {
            return Err(PlanError::NotReady);
        }
        if !missing.is_empty() {
            self.stats.upper_miss_stalls += 1;
            return Err(PlanError::UpperMiss(missing));
        }
        if let Some(limit) = self.config.upper_read_ports {
            if self.reads_used + ports_needed > limit {
                self.stats.read_port_stalls += 1;
                return Err(PlanError::NoReadPort);
            }
        }
        Ok(plan)
    }

    fn commit_read(&mut self, plan: &[SourceRead], _now: Cycle) {
        for read in plan {
            let st = &mut self.states[read.preg.index()];
            st.reads += 1;
            match read.path {
                ReadPath::Bypass => {
                    st.bypass_consumed = true;
                    self.stats.bypass_reads += 1;
                }
                ReadPath::RegFile => {
                    self.reads_used += 1;
                    self.stats.regfile_reads += 1;
                    // The pinned value served its consumer; normal
                    // replacement applies from here on.
                    self.pinned_until[read.preg.index()] = 0;
                    if let Some(slot) = self.slot_of[read.preg.index()] {
                        self.replacement.touch(slot as usize);
                    }
                }
            }
        }
    }

    fn request_demand(&mut self, preg: PhysReg, _now: Cycle) {
        let idx = preg.index();
        if !self.states[idx].live || self.in_upper[idx] || self.transfers[idx] != Transfer::None {
            return;
        }
        self.transfers[idx] = Transfer::Queued;
        self.demand_queue.push_back(preg);
    }

    fn request_prefetch(&mut self, preg: PhysReg, now: Cycle) {
        if self.config.fetch != FetchPolicy::PrefetchFirstPair {
            return;
        }
        let _ = now;
        let idx = preg.index();
        let st = &self.states[idx];
        // Values already resident or on their way need no prefetch; values
        // whose production is not even scheduled cannot be located. A
        // produced-but-not-yet-written value may queue: the bus scheduler
        // starts it once the lower-bank write completes.
        if !st.live
            || self.in_upper[idx]
            || self.transfers[idx] != Transfer::None
            || st.produced_at.is_none()
        {
            self.stats.prefetch_dropped += 1;
            return;
        }
        self.transfers[idx] = Transfer::Queued;
        self.prefetch_queue.push_back(preg);
    }

    fn on_free(&mut self, preg: PhysReg) {
        let idx = preg.index();
        let st = self.states[idx];
        if st.live {
            st.account_reads(&mut self.stats);
        }
        self.states[idx] = PregState::default();
        self.transfers[idx] = Transfer::None; // queues drop stale entries lazily
        self.pinned_until[idx] = 0;
        self.remove_upper(preg);
    }

    fn caching_policy(&self) -> Option<CachingPolicy> {
        Some(self.config.caching)
    }

    fn fetch_policy(&self) -> Option<FetchPolicy> {
        Some(self.config.fetch)
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }

    fn debug_operand(&self, preg: PhysReg) -> String {
        let idx = preg.index();
        let queue_head: Vec<String> = self
            .demand_queue
            .iter()
            .take(10)
            .map(|p| {
                let i = p.index();
                format!(
                    "p{i}(q={:?},w={},u={},l={})",
                    self.transfers[i],
                    self.states[i].written_at.is_some(),
                    self.in_upper[i],
                    self.states[i].live
                )
            })
            .collect();
        format!(
            "in_upper={} transfer={:?} pinned_until={} demand_q={} prefetch_q={} dq_len={} dq_head=[{}]",
            self.in_upper[idx],
            self.transfers[idx],
            self.pinned_until[idx],
            self.demand_queue.iter().filter(|p| p.index() == idx).count(),
            self.prefetch_queue.iter().filter(|p| p.index() == idx).count(),
            self.demand_queue.len(),
            queue_head.join(" "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Replacement;
    use crate::model::NullWindow;

    fn preg(i: u16) -> PhysReg {
        PhysReg::new(i)
    }

    fn model() -> RegFileCacheModel {
        RegFileCacheModel::new(RegFileCacheConfig::paper_default(), 64)
    }

    /// Alloc + schedule + (cycle p+1) writeback, returning at cycle p+1.
    fn produce_and_write(
        rf: &mut RegFileCacheModel,
        r: PhysReg,
        p: Cycle,
        window: &dyn WindowQuery,
    ) {
        rf.on_alloc(r);
        rf.schedule_result(r, p);
        rf.begin_cycle(p + 1);
        assert!(rf.try_writeback(r, p + 1, window));
    }

    #[test]
    fn non_bypassed_value_is_cached_and_readable() {
        let mut rf = model();
        let r = preg(0);
        produce_and_write(&mut rf, r, 2, &NullWindow);
        assert!(rf.in_upper(r));
        let plan = rf.plan_read(&[r], 3).unwrap();
        assert_eq!(plan[0].path, ReadPath::RegFile);
    }

    #[test]
    fn bypass_consumed_value_is_not_cached_under_non_bypass_policy() {
        let mut rf = model();
        let r = preg(0);
        rf.begin_cycle(0);
        rf.on_alloc(r);
        rf.schedule_result(r, 2);
        // A consumer catches it on the bypass at cycle 2 (EX at 3).
        rf.begin_cycle(2);
        let plan = rf.plan_read(&[r], 2).unwrap();
        assert_eq!(plan[0].path, ReadPath::Bypass);
        rf.commit_read(&plan, 2);
        // Write-back next cycle: policy declines to cache it.
        rf.begin_cycle(3);
        assert!(rf.try_writeback(r, 3, &NullWindow));
        assert!(!rf.in_upper(r));
        assert_eq!(rf.stats().policy_skipped, 1);
    }

    #[test]
    fn ready_caching_uses_window_information() {
        struct AlwaysReady;
        impl WindowQuery for AlwaysReady {
            fn has_ready_unissued_consumer(&self, _p: PhysReg) -> bool {
                true
            }
        }
        let cfg = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand);
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let r = preg(0);
        produce_and_write(&mut rf, r, 2, &AlwaysReady);
        assert!(rf.in_upper(r));

        // Without a ready consumer the value stays in the lower bank only.
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let r = preg(1);
        produce_and_write(&mut rf, r, 2, &NullWindow);
        assert!(!rf.in_upper(r));
    }

    #[test]
    fn upper_miss_reports_missing_registers() {
        let cfg = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand);
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let r = preg(0);
        produce_and_write(&mut rf, r, 2, &NullWindow); // not cached (Ready policy, no consumer)
        rf.begin_cycle(4);
        match rf.plan_read(&[r], 4) {
            Err(PlanError::UpperMiss(missing)) => assert_eq!(missing.as_slice(), &[r]),
            other => panic!("expected UpperMiss, got {other:?}"),
        }
    }

    #[test]
    fn demand_transfer_brings_value_up_after_lower_latency() {
        let cfg = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand)
            .with_ports(16, 8, 8, 2);
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let r = preg(0);
        produce_and_write(&mut rf, r, 2, &NullWindow); // in lower only, written at 3
        rf.request_demand(r, 3);
        // Transfer starts at the next begin_cycle (4); lower latency 2 ⇒
        // readable for issues at cycle 6.
        rf.begin_cycle(4);
        assert!(matches!(rf.plan_read(&[r], 4), Err(PlanError::UpperMiss(_))));
        rf.begin_cycle(5);
        assert!(matches!(rf.plan_read(&[r], 5), Err(PlanError::UpperMiss(_))));
        rf.begin_cycle(6);
        let plan = rf.plan_read(&[r], 6).unwrap();
        assert_eq!(plan[0].path, ReadPath::RegFile);
        assert_eq!(rf.stats().demand_transfers, 1);
    }

    #[test]
    fn limited_buses_serialize_transfers() {
        let cfg = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand)
            .with_ports(16, 8, 8, 1); // single bus
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let (a, b) = (preg(0), preg(1));
        rf.on_alloc(a);
        rf.on_alloc(b);
        rf.schedule_result(a, 2);
        rf.schedule_result(b, 2);
        rf.begin_cycle(3);
        assert!(rf.try_writeback(a, 3, &NullWindow));
        assert!(rf.try_writeback(b, 3, &NullWindow));
        rf.request_demand(a, 3);
        rf.request_demand(b, 3);
        // Bus starts a at cycle 4 (ready 6); b must wait for the bus and
        // starts at 6 (ready 8).
        rf.begin_cycle(4);
        rf.begin_cycle(5);
        rf.begin_cycle(6);
        assert!(rf.plan_read(&[a], 6).is_ok());
        assert!(rf.plan_read(&[b], 6).is_err());
        rf.begin_cycle(7);
        assert!(rf.plan_read(&[b], 7).is_err());
        rf.begin_cycle(8);
        assert!(rf.plan_read(&[b], 8).is_ok());
    }

    #[test]
    fn prefetch_only_under_prefetch_policy() {
        let on_demand = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand);
        let mut rf = RegFileCacheModel::new(on_demand, 64);
        let r = preg(0);
        produce_and_write(&mut rf, r, 2, &NullWindow);
        rf.request_prefetch(r, 3);
        rf.begin_cycle(10);
        assert!(rf.plan_read(&[r], 10).is_err(), "on-demand config must ignore prefetches");

        let pf = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::PrefetchFirstPair);
        let mut rf = RegFileCacheModel::new(pf, 64);
        let r = preg(0);
        produce_and_write(&mut rf, r, 2, &NullWindow);
        rf.request_prefetch(r, 3);
        rf.begin_cycle(4);
        rf.begin_cycle(5);
        rf.begin_cycle(6);
        assert!(rf.plan_read(&[r], 6).is_ok());
        assert_eq!(rf.stats().prefetch_transfers, 1);
    }

    #[test]
    fn prefetch_of_unscheduled_value_is_dropped_but_scheduled_one_queues() {
        let pf = RegFileCacheConfig::paper_default();
        let mut rf = RegFileCacheModel::new(pf, 64);
        let r = preg(0);
        rf.on_alloc(r);
        rf.begin_cycle(2);
        rf.request_prefetch(r, 2); // production not even scheduled: dropped
        assert_eq!(rf.stats().prefetch_dropped, 1);

        rf.schedule_result(r, 5);
        rf.request_prefetch(r, 2); // scheduled: queues, starts after WB
        assert_eq!(rf.stats().prefetch_dropped, 1);
        rf.begin_cycle(6);
        assert!(rf.try_writeback(r, 6, &NullWindow));
        rf.remove_upper(r); // undo non-bypass caching to force the transfer
        rf.begin_cycle(7);
        rf.begin_cycle(8);
        rf.begin_cycle(9);
        assert!(rf.plan_read(&[r], 9).is_ok());
        assert_eq!(rf.stats().prefetch_transfers, 1);
    }

    #[test]
    fn demands_have_priority_over_prefetches() {
        let cfg = RegFileCacheConfig::paper_default().with_ports(16, 8, 8, 1);
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let (d, p) = (preg(0), preg(1));
        for r in [d, p] {
            rf.on_alloc(r);
            rf.schedule_result(r, 2);
        }
        rf.begin_cycle(3);
        assert!(rf.try_writeback(d, 3, &NullWindow));
        assert!(rf.try_writeback(p, 3, &NullWindow));
        // Both were bypass-free so non-bypass caching already cached them;
        // remove them to force transfers.
        rf.remove_upper(d);
        rf.remove_upper(p);
        rf.request_prefetch(p, 3); // queued first
        rf.request_demand(d, 3);
        rf.begin_cycle(4); // single bus: demand d must win
        rf.begin_cycle(6);
        assert!(rf.plan_read(&[d], 6).is_ok());
        assert!(rf.plan_read(&[p], 6).is_err());
    }

    #[test]
    fn upper_bank_evicts_with_plru_when_full() {
        let cfg = RegFileCacheConfig { upper_entries: 4, ..RegFileCacheConfig::paper_default() };
        let mut rf = RegFileCacheModel::new(cfg, 64);
        for i in 0..5u16 {
            let r = preg(i);
            rf.on_alloc(r);
            rf.schedule_result(r, 2 + u64::from(i));
            rf.begin_cycle(3 + u64::from(i));
            assert!(rf.try_writeback(r, 3 + u64::from(i), &NullWindow));
        }
        assert_eq!(rf.upper_occupancy(), 4);
        assert_eq!(rf.stats().evictions, 1);
        assert!(!rf.in_upper(preg(0)), "the oldest untouched entry is the PLRU victim");
    }

    #[test]
    fn upper_write_port_exhaustion_skips_caching() {
        let cfg = RegFileCacheConfig::paper_default().with_ports(16, 1, 8, 2);
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let (a, b) = (preg(0), preg(1));
        for r in [a, b] {
            rf.on_alloc(r);
            rf.schedule_result(r, 2);
        }
        rf.begin_cycle(3);
        assert!(rf.try_writeback(a, 3, &NullWindow));
        assert!(rf.try_writeback(b, 3, &NullWindow)); // lower write ok
        assert!(rf.in_upper(a));
        assert!(!rf.in_upper(b), "second caching write must be dropped");
        assert_eq!(rf.stats().port_skipped, 1);
        assert!(rf.is_written(b), "the lower-bank write still happened");
    }

    #[test]
    fn lower_write_port_exhaustion_defers_writeback() {
        let cfg = RegFileCacheConfig::paper_default().with_ports(16, 8, 1, 2);
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let (a, b) = (preg(0), preg(1));
        for r in [a, b] {
            rf.on_alloc(r);
            rf.schedule_result(r, 2);
        }
        rf.begin_cycle(3);
        assert!(rf.try_writeback(a, 3, &NullWindow));
        assert!(!rf.try_writeback(b, 3, &NullWindow));
        rf.begin_cycle(4);
        assert!(rf.try_writeback(b, 4, &NullWindow));
    }

    #[test]
    fn freed_register_disappears_from_upper_bank_and_queues() {
        let mut rf = model();
        let r = preg(0);
        produce_and_write(&mut rf, r, 2, &NullWindow);
        assert!(rf.in_upper(r));
        rf.on_free(r);
        assert!(!rf.in_upper(r));
        assert_eq!(rf.upper_occupancy(), 0);
        // Freed slot is reusable without eviction.
        let s = preg(1);
        produce_and_write(&mut rf, s, 5, &NullWindow);
        assert_eq!(rf.stats().evictions, 0);
    }

    #[test]
    fn read_latency_is_one_cycle() {
        assert_eq!(model().read_latency(), 1);
    }

    #[test]
    fn demand_arrivals_are_pinned_against_churn() {
        // Livelock regression: with a tiny upper bank under heavy caching
        // churn, a demand-transferred value must survive until its
        // consumer reads it.
        let cfg = RegFileCacheConfig {
            upper_entries: 4,
            ..RegFileCacheConfig::paper_default().with_ports(16, 8, 8, 2)
        };
        let mut rf = RegFileCacheModel::new(cfg, 64);
        let target = preg(0);
        rf.on_alloc(target);
        rf.schedule_result(target, 1);
        rf.begin_cycle(2);
        assert!(rf.try_writeback(target, 2, &NullWindow));
        rf.remove_upper(target); // simulate an earlier eviction
        rf.request_demand(target, 2);
        rf.begin_cycle(3); // transfer starts (ready at 5)
        rf.begin_cycle(4);
        rf.begin_cycle(5); // arrival: pinned
        assert!(rf.in_upper(target));
        // Now flood the 4-entry bank with fresh results for several
        // cycles; the pinned value must survive.
        let mut next = 1u16;
        for cycle in 6..10u64 {
            rf.begin_cycle(cycle);
            for _ in 0..3 {
                let p = preg(next);
                next += 1;
                rf.on_alloc(p);
                rf.schedule_result(p, cycle - 1);
                assert!(rf.try_writeback(p, cycle, &NullWindow));
            }
            assert!(rf.in_upper(target), "pinned value evicted at cycle {cycle}");
        }
        // Reading it releases the pin; churn may now evict it.
        rf.begin_cycle(10);
        let plan = rf.plan_read(&[target], 10).unwrap();
        rf.commit_read(&plan, 10);
        for _ in 0..6 {
            let p = preg(next);
            next += 1;
            rf.on_alloc(p);
            rf.schedule_result(p, 9);
            assert!(rf.try_writeback(p, 10, &NullWindow));
        }
        assert!(!rf.in_upper(target), "unpinned value should be evictable again");
    }

    #[test]
    fn fifo_replacement_is_supported() {
        let cfg = RegFileCacheConfig {
            upper_entries: 4,
            replacement: Replacement::Fifo,
            ..RegFileCacheConfig::paper_default()
        };
        let mut rf = RegFileCacheModel::new(cfg, 64);
        for i in 0..6u16 {
            let r = preg(i);
            rf.on_alloc(r);
            rf.schedule_result(r, 2 + u64::from(i));
            rf.begin_cycle(3 + u64::from(i));
            assert!(rf.try_writeback(r, 3 + u64::from(i), &NullWindow));
        }
        // FIFO: first two inserted are the first two evicted.
        assert!(!rf.in_upper(preg(0)));
        assert!(!rf.in_upper(preg(1)));
        assert!(rf.in_upper(preg(5)));
    }
}
