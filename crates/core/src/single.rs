//! Conventional single-banked register file model (1- or 2-cycle access,
//! full or single-level bypass).

use crate::config::SingleBankConfig;
use crate::model::{
    PlanError, PregState, ReadPath, ReadPlan, RegFileModel, RegFileStats, SourceRead, WindowQuery,
};
use rfcache_isa::{Cycle, PhysReg};

/// Timing model of a conventional single-banked register file.
///
/// # Timing
///
/// With read latency `L` and a producer finishing execution at the end of
/// cycle `p`, a consumer issuing at cycle `c` (executing at `c + L`)
/// obtains the value:
///
/// * from the **full bypass network** when `p + 1 <= c + L <= p + L`
///   (i.e. `c` in `[p + 1 - L, p]`), enabling back-to-back execution;
/// * from the **single (last) bypass level** only when `c == p`;
/// * from the **register file** when the value has been written back
///   (`written_at <= c`), which requires a write port and happens at
///   `p + 1` at the earliest.
///
/// # Examples
///
/// ```
/// use rfcache_core::{NullWindow, RegFileModel, SingleBankConfig, SingleBankModel, ReadPath};
/// use rfcache_isa::PhysReg;
///
/// let mut rf = SingleBankModel::new(SingleBankConfig::one_cycle(), 8);
/// let p = PhysReg::new(0);
/// rf.begin_cycle(0);
/// rf.on_alloc(p);
/// rf.schedule_result(p, 4); // produced at end of cycle 4
/// rf.begin_cycle(4);
/// let plan = rf.plan_read(&[p], 4).unwrap();
/// assert_eq!(plan[0].path, ReadPath::Bypass); // back-to-back via bypass
/// ```
#[derive(Debug)]
pub struct SingleBankModel {
    config: SingleBankConfig,
    states: Vec<PregState>,
    reads_used: u32,
    writes_used: u32,
    stats: RegFileStats,
}

impl SingleBankModel {
    /// Creates a model for `phys_regs` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs == 0` or the configured latency is 0.
    pub fn new(config: SingleBankConfig, phys_regs: usize) -> Self {
        assert!(phys_regs > 0, "need at least one physical register");
        assert!(config.latency >= 1, "read latency must be at least one cycle");
        SingleBankModel {
            config,
            states: vec![PregState::default(); phys_regs],
            reads_used: 0,
            writes_used: 0,
            stats: RegFileStats::default(),
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &SingleBankConfig {
        &self.config
    }

    fn state(&self, preg: PhysReg) -> &PregState {
        &self.states[preg.index()]
    }

    /// Classifies how `preg` would be read by an instruction issuing at
    /// `now`, or `None` if it cannot be obtained this cycle.
    fn classify(&self, preg: PhysReg, now: Cycle) -> Option<ReadPath> {
        let st = self.state(preg);
        let produced = st.produced_at?;
        let lat = self.config.latency;
        let t_ex = now + lat;
        let in_bypass = match self.config.bypass {
            crate::BypassNetwork::Full => t_ex > produced && t_ex <= produced + lat,
            crate::BypassNetwork::SingleLevel => now == produced,
        };
        if in_bypass {
            return Some(ReadPath::Bypass);
        }
        match st.written_at {
            Some(w) if now >= w => Some(ReadPath::RegFile),
            _ => None,
        }
    }
}

impl RegFileModel for SingleBankModel {
    fn read_latency(&self) -> u64 {
        self.config.latency
    }

    fn begin_cycle(&mut self, _now: Cycle) {
        self.reads_used = 0;
        self.writes_used = 0;
    }

    fn on_alloc(&mut self, preg: PhysReg) {
        self.states[preg.index()].reset_for_alloc();
    }

    fn seed_initial(&mut self, preg: PhysReg) {
        let st = &mut self.states[preg.index()];
        st.reset_for_alloc();
        st.produced_at = Some(0);
        st.written_at = Some(0);
    }

    fn schedule_result(&mut self, preg: PhysReg, produced_at: Cycle) {
        self.states[preg.index()].produced_at = Some(produced_at);
    }

    fn try_writeback(&mut self, preg: PhysReg, now: Cycle, _window: &dyn WindowQuery) -> bool {
        if let Some(limit) = self.config.ports.write {
            if self.writes_used >= limit {
                self.stats.write_port_stalls += 1;
                return false;
            }
        }
        self.writes_used += 1;
        self.states[preg.index()].written_at = Some(now);
        self.stats.writebacks += 1;
        true
    }

    fn is_written(&self, preg: PhysReg) -> bool {
        self.state(preg).written_at.is_some()
    }

    fn is_produced(&self, preg: PhysReg, now: Cycle) -> bool {
        matches!(self.state(preg).produced_at, Some(p) if p <= now)
    }

    fn operand_obtainable(&self, preg: PhysReg, now: Cycle) -> bool {
        self.classify(preg, now).is_some()
    }

    fn plan_read(&mut self, srcs: &[PhysReg], now: Cycle) -> Result<ReadPlan, PlanError> {
        let mut plan = ReadPlan::new();
        let mut ports_needed = 0;
        for &preg in srcs {
            match self.classify(preg, now) {
                Some(path) => {
                    if path == ReadPath::RegFile {
                        ports_needed += 1;
                    }
                    plan.push(SourceRead { preg, path });
                }
                None => return Err(PlanError::NotReady),
            }
        }
        if let Some(limit) = self.config.ports.read {
            if self.reads_used + ports_needed > limit {
                self.stats.read_port_stalls += 1;
                return Err(PlanError::NoReadPort);
            }
        }
        Ok(plan)
    }

    fn commit_read(&mut self, plan: &[SourceRead], _now: Cycle) {
        for read in plan {
            let st = &mut self.states[read.preg.index()];
            st.reads += 1;
            match read.path {
                ReadPath::Bypass => {
                    st.bypass_consumed = true;
                    self.stats.bypass_reads += 1;
                }
                ReadPath::RegFile => {
                    self.reads_used += 1;
                    self.stats.regfile_reads += 1;
                }
            }
        }
    }

    fn request_demand(&mut self, _preg: PhysReg, _now: Cycle) {}

    fn request_prefetch(&mut self, _preg: PhysReg, _now: Cycle) {}

    fn on_free(&mut self, preg: PhysReg) {
        let st = &mut self.states[preg.index()];
        if st.live {
            let snapshot = *st;
            snapshot.account_reads(&mut self.stats);
        }
        *st = PregState::default();
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PortLimits;
    use crate::model::NullWindow;

    fn preg(i: u16) -> PhysReg {
        PhysReg::new(i)
    }

    /// Drives a model through alloc + schedule + writeback at the natural
    /// cycles: produced at `p`, written back at `p + 1`.
    fn produce(rf: &mut SingleBankModel, r: PhysReg, p: Cycle) {
        rf.on_alloc(r);
        rf.schedule_result(r, p);
    }

    #[test]
    fn one_cycle_file_has_no_holes() {
        let mut rf = SingleBankModel::new(SingleBankConfig::one_cycle(), 4);
        let r = preg(0);
        rf.begin_cycle(0);
        produce(&mut rf, r, 5);

        // Before production: not ready.
        rf.begin_cycle(4);
        assert_eq!(rf.plan_read(&[r], 4), Err(PlanError::NotReady));
        // At production: bypass.
        rf.begin_cycle(5);
        assert_eq!(rf.plan_read(&[r], 5).unwrap()[0].path, ReadPath::Bypass);
        // Next cycle: written back, register file path.
        rf.begin_cycle(6);
        assert!(rf.try_writeback(r, 6, &NullWindow));
        assert_eq!(rf.plan_read(&[r], 6).unwrap()[0].path, ReadPath::RegFile);
        // Every later cycle: still readable.
        rf.begin_cycle(9);
        assert_eq!(rf.plan_read(&[r], 9).unwrap()[0].path, ReadPath::RegFile);
    }

    #[test]
    fn two_cycle_single_bypass_loses_back_to_back() {
        let mut rf = SingleBankModel::new(SingleBankConfig::two_cycle_single_bypass(), 4);
        let r = preg(0);
        rf.begin_cycle(0);
        produce(&mut rf, r, 5);

        // c = p - 1 would give EX start at p + 1 (back-to-back): impossible
        // with a single bypass level.
        rf.begin_cycle(4);
        assert_eq!(rf.plan_read(&[r], 4), Err(PlanError::NotReady));
        // c = p: last bypass level catches it (EX at p + 2).
        rf.begin_cycle(5);
        assert_eq!(rf.plan_read(&[r], 5).unwrap()[0].path, ReadPath::Bypass);
        // c = p + 1: written back this cycle; register file path (no hole).
        rf.begin_cycle(6);
        assert!(rf.try_writeback(r, 6, &NullWindow));
        assert_eq!(rf.plan_read(&[r], 6).unwrap()[0].path, ReadPath::RegFile);
    }

    #[test]
    fn two_cycle_full_bypass_allows_back_to_back() {
        let mut rf = SingleBankModel::new(SingleBankConfig::two_cycle_full_bypass(), 4);
        let r = preg(0);
        rf.begin_cycle(0);
        produce(&mut rf, r, 5);
        // c = p - 1 ⇒ EX at p + 1: the full network forwards it.
        rf.begin_cycle(4);
        assert_eq!(rf.plan_read(&[r], 4).unwrap()[0].path, ReadPath::Bypass);
        // c = p ⇒ EX at p + 2: second bypass level.
        rf.begin_cycle(5);
        assert_eq!(rf.plan_read(&[r], 5).unwrap()[0].path, ReadPath::Bypass);
        // c = p + 1 ⇒ RF (after write-back).
        rf.begin_cycle(6);
        assert!(rf.try_writeback(r, 6, &NullWindow));
        assert_eq!(rf.plan_read(&[r], 6).unwrap()[0].path, ReadPath::RegFile);
    }

    #[test]
    fn delayed_writeback_creates_hole_with_single_bypass() {
        let mut rf = SingleBankModel::new(SingleBankConfig::one_cycle(), 4);
        let r = preg(0);
        rf.begin_cycle(0);
        produce(&mut rf, r, 5);
        // Write-back does not happen (port contention); at c = p + 1 the
        // bypass window has passed and the RF copy does not exist yet.
        rf.begin_cycle(6);
        assert_eq!(rf.plan_read(&[r], 6), Err(PlanError::NotReady));
    }

    #[test]
    fn read_ports_are_enforced_per_cycle() {
        let cfg = SingleBankConfig::one_cycle().with_ports(PortLimits::limited(2, 8));
        let mut rf = SingleBankModel::new(cfg, 8);
        let (a, b, c) = (preg(0), preg(1), preg(2));
        rf.begin_cycle(0);
        for r in [a, b, c] {
            produce(&mut rf, r, 0);
        }
        rf.begin_cycle(1);
        for r in [a, b, c] {
            assert!(rf.try_writeback(r, 1, &NullWindow));
        }
        rf.begin_cycle(2);
        // Two RF reads fit...
        let plan = rf.plan_read(&[a, b], 2).unwrap();
        rf.commit_read(&plan, 2);
        // ...a third does not.
        assert_eq!(rf.plan_read(&[c], 2), Err(PlanError::NoReadPort));
        assert_eq!(rf.stats().read_port_stalls, 1);
        // Next cycle the budget resets.
        rf.begin_cycle(3);
        assert!(rf.plan_read(&[c], 3).is_ok());
    }

    #[test]
    fn bypass_reads_do_not_consume_ports() {
        let cfg = SingleBankConfig::one_cycle().with_ports(PortLimits::limited(0, 8));
        let mut rf = SingleBankModel::new(cfg, 8);
        let r = preg(0);
        rf.begin_cycle(0);
        produce(&mut rf, r, 3);
        rf.begin_cycle(3);
        let plan = rf.plan_read(&[r], 3).unwrap();
        assert_eq!(plan[0].path, ReadPath::Bypass);
        rf.commit_read(&plan, 3);
        assert_eq!(rf.stats().bypass_reads, 1);
    }

    #[test]
    fn write_ports_are_enforced_per_cycle() {
        let cfg = SingleBankConfig::one_cycle().with_ports(PortLimits::limited(8, 1));
        let mut rf = SingleBankModel::new(cfg, 8);
        let (a, b) = (preg(0), preg(1));
        rf.begin_cycle(0);
        produce(&mut rf, a, 0);
        produce(&mut rf, b, 0);
        rf.begin_cycle(1);
        assert!(rf.try_writeback(a, 1, &NullWindow));
        assert!(!rf.try_writeback(b, 1, &NullWindow));
        assert_eq!(rf.stats().write_port_stalls, 1);
        rf.begin_cycle(2);
        assert!(rf.try_writeback(b, 2, &NullWindow));
        assert!(rf.is_written(b));
    }

    #[test]
    fn read_count_statistics_on_free() {
        let mut rf = SingleBankModel::new(SingleBankConfig::one_cycle(), 4);
        let r = preg(0);
        rf.begin_cycle(0);
        produce(&mut rf, r, 0);
        rf.begin_cycle(1);
        assert!(rf.try_writeback(r, 1, &NullWindow));
        let plan = rf.plan_read(&[r], 1).unwrap();
        rf.commit_read(&plan, 1);
        rf.on_free(r);
        assert_eq!(rf.stats().values_read_once, 1);

        // A value produced but never read.
        produce(&mut rf, r, 1);
        rf.begin_cycle(2);
        assert!(rf.try_writeback(r, 2, &NullWindow));
        rf.on_free(r);
        assert_eq!(rf.stats().values_never_read, 1);
    }

    #[test]
    fn squashed_allocation_leaves_no_value_statistics() {
        let mut rf = SingleBankModel::new(SingleBankConfig::one_cycle(), 4);
        let r = preg(0);
        rf.begin_cycle(0);
        rf.on_alloc(r);
        rf.on_free(r); // squashed before producing
        let s = rf.stats();
        assert_eq!(s.values_never_read + s.values_read_once + s.values_read_many, 0);
    }

    #[test]
    fn plan_with_multiple_sources_mixes_paths() {
        let mut rf = SingleBankModel::new(SingleBankConfig::one_cycle(), 4);
        let (a, b) = (preg(0), preg(1));
        rf.begin_cycle(0);
        produce(&mut rf, a, 0);
        produce(&mut rf, b, 1);
        rf.begin_cycle(1);
        assert!(rf.try_writeback(a, 1, &NullWindow));
        let plan = rf.plan_read(&[a, b], 1).unwrap();
        assert_eq!(plan[0].path, ReadPath::RegFile);
        assert_eq!(plan[1].path, ReadPath::Bypass);
    }
}
