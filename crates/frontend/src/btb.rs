//! Branch target buffer: a direct-mapped table of branch targets. A
//! predicted-taken branch whose target misses in the BTB costs one fetch
//! bubble while the target is computed.

/// A direct-mapped branch target buffer.
///
/// # Examples
///
/// ```
/// use rfcache_frontend::Btb;
/// let mut btb = Btb::new(1024);
/// assert_eq!(btb.lookup(0x400), None);
/// btb.update(0x400, 0x1000);
/// assert_eq!(btb.lookup(0x400), Some(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (branch pc, target)
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "BTB needs at least one entry");
        Btb { entries: vec![None; entries.next_power_of_two()], hits: 0, misses: 0 }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Looks up the target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let idx = self.index(pc);
        match self.entries[idx] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or refreshes the target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }

    /// Fraction of lookups that hit, or `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x40), None);
        b.update(0x40, 0x999);
        assert_eq!(b.lookup(0x40), Some(0x999));
        assert_eq!(b.hit_rate(), Some(0.5));
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut b = Btb::new(16);
        let a = 0x40u64;
        let conflict = a + 16 * 4; // same index, different tag
        b.update(a, 1);
        b.update(conflict, 2);
        assert_eq!(b.lookup(a), None);
        assert_eq!(b.lookup(conflict), Some(2));
    }

    #[test]
    fn size_rounds_to_power_of_two() {
        let b = Btb::new(1000);
        assert_eq!(b.entries.len(), 1024);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Btb::new(0);
    }
}
