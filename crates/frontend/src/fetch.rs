//! The fetch engine: consumes a dynamic instruction trace at up to
//! `width` instructions per cycle, stopping at taken branches, paying
//! instruction-cache miss and BTB-bubble penalties, and stalling on
//! mispredicted branches until the back end redirects it.

use crate::btb::Btb;
use crate::gshare::Gshare;
use rfcache_isa::{Cycle, InstSeq, TraceInst};
use rfcache_mem::{CacheConfig, SetAssocCache};
use std::collections::VecDeque;

/// Configuration of the fetch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchConfig {
    /// Maximum instructions fetched per cycle (8 in the paper).
    pub width: usize,
    /// Branch-history bits of the gshare predictor (16 ⇒ 64K entries).
    pub gshare_bits: u32,
    /// BTB entries.
    pub btb_entries: usize,
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig {
            width: 8,
            gshare_bits: 16,
            btb_entries: 4096,
            icache: CacheConfig::spec_icache(),
        }
    }
}

/// One fetched instruction, annotated with prediction information the back
/// end needs for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInst {
    /// The trace instruction.
    pub inst: TraceInst,
    /// Dynamic sequence number (fetch order).
    pub seq: InstSeq,
    /// Whether the branch (if any) was mispredicted; the back end must call
    /// [`FetchUnit::redirect`] when such a branch resolves.
    pub mispredicted: bool,
}

/// Fetch-engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Instructions delivered to decode.
    pub fetched: u64,
    /// Non-empty fetch blocks delivered.
    pub blocks: u64,
    /// Fetch blocks cut short by a taken branch.
    pub taken_breaks: u64,
    /// Instruction-cache misses that stalled fetch.
    pub icache_stalls: u64,
    /// Bubbles charged for predicted-taken branches missing in the BTB.
    pub btb_bubbles: u64,
    /// Branches fetched.
    pub branches: u64,
    /// Branches fetched with a wrong direction prediction.
    pub mispredicted_branches: u64,
}

/// The fetch engine, generic over the trace source.
///
/// # Examples
///
/// ```
/// use rfcache_frontend::{FetchConfig, FetchUnit};
/// use rfcache_isa::{ArchReg, OpClass, TraceInst};
///
/// let trace = (0..32).map(|i| {
///     TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3))
///         .with_pc(0x1000 + i * 4)
/// });
/// let mut fetch = FetchUnit::new(FetchConfig::default(), trace);
/// let block = fetch.fetch_block(0);
/// assert!(block.is_empty()); // cycle 0: cold icache miss stalls fetch
/// let block = fetch.fetch_block(6);
/// assert_eq!(block.len(), 8); // full width once the line is resident
/// ```
#[derive(Debug)]
pub struct FetchUnit<I: Iterator<Item = TraceInst>> {
    trace: std::iter::Peekable<I>,
    predictor: Gshare,
    btb: Btb,
    icache: SetAssocCache,
    config: FetchConfig,
    stall_until: Cycle,
    waiting_for_redirect: bool,
    next_seq: InstSeq,
    stats: FetchStats,
}

impl<I: Iterator<Item = TraceInst>> FetchUnit<I> {
    /// Creates a fetch engine reading from `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `config.width == 0` or any sub-component configuration is
    /// invalid.
    pub fn new(config: FetchConfig, trace: I) -> Self {
        assert!(config.width > 0, "fetch width must be positive");
        FetchUnit {
            trace: trace.peekable(),
            predictor: Gshare::new(config.gshare_bits),
            btb: Btb::new(config.btb_entries),
            icache: SetAssocCache::new(config.icache),
            config,
            stall_until: 0,
            waiting_for_redirect: false,
            next_seq: 0,
            stats: FetchStats::default(),
        }
    }

    /// Fetches the next block of instructions at cycle `now`. Returns an
    /// empty vector while fetch is stalled (icache miss, BTB bubble, or an
    /// unresolved mispredicted branch).
    pub fn fetch_block(&mut self, now: Cycle) -> Vec<FetchedInst> {
        let mut block = Vec::with_capacity(self.config.width);
        self.fetch_block_with(now, |fi| block.push(fi));
        block
    }

    /// Like [`fetch_block`](Self::fetch_block), but appends the fetched
    /// instructions onto `out` — the steady-state path of the cycle loop
    /// allocates nothing.
    pub fn fetch_block_into(&mut self, now: Cycle, out: &mut VecDeque<FetchedInst>) {
        self.fetch_block_with(now, |fi| out.push_back(fi));
    }

    fn fetch_block_with(&mut self, now: Cycle, mut sink: impl FnMut(FetchedInst)) {
        if self.waiting_for_redirect || now < self.stall_until {
            return;
        }
        let line_bytes = self.config.icache.line_bytes;
        let mut current_line: Option<u64> = None;
        let mut fetched_count = 0;

        while fetched_count < self.config.width {
            let Some(next) = self.trace.peek() else { break };
            let line = next.pc / line_bytes;
            if current_line != Some(line) {
                let outcome = self.icache.access(next.pc, false);
                if !outcome.hit {
                    // Line not resident: instructions from it arrive after
                    // the miss completes. Anything already fetched this
                    // cycle is still delivered.
                    self.stats.icache_stalls += 1;
                    self.stall_until = now + outcome.latency;
                    break;
                }
                current_line = Some(line);
            }

            let inst = self.trace.next().expect("peeked instruction exists");
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut fetched = FetchedInst { inst, seq, mispredicted: false };
            if let Some(branch) = inst.branch {
                self.stats.branches += 1;
                let pred = self.predictor.predict_and_update(inst.pc, branch.taken);
                fetched.mispredicted = !pred.correct;
                if pred.predicted && self.btb.lookup(inst.pc).is_none() {
                    // Predicted taken but no target available: one bubble.
                    self.stats.btb_bubbles += 1;
                    self.stall_until = now + 2;
                }
                if branch.taken {
                    self.btb.update(inst.pc, branch.target);
                }
                if fetched.mispredicted {
                    self.stats.mispredicted_branches += 1;
                    self.waiting_for_redirect = true;
                    sink(fetched);
                    fetched_count += 1;
                    break;
                }
                if branch.taken {
                    // Correctly predicted taken branch ends the block
                    // (at most one taken branch per fetch cycle).
                    self.stats.taken_breaks += 1;
                    sink(fetched);
                    fetched_count += 1;
                    break;
                }
            }
            sink(fetched);
            fetched_count += 1;
        }

        if fetched_count > 0 {
            self.stats.fetched += fetched_count as u64;
            self.stats.blocks += 1;
        }
    }

    /// Signals that the pending mispredicted branch resolved at cycle
    /// `now`; fetch resumes on the correct path the following cycle.
    pub fn redirect(&mut self, now: Cycle) {
        self.waiting_for_redirect = false;
        self.stall_until = self.stall_until.max(now + 1);
    }

    /// Whether fetch is stalled waiting for a mispredict resolution.
    pub fn awaiting_redirect(&self) -> bool {
        self.waiting_for_redirect
    }

    /// Whether the trace has been fully consumed.
    pub fn is_exhausted(&mut self) -> bool {
        self.trace.peek().is_none()
    }

    /// Fetch statistics.
    pub fn stats(&self) -> &FetchStats {
        &self.stats
    }

    /// The direction predictor (for misprediction-rate reporting).
    pub fn predictor(&self) -> &Gshare {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_isa::{ArchReg, OpClass};

    fn seq_trace(n: u64, base: u64) -> impl Iterator<Item = TraceInst> {
        (0..n).map(move |i| {
            TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3))
                .with_pc(base + i * 4)
        })
    }

    fn drain<I: Iterator<Item = TraceInst>>(f: &mut FetchUnit<I>, cycles: u64) -> Vec<FetchedInst> {
        let mut all = Vec::new();
        for now in 0..cycles {
            all.extend(f.fetch_block(now));
        }
        all
    }

    #[test]
    fn fetches_full_width_on_hits() {
        let mut f = FetchUnit::new(FetchConfig::default(), seq_trace(64, 0x1000));
        // 64 sequential instructions span 4 icache lines; each cold line
        // costs a 6-cycle stall, so allow generous drain time.
        let all = drain(&mut f, 60);
        assert_eq!(all.len(), 64);
        // Sequence numbers are dense and ordered.
        for (i, fi) in all.iter().enumerate() {
            assert_eq!(fi.seq, i as u64);
        }
    }

    #[test]
    fn icache_miss_stalls_fetch() {
        let mut f = FetchUnit::new(FetchConfig::default(), seq_trace(16, 0x1000));
        assert!(f.fetch_block(0).is_empty()); // cold miss
        assert!(f.fetch_block(3).is_empty()); // still waiting
        let block = f.fetch_block(6);
        assert_eq!(block.len(), 8);
        assert!(f.stats().icache_stalls >= 1);
    }

    #[test]
    fn taken_branch_ends_block() {
        // 3 ALUs then a taken branch, then more ALUs at the target.
        let mut insts: Vec<TraceInst> = (0..3)
            .map(|i| {
                TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3))
                    .with_pc(0x1000 + i * 4)
            })
            .collect();
        insts.push(TraceInst::branch(ArchReg::int(1), true, 0x1000, 0x100c));
        insts.extend((0..4).map(|i| {
            TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3))
                .with_pc(0x1000 + i * 4)
        }));
        let mut f = FetchUnit::new(FetchConfig::default(), insts.into_iter());
        let _ = f.fetch_block(0); // cold miss
        let block = f.fetch_block(6);
        // The branch is fetched; block ends at it (mispredicted, cold
        // predictor predicts not-taken, so fetch also stalls for redirect).
        assert!(block.len() <= 4);
        assert!(block.last().unwrap().inst.op.is_branch());
    }

    #[test]
    fn mispredicted_branch_stalls_until_redirect() {
        let insts = vec![TraceInst::branch(ArchReg::int(1), true, 0x2000, 0x1000)];
        let mut f = FetchUnit::new(FetchConfig::default(), insts.into_iter());
        let _ = f.fetch_block(0);
        let block = f.fetch_block(6);
        assert_eq!(block.len(), 1);
        assert!(block[0].mispredicted);
        assert!(f.awaiting_redirect());
        assert!(f.fetch_block(7).is_empty());
        f.redirect(20);
        assert!(!f.awaiting_redirect());
        assert!(f.fetch_block(20).is_empty()); // resumes the cycle *after*
    }

    #[test]
    fn exhaustion_reported() {
        let mut f = FetchUnit::new(FetchConfig::default(), seq_trace(4, 0));
        assert!(!f.is_exhausted());
        let _ = drain(&mut f, 16);
        assert!(f.is_exhausted());
    }

    #[test]
    fn well_predicted_loop_branch_costs_nothing_after_warmup() {
        // A loop of 7 ALUs + 1 taken branch back to the top; after the BTB
        // and gshare warm up, every iteration fetches in one cycle.
        let mut insts = Vec::new();
        for _ in 0..64 {
            for i in 0..7u64 {
                insts.push(
                    TraceInst::alu(
                        OpClass::IntAlu,
                        ArchReg::int(1),
                        ArchReg::int(2),
                        ArchReg::int(3),
                    )
                    .with_pc(0x1000 + i * 4),
                );
            }
            insts.push(TraceInst::branch(ArchReg::int(1), true, 0x1000, 0x101c));
        }
        let mut f = FetchUnit::new(FetchConfig::default(), insts.into_iter());
        let mut now = 0;
        let mut fetched = 0;
        // Warm up: resolve any mispredicts instantly (generous back end).
        while fetched < 64 * 8 && now < 10_000 {
            let block = f.fetch_block(now);
            if f.awaiting_redirect() {
                f.redirect(now);
            }
            fetched += block.len();
            now += 1;
        }
        assert_eq!(fetched, 64 * 8);
        // Steady state: ≥ 1 block of 8 per ~1 cycle; allow warmup slop.
        assert!(now < 200, "took {now} cycles");
    }
}
