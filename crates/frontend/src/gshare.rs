//! Gshare direction predictor (McFarling): global history XOR branch PC
//! indexing a table of two-bit saturating counters.

/// Outcome of one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub predicted: bool,
    /// Whether the prediction matched the actual outcome.
    pub correct: bool,
}

/// A gshare branch direction predictor.
///
/// The paper uses "Gshare with 64K entries": a 2^16-entry table of two-bit
/// saturating counters indexed by `pc ^ global_history`.
///
/// # Examples
///
/// ```
/// use rfcache_frontend::Gshare;
/// let mut bp = Gshare::new(16);
/// assert_eq!(bp.table_entries(), 1 << 16);
/// bp.predict_and_update(0x40, true);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    table_bits: u32,
    history_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl Gshare {
    /// Global history length used when only a table size is given. Shorter
    /// than the index so that history contexts recur quickly — the usual
    /// gshare design point (the table is indexed by `pc ^ history` with the
    /// history occupying the low bits).
    pub const DEFAULT_HISTORY_BITS: u32 = 8;

    /// Creates a predictor with `2^table_bits` counters and the default
    /// history length (capped at `table_bits`).
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 28.
    pub fn new(table_bits: u32) -> Self {
        Gshare::with_history(table_bits, Self::DEFAULT_HISTORY_BITS.min(table_bits))
    }

    /// Creates a predictor with `2^table_bits` counters and a global
    /// history of `history_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 28, or
    /// `history_bits > table_bits`.
    pub fn with_history(table_bits: u32, history_bits: u32) -> Self {
        assert!((1..=28).contains(&table_bits), "table_bits must be in 1..=28, got {table_bits}");
        assert!(history_bits <= table_bits, "history cannot exceed the index width");
        Gshare {
            // Initialize to weakly-not-taken (01).
            counters: vec![1u8; 1usize << table_bits],
            history: 0,
            table_bits,
            history_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Number of two-bit counters in the table.
    pub fn table_entries(&self) -> usize {
        self.counters.len()
    }

    /// Predicts the branch at `pc`, then updates the counter and global
    /// history with the actual outcome `taken`.
    ///
    /// The trace-driven simulator updates at fetch (rather than commit),
    /// which slightly flatters the predictor on pathological patterns but
    /// matches the usual trace-driven methodology.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> Prediction {
        let table_mask = (1u64 << self.table_bits) - 1;
        let history_mask = (1u64 << self.history_bits) - 1;
        let index = (((pc >> 2) ^ self.history) & table_mask) as usize;
        let counter = &mut self.counters[index];
        let predicted = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & history_mask;
        self.predictions += 1;
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        Prediction { predicted, correct }
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate, or `None` before the first prediction.
    pub fn misprediction_rate(&self) -> Option<f64> {
        (self.predictions > 0).then(|| self.mispredictions as f64 / self.predictions as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_strongly_biased_branch() {
        let mut bp = Gshare::new(12);
        for _ in 0..16 {
            bp.predict_and_update(0x400, true);
        }
        let p = bp.predict_and_update(0x400, true);
        assert!(p.predicted && p.correct);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = Gshare::new(12);
        let mut outcome = false;
        // Train an alternating T/N pattern; global history disambiguates.
        for _ in 0..200 {
            bp.predict_and_update(0x80, outcome);
            outcome = !outcome;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if bp.predict_and_update(0x80, outcome).correct {
                correct += 1;
            }
            outcome = !outcome;
        }
        assert!(correct >= 95, "only {correct}/100 correct on alternating pattern");
    }

    #[test]
    fn random_pattern_mispredicts_about_half() {
        let mut bp = Gshare::new(14);
        // Deterministic pseudo-random outcomes (xorshift).
        let mut x = 0x12345678u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bp.predict_and_update(0x400, x & 1 == 0);
        }
        let rate = bp.misprediction_rate().unwrap();
        assert!((0.35..=0.65).contains(&rate), "rate {rate}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias_much() {
        let mut bp = Gshare::new(16);
        // Train with the same interleaving that evaluation uses, so the
        // global history at each site recurs (gshare keys on pc ^ history).
        for _ in 0..10 {
            for i in 0..64u64 {
                bp.predict_and_update(0x1000 + i * 4, i % 2 == 0);
            }
        }
        let mut correct = 0;
        for i in 0..64u64 {
            if bp.predict_and_update(0x1000 + i * 4, i % 2 == 0).correct {
                correct += 1;
            }
        }
        assert!(correct >= 56, "{correct}/64");
    }

    #[test]
    fn stats_accumulate() {
        let mut bp = Gshare::new(10);
        assert_eq!(bp.misprediction_rate(), None);
        bp.predict_and_update(0, true);
        assert_eq!(bp.predictions(), 1);
    }

    #[test]
    #[should_panic(expected = "table_bits")]
    fn rejects_zero_history() {
        let _ = Gshare::new(0);
    }
}
