//! Branch prediction and instruction fetch for the simulated front end.
//!
//! Models the paper's front end (Table 1): fetch of up to 8 instructions
//! per cycle with at most one taken branch, a gshare predictor with 64K
//! two-bit counters, a branch target buffer, and a 64KB 2-way instruction
//! cache whose misses stall fetch.
//!
//! The simulator is trace-driven, so wrong-path instructions are not
//! executed; instead, fetch stalls from the moment a mispredicted branch is
//! fetched until the back end resolves it and calls
//! [`FetchUnit::redirect`], charging the full misprediction penalty
//! (which grows with the register-file read latency — the central
//! sensitivity studied by the paper).
//!
//! # Examples
//!
//! ```
//! use rfcache_frontend::Gshare;
//!
//! let mut bp = Gshare::new(16);
//! // A strongly biased branch trains once the global history saturates.
//! for _ in 0..32 {
//!     let _ = bp.predict_and_update(0x400, true);
//! }
//! assert!(bp.predict_and_update(0x400, true).predicted);
//! ```

#![warn(missing_docs)]

mod btb;
mod fetch;
mod gshare;

pub use btb::Btb;
pub use fetch::{FetchConfig, FetchStats, FetchUnit, FetchedInst};
pub use gshare::{Gshare, Prediction};
