//! Scenario tests for the fetch engine: interactions between redirects,
//! icache misses, BTB state, and trace boundaries that the unit tests do
//! not cover.

use rfcache_frontend::{FetchConfig, FetchUnit};
use rfcache_isa::{ArchReg, OpClass, TraceInst};

fn alu(pc: u64) -> TraceInst {
    TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3)).with_pc(pc)
}

#[test]
fn back_to_back_mispredicts_each_wait_for_their_redirect() {
    // Two consecutive hard-to-predict branches.
    let trace = vec![
        TraceInst::branch(ArchReg::int(1), true, 0x2000, 0x1000),
        TraceInst::branch(ArchReg::int(1), false, 0x3000, 0x2000),
        alu(0x2004),
    ];
    let mut f = FetchUnit::new(FetchConfig::default(), trace.into_iter());
    let mut fetched = Vec::new();
    let mut now = 0;
    while fetched.len() < 3 && now < 100 {
        let block = f.fetch_block(now);
        let redirect = f.awaiting_redirect() && !block.is_empty();
        fetched.extend(block);
        if redirect {
            // Resolve after a fixed 5-cycle latency.
            f.redirect(now + 5);
        }
        now += 1;
    }
    assert_eq!(fetched.len(), 3, "all instructions eventually fetched");
    // The first branch was mispredicted by the cold predictor.
    assert!(fetched[0].mispredicted);
}

#[test]
fn redirect_during_icache_stall_respects_both_delays() {
    let trace = vec![TraceInst::branch(ArchReg::int(1), true, 0x9000, 0x1000), alu(0x9000)];
    let mut f = FetchUnit::new(FetchConfig::default(), trace.into_iter());
    // Cold miss at cycle 0; branch fetched once the line arrives.
    assert!(f.fetch_block(0).is_empty());
    let block = f.fetch_block(6);
    assert_eq!(block.len(), 1);
    assert!(f.awaiting_redirect());
    // Resolve immediately: fetch resumes the cycle after, with a fresh
    // cold miss on the target line.
    f.redirect(7);
    assert!(f.fetch_block(8).is_empty(), "target line is cold");
    let block = f.fetch_block(14);
    assert_eq!(block.len(), 1);
    assert_eq!(block[0].inst.pc, 0x9000);
}

#[test]
fn sequence_numbers_are_dense_across_redirects() {
    let mut trace = Vec::new();
    for i in 0..20u64 {
        trace.push(TraceInst::branch(
            ArchReg::int(1),
            i % 2 == 0,
            0x1000 + (i + 1) * 4,
            0x1000 + i * 4,
        ));
    }
    let mut f = FetchUnit::new(FetchConfig::default(), trace.into_iter());
    let mut seqs = Vec::new();
    for now in 0..300 {
        for fi in f.fetch_block(now) {
            seqs.push(fi.seq);
        }
        if f.awaiting_redirect() {
            f.redirect(now);
        }
    }
    assert_eq!(seqs.len(), 20);
    for (i, &s) in seqs.iter().enumerate() {
        assert_eq!(s, i as u64);
    }
}

#[test]
fn stats_totals_are_consistent() {
    let trace: Vec<TraceInst> = (0..200).map(|i| alu(0x1000 + i * 4)).collect();
    let mut f = FetchUnit::new(FetchConfig::default(), trace.into_iter());
    let mut total = 0;
    for now in 0..500 {
        total += f.fetch_block(now).len();
    }
    assert_eq!(total, 200);
    assert_eq!(f.stats().fetched, 200);
    assert!(f.stats().blocks >= 200 / 8);
    assert_eq!(f.stats().branches, 0);
}
