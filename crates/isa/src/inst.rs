//! Dynamic (trace) instruction representation.

use crate::op::OpClass;
use crate::reg::ArchReg;
use std::fmt;

/// Control-flow information attached to a branch instruction in the trace.
///
/// The trace records the *actual* outcome; the simulated front-end predicts
/// it with gshare and pays the misprediction penalty when wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch is actually taken.
    pub taken: bool,
    /// Address of the instruction executed after this branch.
    pub target: u64,
}

/// One dynamic instruction of a workload trace.
///
/// Construct instructions with the typed constructors ([`TraceInst::alu`],
/// [`TraceInst::load`], [`TraceInst::store`], [`TraceInst::branch`]) rather
/// than by filling fields, so that invariants (e.g. stores have no
/// destination) hold by construction.
///
/// # Examples
///
/// ```
/// use rfcache_isa::{ArchReg, OpClass, TraceInst};
///
/// let ld = TraceInst::load(ArchReg::int(4), ArchReg::int(29), 0x1000, 0x4000_0000);
/// assert!(ld.op.is_mem());
/// assert_eq!(ld.mem_addr, Some(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInst {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Instruction class.
    pub op: OpClass,
    /// Destination architectural register, if any.
    pub dst: Option<ArchReg>,
    /// Up to two source architectural registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Branch outcome for branches.
    pub branch: Option<BranchInfo>,
}

impl TraceInst {
    /// Creates a register-register ALU-class instruction
    /// (`dst = src1 op src2`).
    pub fn alu(op: OpClass, dst: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        debug_assert!(!op.is_mem() && !op.is_branch(), "alu() given {op}");
        TraceInst {
            pc: 0,
            op,
            dst: Some(dst),
            srcs: [Some(src1), Some(src2)],
            mem_addr: None,
            branch: None,
        }
    }

    /// Creates a one-source ALU-class instruction (`dst = op src`).
    pub fn alu1(op: OpClass, dst: ArchReg, src: ArchReg) -> Self {
        debug_assert!(!op.is_mem() && !op.is_branch(), "alu1() given {op}");
        TraceInst {
            pc: 0,
            op,
            dst: Some(dst),
            srcs: [Some(src), None],
            mem_addr: None,
            branch: None,
        }
    }

    /// Creates a load: `dst = mem[addr]`, with `base` the address register.
    pub fn load(dst: ArchReg, base: ArchReg, addr: u64, pc: u64) -> Self {
        TraceInst {
            pc,
            op: OpClass::Load,
            dst: Some(dst),
            srcs: [Some(base), None],
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// Creates a store: `mem[addr] = data`, with `base` the address register.
    pub fn store(data: ArchReg, base: ArchReg, addr: u64, pc: u64) -> Self {
        TraceInst {
            pc,
            op: OpClass::Store,
            dst: None,
            srcs: [Some(base), Some(data)],
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// Creates a conditional branch testing `cond`, with actual outcome
    /// `taken` and target `target`.
    pub fn branch(cond: ArchReg, taken: bool, target: u64, pc: u64) -> Self {
        TraceInst {
            pc,
            op: OpClass::Branch,
            dst: None,
            srcs: [Some(cond), None],
            mem_addr: None,
            branch: Some(BranchInfo { taken, target }),
        }
    }

    /// Sets the program counter (builder-style helper for trace generators).
    #[must_use]
    pub fn with_pc(mut self, pc: u64) -> Self {
        self.pc = pc;
        self
    }

    /// Iterator over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Number of present source registers (0..=2).
    pub fn num_sources(&self) -> usize {
        self.srcs.iter().flatten().count()
    }
}

impl fmt::Display for TraceInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for s in self.sources() {
            write!(f, " {s}")?;
        }
        if let Some(a) = self.mem_addr {
            write!(f, " @{a:#x}")?;
        }
        if let Some(b) = self.branch {
            write!(f, " {}->{:#x}", if b.taken { "T" } else { "N" }, b.target)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegClass;

    #[test]
    fn constructors_enforce_shape() {
        let i = TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3));
        assert_eq!(i.num_sources(), 2);
        assert!(i.dst.is_some());

        let s = TraceInst::store(ArchReg::fp(1), ArchReg::int(2), 64, 0x100);
        assert!(s.dst.is_none());
        assert_eq!(s.num_sources(), 2);
        assert_eq!(s.mem_addr, Some(64));

        let b = TraceInst::branch(ArchReg::int(7), true, 0x40, 0x3c);
        assert!(b.branch.unwrap().taken);
        assert_eq!(b.num_sources(), 1);
    }

    #[test]
    fn load_destination_class_follows_register() {
        let fp_load = TraceInst::load(ArchReg::fp(2), ArchReg::int(3), 8, 0);
        assert_eq!(fp_load.dst.unwrap().class(), RegClass::Fp);
    }

    #[test]
    fn with_pc_sets_pc() {
        let i = TraceInst::alu(OpClass::FpAlu, ArchReg::fp(0), ArchReg::fp(1), ArchReg::fp(2))
            .with_pc(0x1234);
        assert_eq!(i.pc, 0x1234);
    }

    #[test]
    fn display_mentions_operands() {
        let i = TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3));
        let s = i.to_string();
        assert!(s.contains("r1"), "{s}");
        assert!(s.contains("int_alu"), "{s}");
    }

    #[test]
    fn sources_iterates_in_order() {
        let s = TraceInst::store(ArchReg::fp(1), ArchReg::int(2), 64, 0);
        let v: Vec<_> = s.sources().collect();
        assert_eq!(v, vec![ArchReg::int(2), ArchReg::fp(1)]);
    }
}
