//! Instruction-set and register primitives shared by every crate in the
//! rfcache workspace.
//!
//! The simulated machine is a RISC-like, register-register ISA matching the
//! one assumed by Cruz et al. (ISCA 2000): 32 integer and 32 floating-point
//! architectural registers, at most two source operands and one destination
//! per instruction, and explicit load/store/branch instruction classes.
//!
//! # Examples
//!
//! ```
//! use rfcache_isa::{ArchReg, OpClass, RegClass, TraceInst};
//!
//! let add = TraceInst::alu(OpClass::IntAlu, ArchReg::int(3), ArchReg::int(1), ArchReg::int(2));
//! assert_eq!(add.dst.unwrap().class(), RegClass::Int);
//! assert_eq!(add.op.exec_latency(), 1);
//! ```

#![warn(missing_docs)]

mod inst;
mod op;
mod reg;

pub use inst::{BranchInfo, TraceInst};
pub use op::{FuKind, OpClass};
pub use reg::{ArchReg, PhysReg, RegClass, ARCH_REGS_PER_CLASS};

/// Simulation time, measured in processor cycles since reset.
pub type Cycle = u64;

/// Sequence number of a dynamic instruction (its position in the trace).
pub type InstSeq = u64;
