//! Instruction classes, functional-unit kinds, and execution latencies.
//!
//! The classes and latencies follow Table 1 of the paper:
//!
//! | Functional units | latency |
//! |---|---|
//! | 6 simple integer | 1 |
//! | 3 integer mult/div | 2 (mult), 14 (div) |
//! | 4 simple FP | 2 |
//! | 2 FP divide | 14 |
//! | 4 load/store | address generation 1 + cache access |

use crate::reg::RegClass;
use std::fmt;

/// Dynamic instruction class. Each class maps to one functional-unit kind
/// and a fixed execution latency (memory operations add cache latency on
/// top of address generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Simple floating-point operation (add/sub/mul/convert).
    FpAlu,
    /// Floating-point divide (or sqrt).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (resolved in a simple-integer unit).
    Branch,
}

impl OpClass {
    /// All instruction classes in a fixed order.
    pub const ALL: [OpClass; 8] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Execution latency in cycles, excluding any cache access for memory
    /// operations (Table 1 of the paper).
    #[inline]
    pub fn exec_latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Branch => 1,
            OpClass::IntMul => 2,
            OpClass::IntDiv => 14,
            OpClass::FpAlu => 2,
            OpClass::FpDiv => 14,
            // Address generation; the data cache adds its own latency.
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// Functional-unit kind required to execute this class.
    #[inline]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::Branch => FuKind::SimpleInt,
            OpClass::IntMul | OpClass::IntDiv => FuKind::IntMulDiv,
            OpClass::FpAlu => FuKind::SimpleFp,
            OpClass::FpDiv => FuKind::FpDiv,
            OpClass::Load | OpClass::Store => FuKind::LoadStore,
        }
    }

    /// Register class of the destination produced by this instruction class
    /// (`None` for stores and branches, which produce no register result).
    #[inline]
    pub fn dst_class(self) -> Option<RegClass> {
        match self {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => Some(RegClass::Int),
            OpClass::FpAlu | OpClass::FpDiv => Some(RegClass::Fp),
            OpClass::Load => None, // decided by the trace (int or fp load)
            OpClass::Store | OpClass::Branch => None,
        }
    }

    /// Whether the class accesses data memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the class is a conditional branch.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::IntDiv => "int_div",
            OpClass::FpAlu => "fp_alu",
            OpClass::FpDiv => "fp_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Functional-unit kinds with their pool sizes from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Simple integer ALU / branch unit.
    SimpleInt,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Simple floating-point unit.
    SimpleFp,
    /// Floating-point divide unit.
    FpDiv,
    /// Load/store (address generation) unit.
    LoadStore,
}

impl FuKind {
    /// All functional-unit kinds in a fixed order.
    pub const ALL: [FuKind; 5] =
        [FuKind::SimpleInt, FuKind::IntMulDiv, FuKind::SimpleFp, FuKind::FpDiv, FuKind::LoadStore];

    /// Dense index of the kind (for per-kind arrays).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            FuKind::SimpleInt => 0,
            FuKind::IntMulDiv => 1,
            FuKind::SimpleFp => 2,
            FuKind::FpDiv => 3,
            FuKind::LoadStore => 4,
        }
    }

    /// Default pool size from Table 1 of the paper.
    #[inline]
    pub fn default_count(self) -> usize {
        match self {
            FuKind::SimpleInt => 6,
            FuKind::IntMulDiv => 3,
            FuKind::SimpleFp => 4,
            FuKind::FpDiv => 2,
            FuKind::LoadStore => 4,
        }
    }

    /// Whether the unit is pipelined (accepts a new operation every cycle).
    /// Divide units are not pipelined, matching implementations of the era.
    #[inline]
    pub fn is_pipelined(self) -> bool {
        !matches!(self, FuKind::FpDiv)
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::SimpleInt => "simple_int",
            FuKind::IntMulDiv => "int_muldiv",
            FuKind::SimpleFp => "simple_fp",
            FuKind::FpDiv => "fp_div",
            FuKind::LoadStore => "load_store",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table1() {
        assert_eq!(OpClass::IntAlu.exec_latency(), 1);
        assert_eq!(OpClass::IntMul.exec_latency(), 2);
        assert_eq!(OpClass::IntDiv.exec_latency(), 14);
        assert_eq!(OpClass::FpAlu.exec_latency(), 2);
        assert_eq!(OpClass::FpDiv.exec_latency(), 14);
        assert_eq!(OpClass::Load.exec_latency(), 1);
    }

    #[test]
    fn fu_pool_sizes_match_table1() {
        assert_eq!(FuKind::SimpleInt.default_count(), 6);
        assert_eq!(FuKind::IntMulDiv.default_count(), 3);
        assert_eq!(FuKind::SimpleFp.default_count(), 4);
        assert_eq!(FuKind::FpDiv.default_count(), 2);
        assert_eq!(FuKind::LoadStore.default_count(), 4);
    }

    #[test]
    fn fu_kind_indices_are_dense() {
        for (i, kind) in FuKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn op_to_fu_mapping() {
        assert_eq!(OpClass::Branch.fu_kind(), FuKind::SimpleInt);
        assert_eq!(OpClass::IntDiv.fu_kind(), FuKind::IntMulDiv);
        assert_eq!(OpClass::Store.fu_kind(), FuKind::LoadStore);
    }

    #[test]
    fn mem_and_branch_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::Branch.is_branch());
        assert!(!OpClass::Load.is_branch());
    }

    #[test]
    fn display_is_nonempty_for_all() {
        for op in OpClass::ALL {
            assert!(!op.to_string().is_empty());
        }
        for fu in FuKind::ALL {
            assert!(!fu.to_string().is_empty());
        }
    }
}
