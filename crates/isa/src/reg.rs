//! Architectural and physical register newtypes.

use std::fmt;

/// Number of architectural registers in each register class (integer and
/// floating point), as in the Alpha-like machine modelled by the paper.
pub const ARCH_REGS_PER_CLASS: u8 = 32;

/// The two register classes of the machine. Integer and floating-point
/// registers live in separate physical register files, each with its own
/// register file architecture instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register class (`r0`..`r31`).
    Int,
    /// Floating-point register class (`f0`..`f31`).
    Fp,
}

impl RegClass {
    /// Both register classes, in a fixed order (useful for per-class loops).
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Dense index of the class (`Int = 0`, `Fp = 1`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural (logical) register: a class plus an index below
/// [`ARCH_REGS_PER_CLASS`].
///
/// # Examples
///
/// ```
/// use rfcache_isa::{ArchReg, RegClass};
/// let r = ArchReg::int(5);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an architectural register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ARCH_REGS_PER_CLASS`.
    #[inline]
    pub fn new(class: RegClass, index: u8) -> Self {
        assert!(index < ARCH_REGS_PER_CLASS, "architectural register index {index} out of range");
        ArchReg { class, index }
    }

    /// Shorthand for an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ARCH_REGS_PER_CLASS`.
    #[inline]
    pub fn int(index: u8) -> Self {
        ArchReg::new(RegClass::Int, index)
    }

    /// Shorthand for a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ARCH_REGS_PER_CLASS`.
    #[inline]
    pub fn fp(index: u8) -> Self {
        ArchReg::new(RegClass::Fp, index)
    }

    /// The register class this register belongs to.
    #[inline]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// Index of the register within its class (0..32).
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.index)
    }

    /// Dense index over both classes (0..64): integer registers first.
    #[inline]
    pub fn flat_index(self) -> usize {
        self.class.index() * usize::from(ARCH_REGS_PER_CLASS) + self.index()
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

/// A physical register name inside one register file (one register class).
///
/// Physical registers are plain dense indices; the register-file model that
/// owns them decides how many exist. The newtype prevents mixing physical
/// and architectural register indices.
///
/// # Examples
///
/// ```
/// use rfcache_isa::PhysReg;
/// let p = PhysReg::new(17);
/// assert_eq!(p.index(), 17);
/// assert_eq!(p.to_string(), "p17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysReg(u16);

impl PhysReg {
    /// Creates a physical register with the given dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        PhysReg(index)
    }

    /// Dense index of the physical register.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw index as stored (`u16`).
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl From<u16> for PhysReg {
    fn from(index: u16) -> Self {
        PhysReg(index)
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_flat_index_is_dense_and_disjoint() {
        let mut seen = std::collections::HashSet::new();
        for class in RegClass::ALL {
            for i in 0..ARCH_REGS_PER_CLASS {
                assert!(seen.insert(ArchReg::new(class, i).flat_index()));
            }
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(seen.iter().max(), Some(&63));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_rejects_out_of_range_index() {
        let _ = ArchReg::int(32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ArchReg::fp(9).to_string(), "f9");
        assert_eq!(RegClass::Fp.to_string(), "fp");
        assert_eq!(PhysReg::new(0).to_string(), "p0");
    }

    #[test]
    fn phys_reg_roundtrip() {
        let p: PhysReg = 123u16.into();
        assert_eq!(p.raw(), 123);
        assert_eq!(p.index(), 123);
    }

    #[test]
    fn reg_class_indices() {
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Fp.index(), 1);
        assert_eq!(RegClass::ALL.len(), 2);
    }
}
