//! Property tests for the ISA primitives.

use proptest::prelude::*;
use rfcache_isa::{ArchReg, FuKind, OpClass, PhysReg, RegClass, TraceInst, ARCH_REGS_PER_CLASS};

fn arb_class() -> impl Strategy<Value = RegClass> {
    prop_oneof![Just(RegClass::Int), Just(RegClass::Fp)]
}

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (arb_class(), 0..ARCH_REGS_PER_CLASS).prop_map(|(c, i)| ArchReg::new(c, i))
}

proptest! {
    /// `flat_index` is a bijection onto 0..64.
    #[test]
    fn flat_index_roundtrips(reg in arb_reg()) {
        let flat = reg.flat_index();
        prop_assert!(flat < 64);
        let back = if flat < 32 {
            ArchReg::new(RegClass::Int, flat as u8)
        } else {
            ArchReg::new(RegClass::Fp, (flat - 32) as u8)
        };
        prop_assert_eq!(back, reg);
    }

    /// Display forms are unique per register.
    #[test]
    fn display_unique(a in arb_reg(), b in arb_reg()) {
        prop_assert_eq!(a == b, a.to_string() == b.to_string());
    }

    /// Physical register indices roundtrip through the newtype.
    #[test]
    fn phys_reg_roundtrip(i in 0u16..u16::MAX) {
        let p = PhysReg::new(i);
        prop_assert_eq!(p.raw(), i);
        prop_assert_eq!(p.index(), i as usize);
        prop_assert_eq!(PhysReg::from(i), p);
    }

    /// Every op class maps to a functional unit with a positive pool size,
    /// and its latency is consistent with the unit's pipelining.
    #[test]
    fn op_to_fu_total(op_idx in 0usize..8) {
        let op = OpClass::ALL[op_idx];
        let fu = op.fu_kind();
        prop_assert!(fu.default_count() > 0);
        prop_assert!(op.exec_latency() >= 1);
        if !fu.is_pipelined() {
            prop_assert!(op.exec_latency() > 2, "only long ops are unpipelined");
        }
    }

    /// Constructors keep the operand-shape invariants the pipeline relies
    /// on: stores never have destinations, branches carry outcomes,
    /// sources iterate without gaps.
    #[test]
    fn constructor_invariants(d in arb_reg(), s1 in arb_reg(), s2 in arb_reg(), addr in 0u64..1 << 30) {
        let store = TraceInst::store(d, s1, addr, 0);
        prop_assert!(store.dst.is_none());
        prop_assert_eq!(store.num_sources(), 2);

        let load = TraceInst::load(d, s1, addr, 0);
        prop_assert_eq!(load.dst, Some(d));
        prop_assert_eq!(load.num_sources(), 1);

        let branch = TraceInst::branch(s2, addr % 2 == 0, addr, 4);
        prop_assert!(branch.branch.is_some());
        prop_assert!(branch.op.is_branch());
        prop_assert_eq!(branch.sources().count(), branch.num_sources());
    }
}

#[test]
fn fu_kinds_cover_all_ops() {
    let mut pools = [false; 5];
    for op in OpClass::ALL {
        pools[op.fu_kind().index()] = true;
    }
    assert!(pools.iter().all(|&p| p), "every FU kind serves some op");
    assert_eq!(FuKind::ALL.len(), 5);
}
