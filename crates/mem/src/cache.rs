//! Generic set-associative cache with per-set LRU replacement and
//! write-back dirty tracking.

use std::fmt;

/// Static configuration of a set-associative cache.
///
/// # Examples
///
/// ```
/// use rfcache_mem::CacheConfig;
/// let c = CacheConfig::spec_dcache();
/// assert_eq!(c.size_bytes(), 64 * 1024);
/// assert_eq!(c.num_sets(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss latency in cycles (clean victim).
    pub miss_latency: u64,
    /// Miss latency in cycles when the victim line is dirty.
    pub dirty_miss_latency: u64,
}

impl CacheConfig {
    /// The paper's instruction cache: 64KB, 2-way, 64-byte lines, 1-cycle
    /// hit, 6-cycle miss.
    pub fn spec_icache() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            miss_latency: 6,
            dirty_miss_latency: 6, // instruction cache lines are never dirty
        }
    }

    /// The paper's data cache: 64KB, 2-way, 64-byte lines, write-back,
    /// 1-cycle hit, 6-cycle miss (8 if the victim is dirty).
    pub fn spec_dcache() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            miss_latency: 6,
            dirty_miss_latency: 8,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of sets (`size / (ways * line)`).
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * self.line_bytes)
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways >= 1, "cache must have at least one way");
        assert!(
            self.num_sets().is_power_of_two() && self.num_sets() >= 1,
            "set count must be a power of two (size {}, ways {}, line {})",
            self.size_bytes,
            self.ways,
            self.line_bytes
        );
        assert!(self.dirty_miss_latency >= self.miss_latency);
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// Access latency in cycles (hit latency or the appropriate miss
    /// latency).
    pub latency: u64,
    /// Whether the access evicted a dirty victim line.
    pub dirty_writeback: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotone counter value of the last touch, for LRU.
    last_use: u64,
}

const INVALID_LINE: Line = Line { tag: 0, valid: false, dirty: false, last_use: 0 };

/// A set-associative, write-back, write-allocate cache model.
///
/// Tracks only tags and dirty bits — the simulator is trace-driven and
/// never needs the data values themselves.
///
/// # Examples
///
/// ```
/// use rfcache_mem::{CacheConfig, SetAssocCache};
/// let mut c = SetAssocCache::new(CacheConfig::spec_icache());
/// assert!(!c.access(0x4000, false).hit);
/// assert!(c.access(0x4000, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>, // num_sets * ways, set-major
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not internally consistent (non
    /// power-of-two geometry, zero ways, or dirty-miss latency below the
    /// clean-miss latency).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let total = (config.num_sets() * u64::from(config.ways)) as usize;
        SetAssocCache { config, lines: vec![INVALID_LINE; total], tick: 0, hits: 0, misses: 0 }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses `addr`; `write` marks the line dirty. Misses allocate the
    /// line (write-allocate), evicting the LRU way.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        let line_addr = addr / self.config.line_bytes;
        let set = (line_addr % self.config.num_sets()) as usize;
        let tag = line_addr / self.config.num_sets();
        let ways = self.config.ways as usize;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.tick;
            line.dirty |= write;
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                latency: self.config.hit_latency,
                dirty_writeback: false,
            };
        }

        // Miss: pick the LRU way (invalid lines have last_use 0 and win).
        self.misses += 1;
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("cache set is never empty");
        let dirty_writeback = victim.valid && victim.dirty;
        *victim = Line { tag, valid: true, dirty: write, last_use: self.tick };
        let latency =
            if dirty_writeback { self.config.dirty_miss_latency } else { self.config.miss_latency };
        AccessOutcome { hit: false, latency, dirty_writeback }
    }

    /// Probes whether `addr` is resident without updating LRU or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = addr / self.config.line_bytes;
        let set = (line_addr % self.config.num_sets()) as usize;
        let tag = line_addr / self.config.num_sets();
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Number of hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses, or `None` before the first access.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        self.lines.fill(INVALID_LINE);
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

impl fmt::Display for SetAssocCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way cache ({} hits / {} misses)",
            self.config.size_bytes / 1024,
            self.config.ways,
            self.hits,
            self.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B: easy to force conflicts.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            miss_latency: 6,
            dirty_miss_latency: 8,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        let first = c.access(0x100, false);
        assert!(!first.hit);
        assert_eq!(first.latency, 6);
        let second = c.access(0x13f, false); // same 64B line (0x100..0x140)
        assert!(second.hit);
        assert_eq!(second.latency, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = small_cache();
        // Three tags mapping to set 0 (set stride = 4 lines = 256B).
        let (a, b, d) = (0x000, 0x100, 0x200);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_costs_more() {
        let mut c = small_cache();
        c.access(0x000, true); // dirty line in set 0
        c.access(0x100, false);
        let out = c.access(0x200, false); // evicts dirty 0x000
        assert!(out.dirty_writeback);
        assert_eq!(out.latency, 8);
    }

    #[test]
    fn clean_eviction_costs_normal_miss() {
        let mut c = small_cache();
        c.access(0x000, false);
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert!(!out.dirty_writeback);
        assert_eq!(out.latency, 6);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = small_cache();
        c.access(0x000, false);
        c.access(0x000, true); // dirty via write hit
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert!(out.dirty_writeback);
    }

    #[test]
    fn contains_does_not_perturb_lru() {
        let mut c = small_cache();
        c.access(0x000, false);
        c.access(0x100, false);
        // Probing `a` must not refresh it.
        assert!(c.contains(0x000));
        c.access(0x200, false); // still evicts 0x000 (the true LRU)
        assert!(!c.contains(0x000));
    }

    #[test]
    fn statistics_and_reset() {
        let mut c = small_cache();
        assert_eq!(c.hit_rate(), None);
        c.access(0x0, false);
        c.access(0x0, false);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), Some(0.5));
        c.reset();
        assert_eq!(c.hits(), 0);
        assert!(!c.contains(0x0));
    }

    #[test]
    fn spec_configs_have_paper_geometry() {
        let i = CacheConfig::spec_icache();
        assert_eq!(i.num_sets(), 512);
        let d = CacheConfig::spec_dcache();
        assert_eq!(d.dirty_miss_latency, 8);
        // Both must construct cleanly.
        let _ = SetAssocCache::new(i);
        let _ = SetAssocCache::new(d);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache();
        for set in 0..4u64 {
            c.access(set * 64, false);
        }
        for set in 0..4u64 {
            assert!(c.contains(set * 64));
        }
    }
}
