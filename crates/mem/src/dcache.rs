//! The data cache with MSHR-limited outstanding misses, as configured in
//! Table 1 of the paper.

use crate::cache::{CacheConfig, SetAssocCache};
use crate::mshr::MshrFile;
use rfcache_isa::Cycle;

/// Timing result of a data-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Total access latency in cycles, from the access cycle until the data
    /// (or write completion) is available.
    pub latency: u64,
    /// Whether the access hit in the cache.
    pub hit: bool,
}

/// Data cache front door used by the load/store units.
///
/// Combines the set-associative array with an MSHR file: a miss that finds
/// all MSHRs busy is delayed until the oldest outstanding miss completes,
/// then pays the full miss latency — modelling the structural stall the
/// paper's "up to 16 outstanding misses" implies.
///
/// # Examples
///
/// ```
/// use rfcache_mem::{CacheConfig, DataCache};
/// let mut dc = DataCache::new(CacheConfig::spec_dcache(), 16);
/// assert_eq!(dc.store(0x40, 5).latency, 6);
/// assert!(dc.load(0x40, 20).hit);
/// ```
#[derive(Debug, Clone)]
pub struct DataCache {
    array: SetAssocCache,
    mshrs: MshrFile,
    line_bytes: u64,
    mshr_stalls: u64,
}

impl DataCache {
    /// Creates a data cache with `mshr_entries` outstanding-miss slots.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `mshr_entries == 0`.
    pub fn new(config: CacheConfig, mshr_entries: usize) -> Self {
        let line_bytes = config.line_bytes;
        DataCache {
            array: SetAssocCache::new(config),
            mshrs: MshrFile::new(mshr_entries),
            line_bytes,
            mshr_stalls: 0,
        }
    }

    /// Performs a load at `addr` issued at cycle `now`.
    pub fn load(&mut self, addr: u64, now: Cycle) -> MemAccess {
        self.access(addr, now, false)
    }

    /// Performs a store at `addr` issued at cycle `now`.
    pub fn store(&mut self, addr: u64, now: Cycle) -> MemAccess {
        self.access(addr, now, true)
    }

    fn access(&mut self, addr: u64, now: Cycle, write: bool) -> MemAccess {
        self.mshrs.retire_completed(now);
        let out = self.array.access(addr, write);
        if out.hit {
            return MemAccess { latency: out.latency, hit: true };
        }
        let line = addr / self.line_bytes;
        let done = now + out.latency;
        match self.mshrs.allocate(line, done) {
            Some(actual_done) => {
                MemAccess { latency: actual_done.saturating_sub(now).max(1), hit: false }
            }
            None => {
                // All MSHRs busy: the access retries after one drains. We
                // approximate the retry delay with one full miss latency on
                // top, which matches the bandwidth limit the MSHR count is
                // meant to impose without tracking per-entry wakeup lists.
                self.mshr_stalls += 1;
                MemAccess { latency: out.latency * 2, hit: false }
            }
        }
    }

    /// Hit rate so far, or `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        self.array.hit_rate()
    }

    /// Number of accesses that found every MSHR busy.
    pub fn mshr_stalls(&self) -> u64 {
        self.mshr_stalls
    }

    /// Underlying cache array (for statistics).
    pub fn array(&self) -> &SetAssocCache {
        &self.array
    }

    /// Invalidates the array and clears all statistics.
    pub fn reset(&mut self) {
        let capacity = self.mshrs.capacity();
        self.array.reset();
        self.mshrs = MshrFile::new(capacity);
        self.mshr_stalls = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc() -> DataCache {
        DataCache::new(CacheConfig::spec_dcache(), 2)
    }

    #[test]
    fn hit_is_one_cycle() {
        let mut d = dc();
        d.load(0x100, 0);
        assert_eq!(d.load(0x100, 10), MemAccess { latency: 1, hit: true });
    }

    #[test]
    fn miss_is_six_cycles() {
        let mut d = dc();
        assert_eq!(d.load(0x100, 0), MemAccess { latency: 6, hit: false });
    }

    #[test]
    fn miss_to_outstanding_line_merges() {
        let mut d = dc();
        d.load(0x100, 0); // completes at 6

        // A second access to the same line at cycle 3 — still a miss in the
        // array? No: write-allocate installed the line immediately, so it
        // hits. Force a different word of a different line to check merging
        // via MSHR pressure instead.
        let m1 = d.load(0x1000, 3); // occupies 2nd MSHR
        assert!(!m1.hit);
    }

    #[test]
    fn mshr_exhaustion_doubles_latency() {
        let mut d = dc();
        d.load(0x1000, 0);
        d.load(0x2000, 0);
        let stalled = d.load(0x3000, 0);
        assert_eq!(stalled.latency, 12);
        assert_eq!(d.mshr_stalls(), 1);
        // After the outstanding misses drain, normal latency resumes.
        let ok = d.load(0x4000, 7);
        assert_eq!(ok.latency, 6);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut d = dc();
        d.load(0x100, 0);
        d.reset();
        assert_eq!(d.hit_rate(), None);
        assert!(!d.load(0x100, 0).hit);
    }
}
