//! Cache and memory-hierarchy timing models.
//!
//! Implements the memory substrate of the simulated machine (Table 1 of the
//! paper): 64KB 2-way set-associative instruction and data caches with
//! 64-byte lines, 1-cycle hits, 6-cycle misses (8 cycles when a dirty line
//! must be written back), and up to 16 outstanding data misses (MSHRs).
//!
//! # Examples
//!
//! ```
//! use rfcache_mem::{CacheConfig, DataCache};
//!
//! let mut dc = DataCache::new(CacheConfig::spec_dcache(), 16);
//! let miss = dc.load(0x1000, 0);
//! assert_eq!(miss.latency, 6);
//! let hit = dc.load(0x1008, 10); // same line, now resident
//! assert_eq!(hit.latency, 1);
//! ```

#![warn(missing_docs)]

mod cache;
mod dcache;
mod mshr;

pub use cache::{AccessOutcome, CacheConfig, SetAssocCache};
pub use dcache::{DataCache, MemAccess};
pub use mshr::MshrFile;
