//! Miss status holding registers: bound the number of outstanding cache
//! misses (16 in the paper's data cache).

use rfcache_isa::Cycle;

/// A file of miss status holding registers.
///
/// Each in-flight miss occupies one entry until its fill completes; misses
/// to a line that already has an entry merge into it (and complete at the
/// same time). When all entries are busy, new misses must stall.
///
/// # Examples
///
/// ```
/// use rfcache_mem::MshrFile;
/// let mut mshrs = MshrFile::new(2);
/// assert!(mshrs.allocate(0x40, 10).is_some());
/// assert!(mshrs.allocate(0x80, 12).is_some());
/// assert!(mshrs.allocate(0xc0, 12).is_none()); // full
/// mshrs.retire_completed(11);
/// assert!(mshrs.allocate(0xc0, 12).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// (line address, cycle at which the fill completes)
    entries: Vec<(u64, Cycle)>,
    peak_occupancy: usize,
    merged: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile { capacity, entries: Vec::with_capacity(capacity), peak_occupancy: 0, merged: 0 }
    }

    /// Attempts to track a miss on `line_addr` completing at `done`.
    ///
    /// Returns the cycle at which the miss data arrives: the existing
    /// entry's completion time when merged, otherwise `done`. Returns
    /// `None` when the file is full (the access must retry later).
    pub fn allocate(&mut self, line_addr: u64, done: Cycle) -> Option<Cycle> {
        if let Some(&(_, existing_done)) = self.entries.iter().find(|(a, _)| *a == line_addr) {
            self.merged += 1;
            return Some(existing_done);
        }
        if self.entries.len() == self.capacity {
            return None;
        }
        self.entries.push((line_addr, done));
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        Some(done)
    }

    /// Releases every entry whose fill has completed by `now`.
    pub fn retire_completed(&mut self, now: Cycle) {
        self.entries.retain(|&(_, done)| done > now);
    }

    /// Capacity of the file in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently outstanding misses.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether no new (non-mergeable) miss can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Highest occupancy observed since construction.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of misses merged into existing entries.
    pub fn merged(&self) -> u64 {
        self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_same_line() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.allocate(0x40, 10), Some(10));
        // Second miss on the same line merges and inherits the first
        // fill's completion time.
        assert_eq!(m.allocate(0x40, 99), Some(10));
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.merged(), 1);
    }

    #[test]
    fn full_file_rejects_new_lines_but_still_merges() {
        let mut m = MshrFile::new(1);
        m.allocate(0x40, 10);
        assert!(m.is_full());
        assert_eq!(m.allocate(0x80, 10), None);
        assert_eq!(m.allocate(0x40, 10), Some(10)); // merge still works
    }

    #[test]
    fn retire_respects_completion_times() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 10);
        m.allocate(0x80, 20);
        m.retire_completed(10);
        assert_eq!(m.occupancy(), 1); // 0x40 done exactly at 10 → released
        m.retire_completed(19);
        assert_eq!(m.occupancy(), 1);
        m.retire_completed(20);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 5);
        m.allocate(0x80, 5);
        m.retire_completed(5);
        m.allocate(0xc0, 9);
        assert_eq!(m.peak_occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
