//! Integration tests for the memory hierarchy: MSHR/dcache interactions
//! and geometry edge cases beyond the unit tests.

use rfcache_mem::{CacheConfig, DataCache, MshrFile, SetAssocCache};

#[test]
fn mshr_merging_returns_the_first_miss_completion_time() {
    let mut dc = DataCache::new(CacheConfig::spec_dcache(), 16);
    // Two accesses to different words in the same (missing) line, in the
    // same cycle window: second must not pay a fresh full miss.
    let a = dc.load(0x1000, 0);
    assert_eq!(a.latency, 6);
    // The line was installed by write-allocate, so this one hits.
    let b = dc.load(0x1020, 2);
    assert!(b.hit);
}

#[test]
fn streaming_through_cache_evicts_cleanly() {
    let mut cache = SetAssocCache::new(CacheConfig::spec_dcache());
    // Stream 4x the cache size; every line is touched once.
    for addr in (0..(256 * 1024)).step_by(64) {
        cache.access(addr, false);
    }
    assert_eq!(cache.hits(), 0, "pure streaming never rehits");
    // Second pass: the first 3/4 were evicted by the tail.
    let h_before = cache.hits();
    for addr in (0..(64 * 1024)).step_by(64) {
        cache.access(addr, false);
    }
    assert_eq!(cache.hits(), h_before, "cyclic reuse beyond capacity cannot hit under LRU");
}

#[test]
fn write_back_traffic_only_for_dirty_lines() {
    let mut cache = SetAssocCache::new(CacheConfig {
        size_bytes: 512,
        ways: 2,
        line_bytes: 64,
        hit_latency: 1,
        miss_latency: 6,
        dirty_miss_latency: 8,
    });
    // Fill a set with one clean and one dirty line, then evict both.
    cache.access(0x000, false);
    cache.access(0x100, true);
    let first_evict = cache.access(0x200, false); // evicts clean 0x000
    let second_evict = cache.access(0x300, false); // evicts dirty 0x100
    let lats = [first_evict.latency, second_evict.latency];
    assert!(lats.contains(&6) && lats.contains(&8), "{lats:?}");
}

#[test]
fn dcache_stores_allocate_and_dirty() {
    let mut dc = DataCache::new(CacheConfig::spec_dcache(), 4);
    assert!(!dc.store(0x40, 0).hit);
    assert!(dc.load(0x40, 10).hit, "store allocated the line");
}

#[test]
fn mshr_capacity_one_still_makes_progress() {
    let mut m = MshrFile::new(1);
    for i in 0..100u64 {
        m.retire_completed(i * 10);
        assert!(m.allocate(i * 64, i * 10 + 6).is_some(), "iteration {i}");
    }
    assert_eq!(m.peak_occupancy(), 1);
}

#[test]
fn icache_config_never_produces_dirty_writebacks() {
    let mut cache = SetAssocCache::new(CacheConfig::spec_icache());
    for addr in (0..(128 * 1024)).step_by(64) {
        let out = cache.access(addr, false);
        assert!(!out.dirty_writeback);
        assert!(out.latency <= 6);
    }
}
