//! Pipeline configuration (Table 1 of the paper).

use rfcache_frontend::FetchConfig;
use rfcache_isa::FuKind;
use rfcache_mem::CacheConfig;

/// Static configuration of the out-of-order core.
///
/// [`PipelineConfig::default`] reproduces Table 1 of the paper; Figure 1
/// additionally enlarges the window and reorder buffer to 256 entries
/// (use [`PipelineConfig::with_window`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Front-end configuration (fetch width, gshare, BTB, icache).
    pub fetch: FetchConfig,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Instruction-window (issue queue) entries.
    pub window_size: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Physical registers per register class.
    pub phys_regs: usize,
    /// Functional units per kind (indexed by [`FuKind::index`]).
    pub fu_counts: [usize; 5],
    /// Data-cache geometry and timing.
    pub dcache: CacheConfig,
    /// Outstanding data-cache misses.
    pub mshrs: usize,
    /// Maximum unresolved branches in flight (RAT checkpoints).
    pub max_branches: usize,
    /// Record the Figure 3 register-occupancy distributions (adds a
    /// per-cycle window scan; enable only for that experiment).
    pub occupancy_sampling: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let mut fu_counts = [0; 5];
        for kind in FuKind::ALL {
            fu_counts[kind.index()] = kind.default_count();
        }
        PipelineConfig {
            fetch: FetchConfig::default(),
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            window_size: 128,
            rob_size: 128,
            lsq_size: 64,
            phys_regs: 128,
            fu_counts,
            dcache: CacheConfig::spec_dcache(),
            mshrs: 16,
            max_branches: 48,
            occupancy_sampling: false,
        }
    }
}

impl PipelineConfig {
    /// Returns the configuration with window and reorder buffer resized
    /// (Figure 1 uses 256 to expose register-file pressure).
    #[must_use]
    pub fn with_window(mut self, entries: usize) -> Self {
        self.window_size = entries;
        self.rob_size = entries;
        self
    }

    /// Returns the configuration with a different physical register count
    /// per class (Figure 1 sweeps 48–256).
    #[must_use]
    pub fn with_phys_regs(mut self, regs: usize) -> Self {
        self.phys_regs = regs;
        self
    }

    /// Returns the configuration with occupancy sampling enabled
    /// (Figure 3).
    #[must_use]
    pub fn with_occupancy_sampling(mut self) -> Self {
        self.occupancy_sampling = true;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on the first inconsistency (zero widths, window larger than
    /// the ROB, fewer physical registers than architectural ones).
    pub fn validate(&self) {
        assert!(self.decode_width > 0 && self.issue_width > 0 && self.commit_width > 0);
        assert!(self.window_size > 0 && self.rob_size >= self.window_size);
        assert!(
            self.phys_regs >= usize::from(rfcache_isa::ARCH_REGS_PER_CLASS) + 8,
            "need headroom beyond the {} architectural registers",
            rfcache_isa::ARCH_REGS_PER_CLASS
        );
        assert!(self.lsq_size > 0 && self.max_branches > 0);
        assert!(self.fu_counts.iter().all(|&c| c > 0), "every FU kind needs at least one unit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = PipelineConfig::default();
        c.validate();
        assert_eq!(c.decode_width, 8);
        assert_eq!(c.window_size, 128);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.phys_regs, 128);
        assert_eq!(c.fu_counts, [6, 3, 4, 2, 4]);
        assert_eq!(c.mshrs, 16);
    }

    #[test]
    fn builders() {
        let c = PipelineConfig::default().with_window(256).with_phys_regs(192);
        c.validate();
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.phys_regs, 192);
        assert!(c.with_occupancy_sampling().occupancy_sampling);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn too_few_phys_regs_rejected() {
        PipelineConfig::default().with_phys_regs(32).validate();
    }
}
