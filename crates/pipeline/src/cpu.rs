//! The out-of-order core: per-cycle simulation loop.
//!
//! Stage order within one simulated cycle (all widths 8 by default):
//!
//! 1. `begin_cycle` on the register file models (port budgets reset, bus
//!    transfers advance and land).
//! 2. **Execute events**: loads reach their execute stage and access the
//!    data cache / forward from stores; completions mark results produced,
//!    resolve branches, and trigger misprediction recovery.
//! 3. **Commit**: up to `commit_width` finished instructions retire from
//!    the reorder-buffer head; stores update the data cache; superseded
//!    physical registers are freed.
//! 4. **Write-back**: produced results drain through the register file
//!    write ports, oldest first; the caching policy of the register file
//!    cache runs here.
//! 5. **Issue**: the window is scanned oldest-first; instructions whose
//!    operands are obtainable this cycle (bypass or register file read,
//!    ports permitting) and that win a functional unit are issued. Upper-
//!    bank misses file demand transfers; issues trigger
//!    prefetch-first-pair requests.
//! 6. **Dispatch** (decode/rename) and **fetch** refill the window.
//!
//! A result produced at the end of cycle `p` is written back at `p + 1`
//! and its instruction commits no earlier than `p + 2`, giving the 6-stage
//! pipeline of §4.1.

use crate::config::PipelineConfig;
use crate::fu::FuPool;
use crate::lsq::{Lsq, StoreSearch};
use crate::metrics::SimMetrics;
use crate::rename::RenameUnit;
use crate::rob::{InFlight, Rob, SlotId, Stage};
use crate::wheel::EventWheel;
use rfcache_core::{
    FetchPolicy, PlanError, ReadPlan, RegBitSet, RegFile, RegFileConfig, RegFileModel, SourceRead,
    WindowQuery,
};
use rfcache_frontend::{FetchUnit, FetchedInst};
use rfcache_isa::{Cycle, OpClass, PhysReg, RegClass, TraceInst};
use rfcache_mem::DataCache;
use std::collections::VecDeque;

/// Cycles without a commit after which the simulator declares deadlock
/// (a model-protocol bug, not a workload property).
const WATCHDOG_CYCLES: u64 = 50_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A memory instruction reaches its execute (address) stage.
    ExStart,
    /// An instruction's result is produced (end of execute).
    Complete,
}

/// One class's ready-consumer bitset, answering the caching policy's
/// window queries.
struct ClassWindow<'a> {
    set: &'a RegBitSet,
}

impl WindowQuery for ClassWindow<'_> {
    fn has_ready_unissued_consumer(&self, preg: PhysReg) -> bool {
        self.set.contains(preg.raw())
    }
}

/// Sentinel for "no result scheduled yet" in the produced-cycle mirror.
const UNSCHEDULED: Cycle = Cycle::MAX;

/// The simulated processor.
///
/// Construct with a [`PipelineConfig`], a [`RegFileConfig`] (the
/// architecture under study), and a dynamic instruction trace; drive it
/// with [`Cpu::run`].
///
/// The register file model type `R` defaults to the statically
/// dispatched [`RegFile`] enum (what [`Cpu::new`] builds); alternative
/// model carriers — e.g. `Box<dyn RegFileModel>` — plug in through
/// [`Cpu::with_models`].
pub struct Cpu<I: Iterator<Item = TraceInst>, R: RegFileModel = RegFile> {
    config: PipelineConfig,
    now: Cycle,
    fetch: FetchUnit<I>,
    fetch_buffer: VecDeque<FetchedInst>,
    rename: RenameUnit,
    rob: Rob,
    /// Dense per-ROB-slot "dispatched, unissued" flags — the window
    /// membership test. Set at dispatch, cleared at issue and at squash,
    /// so a set bit always means the slot's current occupant is waiting
    /// in the instruction window.
    in_window: Vec<bool>,
    /// Per-ROB-slot copy of the occupant's renamed sources, written at
    /// dispatch and immutable while `in_window` is set. The wakeup logic
    /// reads these without touching the (much larger, scattered) ROB
    /// entries.
    slot_srcs: Vec<[Option<(RegClass, PhysReg)>; 2]>,
    /// Per-ROB-slot copy of the occupant's sequence number (program
    /// order), valid while `in_window` is set.
    slot_seq: Vec<u64>,
    /// Per-class mirror of each physical register's scheduled production
    /// cycle ([`UNSCHEDULED`] when no result is scheduled). Maintained at
    /// the same points the models learn it (`seed_initial`,
    /// `schedule_result`, `on_alloc`), it lets the issue stage reason
    /// about operand readiness without touching model state.
    produced_by: [Vec<Cycle>; 2],
    /// Per-class, per-preg lists of window slots waiting for that
    /// register's result to be scheduled. Filled at dispatch, drained
    /// when `schedule_result` fires; stale entries (squashed or reused
    /// slots) are filtered at drain time.
    waiters: [Vec<Vec<SlotId>>; 2],
    /// Wakeup calendar: slots whose operands are all scheduled, keyed by
    /// the first cycle the operands could possibly be obtainable.
    wake_wheel: EventWheel<SlotId>,
    /// Entries whose operands are all produced (or within bypass reach),
    /// sorted by sequence number — the only entries the issue scan
    /// visits. An entry stays here until it issues (it may be held up by
    /// ports, functional units, or the LSQ) or is squashed.
    eligible: Vec<(u64, SlotId)>,
    /// Dense "already in `eligible`" flags, preventing duplicate wakeups.
    in_eligible: Vec<bool>,
    /// Number of set `in_window` bits (dispatched, unissued entries).
    unissued: usize,
    /// Mirror of the historical window-vector length: the unissued count
    /// as of the last issue pass plus entries dispatched since. The
    /// dispatch window-full stall compares against this, preserving the
    /// one-cycle lag the explicit window vector had.
    win_len: usize,
    /// Entries issued on the most recent issue pass — the ones the old
    /// window vector would still be carrying; squash accounting needs
    /// them to keep `win_len` exact.
    recent_issued: Vec<SlotId>,
    /// Cached `rf[0].read_latency()` (a config constant).
    read_latency: Cycle,
    /// Retired RAT-snapshot buffers, reused by the next branch dispatch
    /// instead of allocating. The boxes are the very allocations handed
    /// to `InFlight::checkpoint` (which stores a `Box`), so keeping them
    /// boxed here is what makes the recycling allocation-free.
    #[allow(clippy::vec_box)]
    checkpoint_pool: Vec<Box<[[PhysReg; 32]; 2]>>,
    lsq: Lsq,
    fus: FuPool,
    dcache: DataCache,
    rf: [R; 2],
    wb_queue: VecDeque<SlotId>,
    events: EventWheel<(EventKind, SlotId)>,
    outstanding_branches: usize,
    metrics: SimMetrics,
    last_commit: Cycle,
    /// Cycle at which counters were last reset (warmup end).
    cycle_offset: Cycle,
    /// Scratch: per-class source registers of the instruction being
    /// planned in `issue` (reused every instruction, never allocated).
    srcs_scratch: [Vec<PhysReg>; 2],
    /// Scratch: write-back survivors, swapped with `wb_queue` per cycle.
    wb_scratch: VecDeque<SlotId>,
    /// Scratch: per-class ready-consumer sets for the write-back stage.
    ready_sets: [RegBitSet; 2],
    /// Scratch: per-class occupancy sample sets (Figure 3).
    occ_value: [RegBitSet; 2],
    occ_ready: [RegBitSet; 2],
    /// Per-entry dispatch tracing (off by default; see
    /// [`Cpu::set_trace`]).
    trace_enabled: bool,
    trace_log: Vec<String>,
    /// Whether any model actually prefetches — if not, the
    /// prefetch-first-pair window scan at issue is skipped entirely
    /// (`request_prefetch` would be a no-op anyway).
    prefetch_active: bool,
}

impl<I: Iterator<Item = TraceInst>> Cpu<I> {
    /// Creates a processor running `trace` with the given register file
    /// architecture, statically dispatched.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig, rf_config: RegFileConfig, trace: I) -> Self {
        let rf = [rf_config.build_model(config.phys_regs), rf_config.build_model(config.phys_regs)];
        Cpu::with_models(config, rf, trace)
    }
}

impl<I: Iterator<Item = TraceInst>, R: RegFileModel> Cpu<I, R> {
    /// Creates a processor from two freshly constructed register file
    /// models (one per register class); the models are seeded with the
    /// initial architectural state here. This is the seam for running
    /// the core against any [`RegFileModel`] carrier — notably
    /// `Box<dyn RegFileModel>` to compare virtual dispatch against the
    /// default enum dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_models(config: PipelineConfig, mut rf: [R; 2], trace: I) -> Self {
        config.validate();
        let prefetch_active =
            rf.iter().any(|m| m.fetch_policy() == Some(FetchPolicy::PrefetchFirstPair));
        let rename = RenameUnit::new(config.phys_regs);
        // The initial architectural state: logical register i lives in
        // physical register i, produced before the program starts.
        let mut produced_by =
            [vec![UNSCHEDULED; config.phys_regs], vec![UNSCHEDULED; config.phys_regs]];
        for class in RegClass::ALL {
            for preg in rename.mapped(class) {
                rf[class.index()].seed_initial(preg);
                produced_by[class.index()][preg.index()] = 0;
            }
        }
        let read_latency = rf[0].read_latency();
        Cpu {
            fetch: FetchUnit::new(config.fetch, trace),
            fetch_buffer: VecDeque::with_capacity(2 * config.fetch.width),
            rename,
            rob: Rob::new(config.rob_size),
            in_window: vec![false; config.rob_size],
            slot_srcs: vec![[None, None]; config.rob_size],
            slot_seq: vec![0; config.rob_size],
            produced_by,
            waiters: [vec![Vec::new(); config.phys_regs], vec![Vec::new(); config.phys_regs]],
            wake_wheel: EventWheel::new(),
            eligible: Vec::with_capacity(config.window_size),
            in_eligible: vec![false; config.rob_size],
            unissued: 0,
            win_len: 0,
            recent_issued: Vec::with_capacity(config.issue_width),
            read_latency,
            checkpoint_pool: Vec::new(),
            lsq: Lsq::new(config.lsq_size),
            fus: FuPool::new(config.fu_counts),
            dcache: DataCache::new(config.dcache, config.mshrs),
            rf,
            wb_queue: VecDeque::new(),
            events: EventWheel::new(),
            outstanding_branches: 0,
            metrics: SimMetrics::default(),
            last_commit: 0,
            cycle_offset: 0,
            now: 0,
            srcs_scratch: [Vec::with_capacity(4), Vec::with_capacity(4)],
            wb_scratch: VecDeque::new(),
            ready_sets: [RegBitSet::new(config.phys_regs), RegBitSet::new(config.phys_regs)],
            occ_value: [RegBitSet::new(config.phys_regs), RegBitSet::new(config.phys_regs)],
            occ_ready: [RegBitSet::new(config.phys_regs), RegBitSet::new(config.phys_regs)],
            trace_enabled: false,
            trace_log: Vec::new(),
            prefetch_active,
            config,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Resets the run counters (IPC, stall, and occupancy statistics)
    /// while keeping all microarchitectural state — predictor, caches,
    /// upper-bank contents, in-flight instructions. Call after a warmup
    /// run to measure steady-state behaviour, mirroring the paper's
    /// "skipping the initialization part".
    pub fn reset_metrics(&mut self) {
        self.metrics = SimMetrics::default();
        self.cycle_offset = self.now;
        self.last_commit = self.now;
    }

    /// Runs until `insts` instructions have committed (or the trace ends),
    /// returning the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (no commit for 50k cycles) — this
    /// indicates a model bug, never a workload property.
    pub fn run(&mut self, insts: u64) -> SimMetrics {
        while self.metrics.committed < insts {
            self.step();
            if self.fetch_done() && self.rob.is_empty() && self.fetch_buffer.is_empty() {
                break;
            }
            assert!(
                self.now - self.last_commit < WATCHDOG_CYCLES,
                "deadlock at cycle {}: {} committed\n{}",
                self.now,
                self.metrics.committed,
                self.debug_head_state(),
            );
        }
        let mut m = self.metrics.clone();
        m.cycles = self.now - self.cycle_offset;
        m.rf_int = self.rf[0].stats().clone();
        m.rf_fp = self.rf[1].stats().clone();
        m.fetch = *self.fetch.stats();
        m.dcache_hit_rate = self.dcache.hit_rate();
        m
    }

    fn fetch_done(&mut self) -> bool {
        self.fetch.is_exhausted()
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.rf[0].begin_cycle(now);
        self.rf[1].begin_cycle(now);
        self.process_events(now);
        self.commit(now);
        self.writeback(now);
        self.issue(now);
        self.dispatch(now);
        self.do_fetch(now);
        if self.config.occupancy_sampling {
            self.sample_occupancy(now);
        }
        self.now += 1;
    }

    // ----- execute events ---------------------------------------------

    fn process_events(&mut self, now: Cycle) {
        let Some(list) = self.events.take(now) else { return };
        // Memory execute stages first, then completions, preserving order
        // within each kind.
        for &(kind, slot) in list.iter().filter(|(k, _)| *k == EventKind::ExStart) {
            debug_assert_eq!(kind, EventKind::ExStart);
            self.mem_ex_start(slot, now);
        }
        for &(kind, slot) in list.iter().filter(|(k, _)| *k == EventKind::Complete) {
            debug_assert_eq!(kind, EventKind::Complete);
            self.complete(slot, now);
        }
        self.events.recycle(now, list);
    }

    fn schedule(&mut self, cycle: Cycle, kind: EventKind, slot: SlotId) {
        self.events.schedule(self.now, cycle, (kind, slot));
    }

    // ----- operand wakeup ------------------------------------------------

    /// Records that `preg`'s result is scheduled for cycle `done` and
    /// wakes every window entry that was waiting on it. Must be called
    /// wherever a model learns the same fact via `schedule_result`.
    fn note_scheduled(&mut self, class: RegClass, preg: PhysReg, done: Cycle, now: Cycle) {
        self.produced_by[class.index()][preg.index()] = done;
        let mut list = std::mem::take(&mut self.waiters[class.index()][preg.index()]);
        for slot in list.drain(..) {
            self.try_wake(slot, now);
        }
        // Hand the drained buffer back so the list stays allocation-free.
        self.waiters[class.index()][preg.index()] = list;
    }

    /// If `slot` is a live window entry whose sources are all scheduled,
    /// queues it for the issue scan: immediately when the operands could
    /// already be obtainable, else on the wakeup calendar. Stale handles
    /// (squashed or reused slots) fall out of the liveness checks.
    fn try_wake(&mut self, slot: SlotId, now: Cycle) {
        let idx = slot.index as usize;
        if !self.in_window[idx] || self.in_eligible[idx] || self.rob.get(slot).is_none() {
            return;
        }
        let mut latest: Cycle = 0;
        for &(class, preg) in self.slot_srcs[idx].iter().flatten() {
            let done = self.produced_by[class.index()][preg.index()];
            if done == UNSCHEDULED {
                // Still waiting on another source; its wakeup re-runs
                // this check.
                return;
            }
            latest = latest.max(done);
        }
        // The earliest cycle the ready test can pass: `done <= c +
        // read_latency - 1`, i.e. `c >= done - (read_latency - 1)`.
        let ready_at = (latest + 1).saturating_sub(self.read_latency);
        if ready_at <= now {
            self.insert_eligible(slot);
        } else {
            self.wake_wheel.schedule(now, ready_at, slot);
        }
    }

    /// Inserts `slot` into the eligible list at its program-order
    /// position.
    fn insert_eligible(&mut self, slot: SlotId) {
        let idx = slot.index as usize;
        let seq = self.slot_seq[idx];
        let pos = self.eligible.partition_point(|&(s, _)| s < seq);
        self.eligible.insert(pos, (seq, slot));
        self.in_eligible[idx] = true;
    }

    fn mem_ex_start(&mut self, slot: SlotId, now: Cycle) {
        let Some(entry) = self.rob.get(slot) else { return };
        let seq = entry.seq;
        let addr = entry.inst.mem_addr.expect("memory op has an address");
        match entry.inst.op {
            OpClass::Store => {
                // Address and data are ready at the end of this cycle.
                self.lsq.store_address_ready(seq);
                self.complete(slot, now);
            }
            OpClass::Load => {
                let done = match self.lsq.search_older_stores(seq, addr) {
                    StoreSearch::Forward => now + 1,
                    StoreSearch::MustWait => {
                        // Retry next cycle; the producing store completes soon.
                        self.schedule(now + 1, EventKind::ExStart, slot);
                        return;
                    }
                    StoreSearch::NoConflict => {
                        let access = self.dcache.load(addr, now);
                        now + access.latency
                    }
                };
                if let Some((class, preg)) = self.rob.get(slot).and_then(|e| e.dst) {
                    self.rf[class.index()].schedule_result(preg, done);
                    self.note_scheduled(class, preg, done, now);
                }
                self.schedule(done, EventKind::Complete, slot);
            }
            other => unreachable!("non-memory op {other} in mem_ex_start"),
        }
    }

    fn complete(&mut self, slot: SlotId, now: Cycle) {
        let Some(entry) = self.rob.get_mut(slot) else { return };
        if entry.stage >= Stage::Completed {
            return;
        }
        entry.stage = Stage::Completed;
        entry.complete_cycle = Some(now);
        let seq = entry.seq;
        let is_store = entry.inst.op == OpClass::Store;
        let is_branch = entry.inst.op.is_branch();
        let mispredicted = entry.mispredicted;
        let has_dst = entry.dst.is_some();

        if has_dst {
            self.wb_queue.push_back(slot);
        } else {
            // Nothing to write back: the write-back stage is a no-op cycle.
            self.rob.get_mut(slot).expect("checked above").writeback_cycle = Some(now);
        }
        if is_store {
            self.lsq.store_data_ready(seq);
        }
        if is_branch && mispredicted {
            self.recover(slot, now);
        }
    }

    // ----- misprediction recovery --------------------------------------

    fn recover(&mut self, branch: SlotId, now: Cycle) {
        let entry = self.rob.get_mut(branch).expect("resolving branch is alive");
        let seq = entry.seq;
        let checkpoint = entry.checkpoint.take().expect("branches carry checkpoints");
        self.rename.restore(&checkpoint);
        self.checkpoint_pool.push(checkpoint);

        let squashed = self.rob.squash_younger(seq);
        for (slot, mut e) in squashed {
            if let Some(cp) = e.checkpoint.take() {
                self.checkpoint_pool.push(cp);
            }
            if let Some((class, preg)) = e.dst {
                self.rf[class.index()].on_free(preg);
                self.rename.release(class, preg);
            }
            if e.inst.op.is_branch() {
                self.outstanding_branches -= 1;
            }
            if e.stage == Stage::Dispatched {
                // The squashed entry was waiting in the window: vacate
                // its membership bit and both length counters.
                let idx = slot.index as usize;
                debug_assert!(self.in_window[idx]);
                self.in_window[idx] = false;
                self.unissued -= 1;
                self.win_len -= 1;
            }
            self.metrics.squashed += 1;
        }
        self.lsq.squash_younger(seq);
        // Entries issued on the last issue pass were still occupying
        // window slots; squashed ones vacate `win_len` too.
        let rob = &self.rob;
        let before = self.recent_issued.len();
        self.recent_issued.retain(|&s| rob.get(s).is_some());
        self.win_len -= before - self.recent_issued.len();
        // Purge squashed entries from the eligible list so a reused slot
        // can re-enter it.
        let in_window = &self.in_window;
        let in_eligible = &mut self.in_eligible;
        self.eligible.retain(|&(_, s)| {
            let keep = in_window[s.index as usize];
            if !keep {
                in_eligible[s.index as usize] = false;
            }
            keep
        });
        self.wb_queue.retain(|&id| rob.get(id).is_some());
        // Stale events are invalidated by the slot generation check.
        self.fetch.redirect(now);
        debug_assert!(
            self.fetch_buffer.is_empty(),
            "fetch stops at mispredicted branches, so no younger instruction was buffered"
        );
    }

    // ----- commit -------------------------------------------------------

    fn commit(&mut self, now: Cycle) {
        let mut committed_this_cycle = 0;
        while committed_this_cycle < self.config.commit_width {
            let Some(head) = self.rob.head() else { break };
            let entry = self.rob.get(head).expect("head is alive");
            let done = match entry.dst {
                Some(_) => entry.stage == Stage::WrittenBack,
                None => entry.stage >= Stage::Completed,
            };
            let settled = entry.writeback_cycle.is_some_and(|w| w < now);
            if !done || !settled {
                break;
            }
            let mut entry = self.rob.pop_head().expect("head exists");
            if let Some(cp) = entry.checkpoint.take() {
                self.checkpoint_pool.push(cp);
            }
            if let Some((class, old)) = entry.old_dst {
                self.rf[class.index()].on_free(old);
                self.rename.release(class, old);
            }
            match entry.inst.op {
                OpClass::Store => {
                    let addr = entry.inst.mem_addr.expect("store has an address");
                    let _ = self.dcache.store(addr, now);
                    self.lsq.remove(entry.seq);
                }
                OpClass::Load => self.lsq.remove(entry.seq),
                OpClass::Branch => {
                    self.outstanding_branches -= 1;
                    self.metrics.branches += 1;
                    if entry.mispredicted {
                        self.metrics.mispredicted += 1;
                    }
                }
                _ => {}
            }
            self.metrics.committed += 1;
            committed_this_cycle += 1;
        }
        if committed_this_cycle == 0 {
            self.metrics.commit_idle_cycles += 1;
        } else {
            self.last_commit = now;
        }
    }

    // ----- write-back ----------------------------------------------------

    /// Collects, per class into `ready_sets`, the registers read by
    /// unissued instructions whose source values are all produced (the
    /// *ready caching* window query, and the data behind Figure 3's
    /// dashed line).
    fn ready_consumer_sets(&mut self, now: Cycle) {
        // Slot order, not program order — the result is a pair of sets,
        // so the iteration order is unobservable. A set `in_window` bit
        // is exactly the old "alive and still `Dispatched`" test.
        for idx in 0..self.in_window.len() {
            if !self.in_window[idx] {
                continue;
            }
            let srcs = &self.slot_srcs[idx];
            let all_ready = srcs
                .iter()
                .flatten()
                .all(|&(class, preg)| self.rf[class.index()].is_produced(preg, now));
            if all_ready {
                for &(class, preg) in srcs.iter().flatten() {
                    self.ready_sets[class.index()].insert(preg.raw());
                }
            }
        }
    }

    fn writeback(&mut self, now: Cycle) {
        // The window scan is only needed by the *ready* caching policy;
        // skip it otherwise (it is the hottest part of the loop). The
        // sets are scratch fields, cleared before each use, so the stage
        // allocates nothing.
        self.ready_sets[0].clear();
        self.ready_sets[1].clear();
        let needs_window = self.rf[0].caching_policy() == Some(rfcache_core::CachingPolicy::Ready);
        if needs_window && !self.wb_queue.is_empty() {
            self.ready_consumer_sets(now);
        }
        let mut blocked = [false; 2];
        let mut remaining = std::mem::take(&mut self.wb_scratch);
        debug_assert!(remaining.is_empty());
        while let Some(slot) = self.wb_queue.pop_front() {
            let Some(entry) = self.rob.get(slot) else { continue };
            // Results written back the cycle after production at the
            // earliest (distinct pipeline stages).
            let produced = entry.complete_cycle.expect("queued results are produced");
            let (class, preg) = entry.dst.expect("write-back queue entries have results");
            let ci = class.index();
            if produced >= now || blocked[ci] {
                remaining.push_back(slot);
                continue;
            }
            let window = ClassWindow { set: &self.ready_sets[ci] };
            if self.rf[ci].try_writeback(preg, now, &window) {
                let entry = self.rob.get_mut(slot).expect("alive");
                entry.stage = Stage::WrittenBack;
                entry.writeback_cycle = Some(now);
            } else {
                blocked[ci] = true;
                remaining.push_back(slot);
            }
        }
        // The drained queue becomes next cycle's scratch; the survivors
        // become the queue.
        std::mem::swap(&mut self.wb_queue, &mut remaining);
        self.wb_scratch = remaining;
    }

    // ----- issue ---------------------------------------------------------

    fn issue(&mut self, now: Cycle) {
        // Snap the window-length mirror: the historical window vector was
        // compacted here, leaving exactly the entries that were unissued
        // at scan start.
        self.win_len = self.unissued;
        self.recent_issued.clear();
        // Pull in entries whose operands become reachable this cycle.
        if let Some(list) = self.wake_wheel.take(now) {
            for &slot in list.iter() {
                let idx = slot.index as usize;
                if self.in_window[idx] && !self.in_eligible[idx] && self.rob.get(slot).is_some() {
                    self.insert_eligible(slot);
                }
            }
            self.wake_wheel.recycle(now, list);
        }
        if self.eligible.is_empty() {
            return;
        }
        let latency = self.read_latency;
        let ex_start = now + latency;
        // No model can make an operand obtainable at `now` unless its
        // result is scheduled to be produced by this cycle (bypass in the
        // baseline admits results up to `read_latency - 1` cycles ahead;
        // every other model requires production at or before `now`). The
        // mirror test below is therefore a necessary condition for
        // `operand_obtainable`; entries enter `eligible` exactly when it
        // first passes, so the scan visits every candidate the historical
        // full-window scan would have acted on, in the same program
        // order. (The re-check guards the rare early wake through a
        // recycled ROB slot.)
        let ready_horizon = ex_start - 1;
        let mut issued = 0;
        let mut keep = 0;
        for ei in 0..self.eligible.len() {
            let (seq_key, slot) = self.eligible[ei];
            let idx = slot.index as usize;
            if !self.in_window[idx] {
                self.in_eligible[idx] = false;
                continue;
            }
            self.eligible[keep] = (seq_key, slot);
            keep += 1;
            if issued >= self.config.issue_width {
                // Issue width exhausted: the rest of the pass only
                // compacts.
                continue;
            }

            // An eligible entry's operands stay scheduled: a source preg
            // cannot be reallocated (which would reset the mirror) until
            // its consumer commits, and issue precedes commit; squashes
            // purge the eligible list in `recover`. So readiness, once
            // reached, is permanent.
            debug_assert!(
                !self.slot_srcs[idx]
                    .iter()
                    .flatten()
                    .any(|&(class, preg)| self.produced_by[class.index()][preg.index()]
                        > ready_horizon),
                "eligible entry regressed to waiting"
            );

            let entry = self.rob.get(slot).expect("in-window bit implies a live entry");
            let seq = entry.seq;
            let op = entry.inst.op;

            // Loads wait until all prior store addresses are known.
            if op == OpClass::Load && !self.lsq.prior_store_addresses_known(seq) {
                continue;
            }

            // No obtainability pre-check: `plan_read` classifies each
            // operand itself and its not-ready path touches no model
            // state, so planning directly avoids classifying twice.
            // Split sources by register class into the reused scratch
            // buffers.
            self.srcs_scratch[0].clear();
            self.srcs_scratch[1].clear();
            for &(class, preg) in self.slot_srcs[idx].iter().flatten() {
                self.srcs_scratch[class.index()].push(preg);
            }
            let dst = entry.dst;

            // Classes with no sources skip the model call entirely: every
            // model's `plan_read` is a no-op returning an empty plan for
            // an empty source list.
            let plan_int = if self.srcs_scratch[0].is_empty() {
                Ok(ReadPlan::new())
            } else {
                self.rf[0].plan_read(&self.srcs_scratch[0], now)
            };
            let plan_fp = if self.srcs_scratch[1].is_empty() {
                Ok(ReadPlan::new())
            } else {
                self.rf[1].plan_read(&self.srcs_scratch[1], now)
            };
            let (plan_int, plan_fp) = match (plan_int, plan_fp) {
                (Ok(a), Ok(b)) => (a, b),
                (a, b) => {
                    self.file_demand_requests(a, b, now);
                    continue;
                }
            };

            // Functional unit for the execute stage.
            if !self.fus.reserve(op.fu_kind(), ex_start, op.exec_latency()) {
                continue;
            }

            self.commit_reads(&plan_int, &plan_fp, now);
            let entry = self.rob.get_mut(slot).expect("alive");
            entry.stage = Stage::Issued;
            entry.issue_cycle = Some(now);
            self.in_window[idx] = false;
            self.in_eligible[idx] = false;
            self.unissued -= 1;
            self.recent_issued.push(slot);
            keep -= 1;

            // The prefetch peek must precede `note_scheduled`, which
            // drains the waiter list it reads. Model state for the
            // prefetched operand is disjoint from the destination's, so
            // the model sees the same requests either way.
            if self.prefetch_active {
                if let Some((class, preg)) = dst {
                    self.prefetch_first_pair(class, preg, now);
                }
            }

            match op {
                OpClass::Load | OpClass::Store => {
                    self.schedule(ex_start, EventKind::ExStart, slot);
                }
                _ => {
                    let done = ex_start + op.exec_latency() - 1;
                    if let Some((class, preg)) = dst {
                        self.rf[class.index()].schedule_result(preg, done);
                        // `done` is at least `ex_start`, so consumers wake
                        // through the calendar, never mid-scan.
                        self.note_scheduled(class, preg, done, now);
                    }
                    self.schedule(done, EventKind::Complete, slot);
                }
            }
            issued += 1;
        }
        self.eligible.truncate(keep);
    }

    fn commit_reads(&mut self, plan_int: &[SourceRead], plan_fp: &[SourceRead], now: Cycle) {
        if !plan_int.is_empty() {
            self.rf[0].commit_read(plan_int, now);
        }
        if !plan_fp.is_empty() {
            self.rf[1].commit_read(plan_fp, now);
        }
    }

    /// Files demand transfer requests for operands that are produced but
    /// absent from the upper bank — only when *no* operand is still
    /// unproduced (the paper's fetch-on-demand condition).
    fn file_demand_requests(
        &mut self,
        int: Result<ReadPlan, PlanError>,
        fp: Result<ReadPlan, PlanError>,
        now: Cycle,
    ) {
        if matches!(int, Err(PlanError::NotReady)) || matches!(fp, Err(PlanError::NotReady)) {
            return;
        }
        for (class, result) in [(0usize, int), (1usize, fp)] {
            if let Err(PlanError::UpperMiss(missing)) = result {
                for &preg in missing.iter() {
                    self.rf[class].request_demand(preg, now);
                }
            }
        }
    }

    /// The prefetch-first-pair heuristic: when an instruction producing
    /// `dst` issues, prefetch the other source operand of the first
    /// instruction in the window that consumes `dst`.
    fn prefetch_first_pair(&mut self, class: RegClass, dst: PhysReg, now: Cycle) {
        // Every live in-window consumer of `dst` sits in its waiter list:
        // `dst` stays unscheduled from allocation until this issue (loads:
        // until execute), so each consumer registered at dispatch — in
        // program order. The first live entry is therefore exactly what
        // the historical program-order window walk found, without touching
        // the ROB. Stale handles (squashed, slot reused) fail the
        // liveness checks and are skipped.
        let first = self.waiters[class.index()][dst.index()]
            .iter()
            .copied()
            .find(|&s| self.in_window[s.index as usize] && self.rob.get(s).is_some());
        let Some(slot) = first else { return };
        let srcs = &self.slot_srcs[slot.index as usize];
        let target = srcs.iter().flatten().find(|&&(c, p)| !(c == class && p == dst)).copied();
        if let Some((oclass, opreg)) = target {
            self.rf[oclass.index()].request_prefetch(opreg, now);
        }
    }

    // ----- dispatch (decode + rename) -------------------------------------

    fn dispatch(&mut self, now: Cycle) {
        for _ in 0..self.config.decode_width {
            let Some(fetched) = self.fetch_buffer.front().copied() else { break };
            let inst = fetched.inst;

            if self.rob.is_full() {
                self.metrics.stall_rob_full += 1;
                break;
            }
            if self.win_len >= self.config.window_size {
                self.metrics.stall_window_full += 1;
                break;
            }
            if inst.op.is_mem() && self.lsq.is_full() {
                self.metrics.stall_lsq_full += 1;
                break;
            }
            if inst.op.is_branch() && self.outstanding_branches >= self.config.max_branches {
                self.metrics.stall_branch_limit += 1;
                break;
            }
            if let Some(dst) = inst.dst {
                if self.rename.free_count(dst.class()) == 0 {
                    self.metrics.stall_no_phys_reg += 1;
                    break;
                }
            }

            self.fetch_buffer.pop_front();
            let slot = self.rob.push(fetched.seq, inst);
            // Rename sources before allocating the destination (an
            // instruction may read the register it overwrites).
            let mut srcs = [None, None];
            for (i, src) in inst.srcs.iter().enumerate() {
                if let Some(arch) = src {
                    srcs[i] = Some((arch.class(), self.rename.lookup(*arch)));
                }
            }
            let mut dst_pair = None;
            let mut old_pair = None;
            if let Some(arch) = inst.dst {
                let alloc = self.rename.allocate(arch).expect("free list checked above");
                dst_pair = Some((arch.class(), alloc.new_preg));
                old_pair = Some((arch.class(), alloc.old_preg));
                self.rf[arch.class().index()].on_alloc(alloc.new_preg);
                self.produced_by[arch.class().index()][alloc.new_preg.index()] = UNSCHEDULED;
            }

            let entry = self.rob.get_mut(slot).expect("just pushed");
            entry.srcs = srcs;
            entry.dst = dst_pair;
            entry.old_dst = old_pair;
            entry.mispredicted = fetched.mispredicted;
            if inst.op.is_branch() {
                entry.checkpoint = Some(self.rename.checkpoint_into(self.checkpoint_pool.pop()));
                self.outstanding_branches += 1;
            }
            if inst.op.is_mem() {
                self.lsq.insert(
                    slot,
                    fetched.seq,
                    inst.op == OpClass::Store,
                    inst.mem_addr.expect("memory op has an address"),
                );
            }
            let idx = slot.index as usize;
            self.slot_srcs[idx] = srcs;
            self.slot_seq[idx] = fetched.seq;
            self.in_window[idx] = true;
            self.unissued += 1;
            self.win_len += 1;
            // Wire up the wakeup: wait on every source whose result is
            // not yet scheduled, or queue for issue directly.
            let mut waiting = false;
            for &(class, preg) in srcs.iter().flatten() {
                if self.produced_by[class.index()][preg.index()] == UNSCHEDULED {
                    self.waiters[class.index()][preg.index()].push(slot);
                    waiting = true;
                }
            }
            if !waiting {
                self.try_wake(slot, now);
            }
            self.trace_dispatch(slot);
        }
    }

    /// Records one dispatched entry in the trace log. The enabled check
    /// comes before any formatting, so release campaigns (trace off) pay
    /// one predictable branch and no string work.
    fn trace_dispatch(&mut self, slot: SlotId) {
        if !self.trace_enabled {
            return;
        }
        let Some(entry) = self.rob.get(slot) else { return };
        let line = format!("cycle {} dispatch {}", self.now, Self::format_rob_entry(entry));
        self.trace_log.push(line);
    }

    /// Enables or disables per-entry dispatch tracing (off by default).
    /// While enabled, every dispatched instruction appends a formatted
    /// line to [`trace_log`](Cpu::trace_log).
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
    }

    /// The dispatch trace collected while tracing was enabled.
    pub fn trace_log(&self) -> &[String] {
        &self.trace_log
    }

    /// Formats one reorder-buffer entry — shared by the dispatch trace
    /// and [`debug_snapshot`](Cpu::debug_snapshot).
    fn format_rob_entry(entry: &InFlight) -> String {
        let dst = entry.dst.map(|(c, p)| format!("{c}:{p}")).unwrap_or_else(|| "-".to_string());
        let srcs: Vec<String> = entry.sources().map(|(c, p)| format!("{c}:{p}")).collect();
        format!(
            "[{:>6}] {:<12} {:<8?} dst {:<8} srcs [{}]{}",
            entry.seq,
            entry.inst.op.to_string(),
            entry.stage,
            dst,
            srcs.join(", "),
            if entry.mispredicted { " MISPREDICTED" } else { "" },
        )
    }

    fn do_fetch(&mut self, now: Cycle) {
        if self.fetch_buffer.len() + self.config.fetch.width <= 2 * self.config.fetch.width {
            self.fetch.fetch_block_into(now, &mut self.fetch_buffer);
        }
    }

    // ----- instrumentation -------------------------------------------------

    /// Figure 3 sampling: count registers whose produced value feeds an
    /// unissued instruction (solid line) and those feeding a fully-ready
    /// unissued instruction (dashed line).
    fn sample_occupancy(&mut self, now: Cycle) {
        for ci in 0..2 {
            self.occ_value[ci].clear();
            self.occ_ready[ci].clear();
        }
        // Slot order; both occupancy measures are sets, so iteration
        // order is unobservable.
        for idx in 0..self.in_window.len() {
            if !self.in_window[idx] {
                continue;
            }
            let mut all_ready = true;
            for &(class, preg) in self.slot_srcs[idx].iter().flatten() {
                if self.rf[class.index()].is_produced(preg, now) {
                    self.occ_value[class.index()].insert(preg.raw());
                } else {
                    all_ready = false;
                }
            }
            if all_ready {
                for &(class, preg) in self.slot_srcs[idx].iter().flatten() {
                    self.occ_ready[class.index()].insert(preg.raw());
                }
            }
        }
        self.metrics.occupancy_value.record(self.occ_value[0].len() + self.occ_value[1].len());
        self.metrics.occupancy_ready.record(self.occ_ready[0].len() + self.occ_ready[1].len());
    }

    /// Renders the reorder-buffer head and its operand states for the
    /// deadlock watchdog's panic message.
    fn debug_head_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let Some(head) = self.rob.head() else { return "ROB empty".into() };
        let Some(entry) = self.rob.get(head) else { return "ROB head stale".into() };
        let _ = writeln!(
            out,
            "head: seq {} {:?} {} (issue {:?}, complete {:?}, wb {:?})",
            entry.seq,
            entry.stage,
            entry.inst.op,
            entry.issue_cycle,
            entry.complete_cycle,
            entry.writeback_cycle
        );
        for (class, preg) in entry.sources() {
            let rf = &self.rf[class.index()];
            let _ = writeln!(
                out,
                "  src {class}:{preg} produced={} written={} obtainable={} {}",
                rf.is_produced(preg, self.now),
                rf.is_written(preg),
                rf.operand_obtainable(preg, self.now),
                rf.debug_operand(preg),
            );
        }
        out
    }

    /// Renders a human-readable snapshot of the machine state: the
    /// reorder buffer contents with stages and renamed operands, queue
    /// occupancies, and free-list levels. Intended for interactive
    /// debugging and teaching; not called on the simulation fast path.
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle {} | ROB {}/{} | window {} | LSQ {} | wb-queue {} | free regs int {} fp {}",
            self.now,
            self.rob.len(),
            self.config.rob_size,
            self.win_len,
            self.lsq.len(),
            self.wb_queue.len(),
            self.rename.free_count(RegClass::Int),
            self.rename.free_count(RegClass::Fp),
        );
        for (_, entry) in self.rob.iter().take(24) {
            let _ = writeln!(out, "  {}", Self::format_rob_entry(entry));
        }
        if self.rob.len() > 24 {
            let _ = writeln!(out, "  ... {} more", self.rob.len() - 24);
        }
        out
    }

    /// Debug invariant: every physical register is either free or mapped/
    /// in flight — no leaks, no double-frees. Cheap enough for tests only.
    #[doc(hidden)]
    pub fn check_register_accounting(&self) {
        for class in RegClass::ALL {
            let free = self.rename.free_count(class);
            let mut live: std::collections::HashSet<u16> =
                self.rename.mapped(class).map(|p| p.raw()).collect();
            for (_, entry) in self.rob.iter() {
                if let Some((c, p)) = entry.dst {
                    if c == class {
                        live.insert(p.raw());
                    }
                }
                if let Some((c, p)) = entry.old_dst {
                    if c == class {
                        live.insert(p.raw());
                    }
                }
            }
            assert!(
                free + live.len() == self.config.phys_regs,
                "{class}: {free} free + {} live != {}",
                live.len(),
                self.config.phys_regs
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_core::{
        CachingPolicy, FetchPolicy, RegFileCacheConfig, ReplicatedBankConfig, SingleBankConfig,
    };
    use rfcache_workload::{BenchProfile, TraceGenerator};

    /// The scenario engine moves whole CPUs across worker threads; a
    /// non-`Send` field sneaking in (e.g. an `Rc` in a model) must fail
    /// here, at compile time, not in the engine.
    #[test]
    fn cpu_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Cpu<TraceGenerator>>();
    }

    fn run_arch(rf: RegFileConfig, bench: &str, insts: u64) -> SimMetrics {
        let profile = BenchProfile::by_name(bench).unwrap();
        let trace = TraceGenerator::new(profile, 1234);
        let mut cpu = Cpu::new(PipelineConfig::default(), rf, trace);
        let m = cpu.run(insts);
        cpu.check_register_accounting();
        m
    }

    fn one_cycle() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::one_cycle())
    }

    fn two_cycle_1byp() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::two_cycle_single_bypass())
    }

    fn two_cycle_full() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::two_cycle_full_bypass())
    }

    fn rfc() -> RegFileConfig {
        RegFileConfig::Cache(RegFileCacheConfig::paper_default())
    }

    #[test]
    fn commits_exactly_the_requested_instructions() {
        let m = run_arch(one_cycle(), "li", 5_000);
        assert!(m.committed >= 5_000);
        assert!(m.committed < 5_000 + 8, "commit width bounds the overshoot");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_arch(one_cycle(), "gcc", 3_000);
        let b = run_arch(one_cycle(), "gcc", 3_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mispredicted, b.mispredicted);
    }

    #[test]
    fn ipc_is_plausible() {
        for bench in ["compress", "mgrid"] {
            let m = run_arch(one_cycle(), bench, 8_000);
            assert!(m.ipc() > 0.5, "{bench}: {}", m.ipc());
            assert!(m.ipc() <= 8.0, "{bench}: {}", m.ipc());
        }
    }

    #[test]
    fn one_cycle_beats_two_cycle_single_bypass() {
        for bench in ["go", "li"] {
            let fast = run_arch(one_cycle(), bench, 8_000);
            let slow = run_arch(two_cycle_1byp(), bench, 8_000);
            assert!(
                fast.ipc() > slow.ipc(),
                "{bench}: 1-cycle {} vs 2-cycle/1-bypass {}",
                fast.ipc(),
                slow.ipc()
            );
        }
    }

    #[test]
    fn full_bypass_beats_single_bypass_at_two_cycles() {
        for bench in ["go", "compress"] {
            let full = run_arch(two_cycle_full(), bench, 8_000);
            let single = run_arch(two_cycle_1byp(), bench, 8_000);
            assert!(
                full.ipc() >= single.ipc(),
                "{bench}: full {} vs single {}",
                full.ipc(),
                single.ipc()
            );
        }
    }

    #[test]
    fn register_file_cache_sits_between_one_and_two_cycle() {
        for bench in ["li", "m88ksim"] {
            let one = run_arch(one_cycle(), bench, 8_000);
            let two = run_arch(two_cycle_1byp(), bench, 8_000);
            let cache = run_arch(rfc(), bench, 8_000);
            assert!(
                cache.ipc() <= one.ipc() * 1.02,
                "{bench}: rfc {} should not beat 1-cycle {}",
                cache.ipc(),
                one.ipc()
            );
            assert!(
                cache.ipc() > two.ipc() * 0.98,
                "{bench}: rfc {} should be at least near 2-cycle {}",
                cache.ipc(),
                two.ipc()
            );
        }
    }

    #[test]
    fn branches_resolve_and_mispredict() {
        // Warm the predictor first (the paper skips initialization too);
        // a cold gshare on 900 static sites mispredicts far above its
        // steady-state rate.
        let profile = BenchProfile::by_name("go").unwrap();
        let trace = TraceGenerator::new(profile, 1234);
        let mut cpu = Cpu::new(PipelineConfig::default(), one_cycle(), trace);
        cpu.run(30_000);
        cpu.reset_metrics();
        let m = cpu.run(15_000);
        assert!(m.branches > 1_000, "go is branchy: {}", m.branches);
        let rate = m.branch_mispredict_rate().unwrap();
        assert!(rate > 0.02, "go must mispredict noticeably: {rate}");
        assert!(rate < 0.35, "rate implausible: {rate}");
        // Trace-driven simulation never fetches past a mispredicted
        // branch, so recovery finds nothing younger to squash; the whole
        // penalty is the fetch stall until resolution.
        assert_eq!(m.squashed, 0);
    }

    #[test]
    fn fp_benchmark_exercises_fp_register_file() {
        let m = run_arch(rfc(), "swim", 8_000);
        assert!(m.rf_fp.writebacks > 1_000, "swim writes fp results: {:?}", m.rf_fp.writebacks);
        assert!(m.rf_int.writebacks > 0);
    }

    #[test]
    fn rfc_uses_transfers_and_caching() {
        let m = run_arch(rfc(), "li", 8_000);
        let rf = m.rf_combined();
        assert!(rf.cached_results > 0, "caching policy must cache some results");
        assert!(rf.policy_skipped > 0, "bypass-consumed values must be skipped");
        assert!(
            rf.demand_transfers + rf.prefetch_transfers > 0,
            "some operands must come from the lower bank"
        );
    }

    #[test]
    fn read_at_most_once_statistic_matches_paper_ballpark() {
        let m = run_arch(one_cycle(), "gcc", 15_000);
        let frac = m.rf_combined().read_at_most_once_fraction().unwrap();
        // The paper reports 88% (int) / 85% (fp); accept a generous band.
        assert!((0.6..=0.99).contains(&frac), "read-at-most-once {frac}");
    }

    #[test]
    fn occupancy_sampling_records_histograms() {
        let profile = BenchProfile::by_name("li").unwrap();
        let trace = TraceGenerator::new(profile, 7);
        let config = PipelineConfig::default().with_occupancy_sampling();
        let mut cpu = Cpu::new(config, one_cycle(), trace);
        let m = cpu.run(4_000);
        assert!(m.occupancy_value.samples() > 100);
        assert_eq!(m.occupancy_value.samples(), m.occupancy_ready.samples());
        // Ready values are a subset of live values.
        assert!(m.occupancy_ready.percentile(0.9) <= m.occupancy_value.percentile(0.9));
    }

    #[test]
    fn replicated_banks_run_and_commit() {
        let m = run_arch(RegFileConfig::Replicated(ReplicatedBankConfig::default()), "perl", 5_000);
        assert!(m.ipc() > 0.5);
    }

    #[test]
    fn ready_caching_policy_runs() {
        let cfg = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand);
        let m = run_arch(RegFileConfig::Cache(cfg), "compress", 6_000);
        assert!(m.ipc() > 0.3);
        assert!(m.rf_combined().cached_results > 0);
    }

    #[test]
    fn smaller_window_does_not_crash_and_reduces_ilp() {
        let profile = BenchProfile::by_name("mgrid").unwrap();
        let big = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_window(128),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        let small = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_window(16),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        assert!(big.ipc() >= small.ipc(), "big {} vs small {}", big.ipc(), small.ipc());
    }

    #[test]
    fn fewer_phys_regs_reduce_ipc() {
        let profile = BenchProfile::by_name("mgrid").unwrap();
        let many = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_phys_regs(128),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        let few = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_phys_regs(48),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        assert!(many.ipc() > few.ipc(), "128 regs {} vs 48 regs {}", many.ipc(), few.ipc());
    }

    #[test]
    fn debug_snapshot_renders_in_flight_state() {
        let profile = BenchProfile::by_name("gcc").unwrap();
        let mut cpu =
            Cpu::new(PipelineConfig::default(), one_cycle(), TraceGenerator::new(profile, 1));
        for _ in 0..50 {
            cpu.step();
        }
        let snap = cpu.debug_snapshot();
        assert!(snap.contains("cycle 50"), "{snap}");
        assert!(snap.contains("ROB"), "{snap}");
        assert!(snap.contains("srcs ["), "{snap}");
    }

    #[test]
    fn dispatch_trace_is_off_by_default_and_captures_when_enabled() {
        let profile = BenchProfile::by_name("gcc").unwrap();
        let mut cpu =
            Cpu::new(PipelineConfig::default(), one_cycle(), TraceGenerator::new(profile, 1));
        cpu.run(500);
        assert!(cpu.trace_log().is_empty(), "tracing must be off by default");
        cpu.set_trace(true);
        cpu.run(600);
        let log = cpu.trace_log();
        assert!(!log.is_empty(), "enabled tracing records dispatches");
        assert!(log[0].starts_with("cycle "), "{}", log[0]);
        assert!(log[0].contains("srcs ["), "{}", log[0]);
        let captured = log.len();
        cpu.set_trace(false);
        cpu.run(700);
        assert_eq!(cpu.trace_log().len(), captured, "disabling stops capture");
    }

    /// The statically dispatched [`RegFile`] enum must be observationally
    /// identical to the boxed trait-object path it replaced — same
    /// cycles, same commits, same register file statistics — for every
    /// model family.
    #[test]
    fn enum_dispatch_matches_boxed_dispatch_for_every_model() {
        let configs = [
            one_cycle(),
            rfc(),
            RegFileConfig::Replicated(ReplicatedBankConfig::default()),
            RegFileConfig::OneLevel(rfcache_core::OneLevelBankedConfig::default()),
        ];
        let profile = BenchProfile::by_name("gcc").unwrap();
        let pipeline = PipelineConfig::default();
        for rf_config in configs {
            let enum_metrics = {
                let mut cpu = Cpu::new(pipeline, rf_config, TraceGenerator::new(profile, 42));
                cpu.run(4_000)
            };
            let boxed_metrics = {
                let models: [Box<dyn RegFileModel>; 2] =
                    [rf_config.build(pipeline.phys_regs), rf_config.build(pipeline.phys_regs)];
                let mut cpu = Cpu::with_models(pipeline, models, TraceGenerator::new(profile, 42));
                cpu.run(4_000)
            };
            assert_eq!(enum_metrics, boxed_metrics, "{rf_config:?}");
        }
    }

    #[test]
    fn port_limited_single_bank_loses_ipc() {
        use rfcache_core::PortLimits;
        let unlimited = run_arch(one_cycle(), "ijpeg", 6_000);
        let limited = run_arch(
            RegFileConfig::Single(
                SingleBankConfig::one_cycle().with_ports(PortLimits::limited(2, 1)),
            ),
            "ijpeg",
            6_000,
        );
        assert!(
            limited.ipc() < unlimited.ipc(),
            "limited {} vs unlimited {}",
            limited.ipc(),
            unlimited.ipc()
        );
    }
}
