//! The out-of-order core: per-cycle simulation loop.
//!
//! Stage order within one simulated cycle (all widths 8 by default):
//!
//! 1. `begin_cycle` on the register file models (port budgets reset, bus
//!    transfers advance and land).
//! 2. **Execute events**: loads reach their execute stage and access the
//!    data cache / forward from stores; completions mark results produced,
//!    resolve branches, and trigger misprediction recovery.
//! 3. **Commit**: up to `commit_width` finished instructions retire from
//!    the reorder-buffer head; stores update the data cache; superseded
//!    physical registers are freed.
//! 4. **Write-back**: produced results drain through the register file
//!    write ports, oldest first; the caching policy of the register file
//!    cache runs here.
//! 5. **Issue**: the window is scanned oldest-first; instructions whose
//!    operands are obtainable this cycle (bypass or register file read,
//!    ports permitting) and that win a functional unit are issued. Upper-
//!    bank misses file demand transfers; issues trigger
//!    prefetch-first-pair requests.
//! 6. **Dispatch** (decode/rename) and **fetch** refill the window.
//!
//! A result produced at the end of cycle `p` is written back at `p + 1`
//! and its instruction commits no earlier than `p + 2`, giving the 6-stage
//! pipeline of §4.1.

use crate::config::PipelineConfig;
use crate::fu::FuPool;
use crate::lsq::{Lsq, StoreSearch};
use crate::metrics::SimMetrics;
use crate::rename::RenameUnit;
use crate::rob::{Rob, SlotId, Stage};
use rfcache_core::{PlanError, RegFileConfig, RegFileModel, SourceRead, WindowQuery};
use rfcache_frontend::{FetchUnit, FetchedInst};
use rfcache_isa::{Cycle, OpClass, PhysReg, RegClass, TraceInst};
use rfcache_mem::DataCache;
use std::collections::{BTreeMap, VecDeque};

/// Cycles without a commit after which the simulator declares deadlock
/// (a model-protocol bug, not a workload property).
const WATCHDOG_CYCLES: u64 = 50_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A memory instruction reaches its execute (address) stage.
    ExStart,
    /// An instruction's result is produced (end of execute).
    Complete,
}

/// Set of physical registers per class, used to answer the caching
/// policy's window queries.
#[derive(Debug, Default)]
struct ReadyConsumerSets {
    sets: [std::collections::HashSet<u16>; 2],
}

struct ClassWindow<'a> {
    set: &'a std::collections::HashSet<u16>,
}

impl WindowQuery for ClassWindow<'_> {
    fn has_ready_unissued_consumer(&self, preg: PhysReg) -> bool {
        self.set.contains(&preg.raw())
    }
}

/// The simulated processor.
///
/// Construct with a [`PipelineConfig`], a [`RegFileConfig`] (the
/// architecture under study), and a dynamic instruction trace; drive it
/// with [`Cpu::run`].
pub struct Cpu<I: Iterator<Item = TraceInst>> {
    config: PipelineConfig,
    now: Cycle,
    fetch: FetchUnit<I>,
    fetch_buffer: VecDeque<FetchedInst>,
    rename: RenameUnit,
    rob: Rob,
    /// Unissued instructions, program order.
    window: Vec<SlotId>,
    lsq: Lsq,
    fus: FuPool,
    dcache: DataCache,
    rf: [Box<dyn RegFileModel>; 2],
    wb_queue: VecDeque<SlotId>,
    events: BTreeMap<Cycle, Vec<(EventKind, SlotId)>>,
    outstanding_branches: usize,
    metrics: SimMetrics,
    last_commit: Cycle,
    /// Cycle at which counters were last reset (warmup end).
    cycle_offset: Cycle,
}

impl<I: Iterator<Item = TraceInst>> Cpu<I> {
    /// Creates a processor running `trace` with the given register file
    /// architecture.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: PipelineConfig, rf_config: RegFileConfig, trace: I) -> Self {
        config.validate();
        let rename = RenameUnit::new(config.phys_regs);
        let mut rf = [rf_config.build(config.phys_regs), rf_config.build(config.phys_regs)];
        // The initial architectural state: logical register i lives in
        // physical register i, produced before the program starts.
        for class in RegClass::ALL {
            for preg in rename.mapped(class) {
                rf[class.index()].seed_initial(preg);
            }
        }
        Cpu {
            fetch: FetchUnit::new(config.fetch, trace),
            fetch_buffer: VecDeque::with_capacity(2 * config.fetch.width),
            rename,
            rob: Rob::new(config.rob_size),
            window: Vec::with_capacity(config.window_size),
            lsq: Lsq::new(config.lsq_size),
            fus: FuPool::new(config.fu_counts),
            dcache: DataCache::new(config.dcache, config.mshrs),
            rf,
            wb_queue: VecDeque::new(),
            events: BTreeMap::new(),
            outstanding_branches: 0,
            metrics: SimMetrics::default(),
            last_commit: 0,
            cycle_offset: 0,
            now: 0,
            config,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Resets the run counters (IPC, stall, and occupancy statistics)
    /// while keeping all microarchitectural state — predictor, caches,
    /// upper-bank contents, in-flight instructions. Call after a warmup
    /// run to measure steady-state behaviour, mirroring the paper's
    /// "skipping the initialization part".
    pub fn reset_metrics(&mut self) {
        self.metrics = SimMetrics::default();
        self.cycle_offset = self.now;
        self.last_commit = self.now;
    }

    /// Runs until `insts` instructions have committed (or the trace ends),
    /// returning the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (no commit for 50k cycles) — this
    /// indicates a model bug, never a workload property.
    pub fn run(&mut self, insts: u64) -> SimMetrics {
        while self.metrics.committed < insts {
            self.step();
            if self.fetch_done() && self.rob.is_empty() && self.fetch_buffer.is_empty() {
                break;
            }
            assert!(
                self.now - self.last_commit < WATCHDOG_CYCLES,
                "deadlock at cycle {}: {} committed\n{}",
                self.now,
                self.metrics.committed,
                self.debug_head_state(),
            );
        }
        let mut m = self.metrics.clone();
        m.cycles = self.now - self.cycle_offset;
        m.rf_int = self.rf[0].stats().clone();
        m.rf_fp = self.rf[1].stats().clone();
        m.fetch = *self.fetch.stats();
        m.dcache_hit_rate = self.dcache.hit_rate();
        m
    }

    fn fetch_done(&mut self) -> bool {
        self.fetch.is_exhausted()
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.rf[0].begin_cycle(now);
        self.rf[1].begin_cycle(now);
        self.process_events(now);
        self.commit(now);
        self.writeback(now);
        self.issue(now);
        self.dispatch(now);
        self.do_fetch(now);
        if self.config.occupancy_sampling {
            self.sample_occupancy(now);
        }
        self.now += 1;
    }

    // ----- execute events ---------------------------------------------

    fn process_events(&mut self, now: Cycle) {
        let Some(list) = self.events.remove(&now) else { return };
        // Memory execute stages first, then completions, preserving order
        // within each kind.
        for &(kind, slot) in list.iter().filter(|(k, _)| *k == EventKind::ExStart) {
            debug_assert_eq!(kind, EventKind::ExStart);
            self.mem_ex_start(slot, now);
        }
        for &(kind, slot) in list.iter().filter(|(k, _)| *k == EventKind::Complete) {
            debug_assert_eq!(kind, EventKind::Complete);
            self.complete(slot, now);
        }
    }

    fn schedule(&mut self, cycle: Cycle, kind: EventKind, slot: SlotId) {
        debug_assert!(cycle > self.now, "events must be scheduled in the future");
        self.events.entry(cycle).or_default().push((kind, slot));
    }

    fn mem_ex_start(&mut self, slot: SlotId, now: Cycle) {
        let Some(entry) = self.rob.get(slot) else { return };
        let seq = entry.seq;
        let addr = entry.inst.mem_addr.expect("memory op has an address");
        match entry.inst.op {
            OpClass::Store => {
                // Address and data are ready at the end of this cycle.
                self.lsq.store_address_ready(seq);
                self.complete(slot, now);
            }
            OpClass::Load => {
                let done = match self.lsq.search_older_stores(seq, addr) {
                    StoreSearch::Forward => now + 1,
                    StoreSearch::MustWait => {
                        // Retry next cycle; the producing store completes soon.
                        self.schedule(now + 1, EventKind::ExStart, slot);
                        return;
                    }
                    StoreSearch::NoConflict => {
                        let access = self.dcache.load(addr, now);
                        now + access.latency
                    }
                };
                if let Some((class, preg)) = self.rob.get(slot).and_then(|e| e.dst) {
                    self.rf[class.index()].schedule_result(preg, done);
                }
                self.schedule(done, EventKind::Complete, slot);
            }
            other => unreachable!("non-memory op {other} in mem_ex_start"),
        }
    }

    fn complete(&mut self, slot: SlotId, now: Cycle) {
        let Some(entry) = self.rob.get_mut(slot) else { return };
        if entry.stage >= Stage::Completed {
            return;
        }
        entry.stage = Stage::Completed;
        entry.complete_cycle = Some(now);
        let seq = entry.seq;
        let is_store = entry.inst.op == OpClass::Store;
        let is_branch = entry.inst.op.is_branch();
        let mispredicted = entry.mispredicted;
        let has_dst = entry.dst.is_some();

        if has_dst {
            self.wb_queue.push_back(slot);
        } else {
            // Nothing to write back: the write-back stage is a no-op cycle.
            self.rob.get_mut(slot).expect("checked above").writeback_cycle = Some(now);
        }
        if is_store {
            self.lsq.store_data_ready(seq);
        }
        if is_branch && mispredicted {
            self.recover(slot, now);
        }
    }

    // ----- misprediction recovery --------------------------------------

    fn recover(&mut self, branch: SlotId, now: Cycle) {
        let entry = self.rob.get_mut(branch).expect("resolving branch is alive");
        let seq = entry.seq;
        let checkpoint = entry.checkpoint.take().expect("branches carry checkpoints");
        self.rename.restore(&checkpoint);

        let squashed = self.rob.squash_younger(seq);
        for e in &squashed {
            if let Some((class, preg)) = e.dst {
                self.rf[class.index()].on_free(preg);
                self.rename.release(class, preg);
            }
            if e.inst.op.is_branch() {
                self.outstanding_branches -= 1;
            }
            self.metrics.squashed += 1;
        }
        self.lsq.squash_younger(seq);
        self.window.retain(|&id| self.rob.get(id).is_some());
        self.wb_queue.retain(|&id| self.rob.get(id).is_some());
        // Stale events are invalidated by the slot generation check.
        self.fetch.redirect(now);
        debug_assert!(
            self.fetch_buffer.is_empty(),
            "fetch stops at mispredicted branches, so no younger instruction was buffered"
        );
    }

    // ----- commit -------------------------------------------------------

    fn commit(&mut self, now: Cycle) {
        let mut committed_this_cycle = 0;
        while committed_this_cycle < self.config.commit_width {
            let Some(head) = self.rob.head() else { break };
            let entry = self.rob.get(head).expect("head is alive");
            let done = match entry.dst {
                Some(_) => entry.stage == Stage::WrittenBack,
                None => entry.stage >= Stage::Completed,
            };
            let settled = entry.writeback_cycle.is_some_and(|w| w < now);
            if !done || !settled {
                break;
            }
            let entry = self.rob.pop_head().expect("head exists");
            if let Some((class, old)) = entry.old_dst {
                self.rf[class.index()].on_free(old);
                self.rename.release(class, old);
            }
            match entry.inst.op {
                OpClass::Store => {
                    let addr = entry.inst.mem_addr.expect("store has an address");
                    let _ = self.dcache.store(addr, now);
                    self.lsq.remove(entry.seq);
                }
                OpClass::Load => self.lsq.remove(entry.seq),
                OpClass::Branch => {
                    self.outstanding_branches -= 1;
                    self.metrics.branches += 1;
                    if entry.mispredicted {
                        self.metrics.mispredicted += 1;
                    }
                }
                _ => {}
            }
            self.metrics.committed += 1;
            committed_this_cycle += 1;
        }
        if committed_this_cycle == 0 {
            self.metrics.commit_idle_cycles += 1;
        } else {
            self.last_commit = now;
        }
    }

    // ----- write-back ----------------------------------------------------

    /// Collects, per class, the registers read by unissued instructions
    /// whose source values are all produced (the *ready caching* window
    /// query, and the data behind Figure 3's dashed line).
    fn ready_consumer_sets(&self, now: Cycle) -> ReadyConsumerSets {
        let mut sets = ReadyConsumerSets::default();
        for &id in &self.window {
            let Some(entry) = self.rob.get(id) else { continue };
            if entry.stage != Stage::Dispatched {
                continue;
            }
            let all_ready =
                entry.sources().all(|(class, preg)| self.rf[class.index()].is_produced(preg, now));
            if all_ready {
                for (class, preg) in entry.sources() {
                    sets.sets[class.index()].insert(preg.raw());
                }
            }
        }
        sets
    }

    fn writeback(&mut self, now: Cycle) {
        // The window scan is only needed by the *ready* caching policy;
        // skip it otherwise (it is the hottest part of the loop).
        let needs_window = self.rf[0].caching_policy() == Some(rfcache_core::CachingPolicy::Ready);
        let ready = if needs_window && !self.wb_queue.is_empty() {
            self.ready_consumer_sets(now)
        } else {
            ReadyConsumerSets::default()
        };
        let mut blocked = [false; 2];
        let mut remaining = VecDeque::with_capacity(self.wb_queue.len());
        while let Some(slot) = self.wb_queue.pop_front() {
            let Some(entry) = self.rob.get(slot) else { continue };
            // Results written back the cycle after production at the
            // earliest (distinct pipeline stages).
            let produced = entry.complete_cycle.expect("queued results are produced");
            let (class, preg) = entry.dst.expect("write-back queue entries have results");
            let ci = class.index();
            if produced >= now || blocked[ci] {
                remaining.push_back(slot);
                continue;
            }
            let window = ClassWindow { set: &ready.sets[ci] };
            if self.rf[ci].try_writeback(preg, now, &window) {
                let entry = self.rob.get_mut(slot).expect("alive");
                entry.stage = Stage::WrittenBack;
                entry.writeback_cycle = Some(now);
            } else {
                blocked[ci] = true;
                remaining.push_back(slot);
            }
        }
        self.wb_queue = remaining;
    }

    // ----- issue ---------------------------------------------------------

    fn issue(&mut self, now: Cycle) {
        // Drop issued/squashed entries from the window first.
        self.window.retain(|&id| self.rob.get(id).is_some_and(|e| e.stage == Stage::Dispatched));

        let latency = self.rf[0].read_latency();
        let ex_start = now + latency;
        let mut issued = 0;
        let window_snapshot: Vec<SlotId> = self.window.clone();
        for id in window_snapshot {
            if issued >= self.config.issue_width {
                break;
            }
            let Some(entry) = self.rob.get(id) else { continue };
            if entry.stage != Stage::Dispatched {
                continue;
            }
            let seq = entry.seq;
            let op = entry.inst.op;

            // Loads wait until all prior store addresses are known.
            if op == OpClass::Load && !self.lsq.prior_store_addresses_known(seq) {
                continue;
            }

            // Cheap allocation-free pre-check before full planning: most
            // window entries have an unobtainable operand most cycles.
            let obtainable = entry
                .sources()
                .all(|(class, preg)| self.rf[class.index()].operand_obtainable(preg, now));
            if !obtainable {
                continue;
            }

            // Split sources by register class.
            let mut srcs: [Vec<PhysReg>; 2] = [Vec::new(), Vec::new()];
            for (class, preg) in entry.sources() {
                srcs[class.index()].push(preg);
            }
            let dst = entry.dst;

            let plan_int = self.rf[0].plan_read(&srcs[0], now);
            let plan_fp = self.rf[1].plan_read(&srcs[1], now);
            let (plan_int, plan_fp) = match (plan_int, plan_fp) {
                (Ok(a), Ok(b)) => (a, b),
                (a, b) => {
                    self.file_demand_requests(a, b, now);
                    continue;
                }
            };

            // Functional unit for the execute stage.
            if !self.fus.reserve(op.fu_kind(), ex_start, op.exec_latency()) {
                continue;
            }

            self.commit_reads(&plan_int, &plan_fp, now);
            let entry = self.rob.get_mut(id).expect("alive");
            entry.stage = Stage::Issued;
            entry.issue_cycle = Some(now);

            match op {
                OpClass::Load | OpClass::Store => {
                    self.schedule(ex_start, EventKind::ExStart, id);
                }
                _ => {
                    let done = ex_start + op.exec_latency() - 1;
                    if let Some((class, preg)) = dst {
                        self.rf[class.index()].schedule_result(preg, done);
                    }
                    self.schedule(done, EventKind::Complete, id);
                }
            }

            if let Some((class, preg)) = dst {
                self.prefetch_first_pair(seq, class, preg, now);
            }
            issued += 1;
        }
    }

    fn commit_reads(&mut self, plan_int: &[SourceRead], plan_fp: &[SourceRead], now: Cycle) {
        if !plan_int.is_empty() {
            self.rf[0].commit_read(plan_int, now);
        }
        if !plan_fp.is_empty() {
            self.rf[1].commit_read(plan_fp, now);
        }
    }

    /// Files demand transfer requests for operands that are produced but
    /// absent from the upper bank — only when *no* operand is still
    /// unproduced (the paper's fetch-on-demand condition).
    fn file_demand_requests(
        &mut self,
        int: Result<Vec<SourceRead>, PlanError>,
        fp: Result<Vec<SourceRead>, PlanError>,
        now: Cycle,
    ) {
        if matches!(int, Err(PlanError::NotReady)) || matches!(fp, Err(PlanError::NotReady)) {
            return;
        }
        for (class, result) in [(0usize, int), (1usize, fp)] {
            if let Err(PlanError::UpperMiss(missing)) = result {
                for preg in missing {
                    self.rf[class].request_demand(preg, now);
                }
            }
        }
    }

    /// The prefetch-first-pair heuristic: when an instruction producing
    /// `dst` issues, prefetch the other source operand of the first
    /// instruction in the window that consumes `dst`.
    fn prefetch_first_pair(
        &mut self,
        producer_seq: u64,
        class: RegClass,
        dst: PhysReg,
        now: Cycle,
    ) {
        let mut target: Option<(RegClass, PhysReg)> = None;
        for &id in &self.window {
            let Some(entry) = self.rob.get(id) else { continue };
            if entry.stage != Stage::Dispatched || entry.seq <= producer_seq {
                continue;
            }
            let consumes = entry.sources().any(|(c, p)| c == class && p == dst);
            if !consumes {
                continue;
            }
            target = entry.sources().find(|&(c, p)| !(c == class && p == dst));
            break;
        }
        if let Some((oclass, opreg)) = target {
            self.rf[oclass.index()].request_prefetch(opreg, now);
        }
    }

    // ----- dispatch (decode + rename) -------------------------------------

    fn dispatch(&mut self, _now: Cycle) {
        for _ in 0..self.config.decode_width {
            let Some(fetched) = self.fetch_buffer.front().copied() else { break };
            let inst = fetched.inst;

            if self.rob.is_full() {
                self.metrics.stall_rob_full += 1;
                break;
            }
            if self.window.len() >= self.config.window_size {
                self.metrics.stall_window_full += 1;
                break;
            }
            if inst.op.is_mem() && self.lsq.is_full() {
                self.metrics.stall_lsq_full += 1;
                break;
            }
            if inst.op.is_branch() && self.outstanding_branches >= self.config.max_branches {
                self.metrics.stall_branch_limit += 1;
                break;
            }
            if let Some(dst) = inst.dst {
                if self.rename.free_count(dst.class()) == 0 {
                    self.metrics.stall_no_phys_reg += 1;
                    break;
                }
            }

            self.fetch_buffer.pop_front();
            let slot = self.rob.push(fetched.seq, inst);
            // Rename sources before allocating the destination (an
            // instruction may read the register it overwrites).
            let mut srcs = [None, None];
            for (i, src) in inst.srcs.iter().enumerate() {
                if let Some(arch) = src {
                    srcs[i] = Some((arch.class(), self.rename.lookup(*arch)));
                }
            }
            let mut dst_pair = None;
            let mut old_pair = None;
            if let Some(arch) = inst.dst {
                let alloc = self.rename.allocate(arch).expect("free list checked above");
                dst_pair = Some((arch.class(), alloc.new_preg));
                old_pair = Some((arch.class(), alloc.old_preg));
                self.rf[arch.class().index()].on_alloc(alloc.new_preg);
            }

            let entry = self.rob.get_mut(slot).expect("just pushed");
            entry.srcs = srcs;
            entry.dst = dst_pair;
            entry.old_dst = old_pair;
            entry.mispredicted = fetched.mispredicted;
            if inst.op.is_branch() {
                entry.checkpoint = Some(self.rename.checkpoint());
                self.outstanding_branches += 1;
            }
            if inst.op.is_mem() {
                self.lsq.insert(
                    slot,
                    fetched.seq,
                    inst.op == OpClass::Store,
                    inst.mem_addr.expect("memory op has an address"),
                );
            }
            self.window.push(slot);
        }
    }

    fn do_fetch(&mut self, now: Cycle) {
        if self.fetch_buffer.len() + self.config.fetch.width <= 2 * self.config.fetch.width {
            let block = self.fetch.fetch_block(now);
            self.fetch_buffer.extend(block);
        }
    }

    // ----- instrumentation -------------------------------------------------

    /// Figure 3 sampling: count registers whose produced value feeds an
    /// unissued instruction (solid line) and those feeding a fully-ready
    /// unissued instruction (dashed line).
    fn sample_occupancy(&mut self, now: Cycle) {
        let mut value_set = std::collections::HashSet::new();
        let mut ready_set = std::collections::HashSet::new();
        for &id in &self.window {
            let Some(entry) = self.rob.get(id) else { continue };
            if entry.stage != Stage::Dispatched {
                continue;
            }
            let mut all_ready = true;
            for (class, preg) in entry.sources() {
                if self.rf[class.index()].is_produced(preg, now) {
                    value_set.insert((class, preg.raw()));
                } else {
                    all_ready = false;
                }
            }
            if all_ready {
                for (class, preg) in entry.sources() {
                    ready_set.insert((class, preg.raw()));
                }
            }
        }
        self.metrics.occupancy_value.record(value_set.len());
        self.metrics.occupancy_ready.record(ready_set.len());
    }

    /// Renders the reorder-buffer head and its operand states for the
    /// deadlock watchdog's panic message.
    fn debug_head_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let Some(head) = self.rob.head() else { return "ROB empty".into() };
        let Some(entry) = self.rob.get(head) else { return "ROB head stale".into() };
        let _ = writeln!(
            out,
            "head: seq {} {:?} {} (issue {:?}, complete {:?}, wb {:?})",
            entry.seq,
            entry.stage,
            entry.inst.op,
            entry.issue_cycle,
            entry.complete_cycle,
            entry.writeback_cycle
        );
        for (class, preg) in entry.sources() {
            let rf = &self.rf[class.index()];
            let _ = writeln!(
                out,
                "  src {class}:{preg} produced={} written={} obtainable={} {}",
                rf.is_produced(preg, self.now),
                rf.is_written(preg),
                rf.operand_obtainable(preg, self.now),
                rf.debug_operand(preg),
            );
        }
        out
    }

    /// Renders a human-readable snapshot of the machine state: the
    /// reorder buffer contents with stages and renamed operands, queue
    /// occupancies, and free-list levels. Intended for interactive
    /// debugging and teaching; not called on the simulation fast path.
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle {} | ROB {}/{} | window {} | LSQ {} | wb-queue {} | free regs int {} fp {}",
            self.now,
            self.rob.len(),
            self.config.rob_size,
            self.window.len(),
            self.lsq.len(),
            self.wb_queue.len(),
            self.rename.free_count(RegClass::Int),
            self.rename.free_count(RegClass::Fp),
        );
        for (_, entry) in self.rob.iter().take(24) {
            let dst = entry.dst.map(|(c, p)| format!("{c}:{p}")).unwrap_or_else(|| "-".to_string());
            let srcs: Vec<String> = entry.sources().map(|(c, p)| format!("{c}:{p}")).collect();
            let _ = writeln!(
                out,
                "  [{:>6}] {:<12} {:<8?} dst {:<8} srcs [{}]{}",
                entry.seq,
                entry.inst.op.to_string(),
                entry.stage,
                dst,
                srcs.join(", "),
                if entry.mispredicted { " MISPREDICTED" } else { "" },
            );
        }
        if self.rob.len() > 24 {
            let _ = writeln!(out, "  ... {} more", self.rob.len() - 24);
        }
        out
    }

    /// Debug invariant: every physical register is either free or mapped/
    /// in flight — no leaks, no double-frees. Cheap enough for tests only.
    #[doc(hidden)]
    pub fn check_register_accounting(&self) {
        for class in RegClass::ALL {
            let free = self.rename.free_count(class);
            let mut live: std::collections::HashSet<u16> =
                self.rename.mapped(class).map(|p| p.raw()).collect();
            for (_, entry) in self.rob.iter() {
                if let Some((c, p)) = entry.dst {
                    if c == class {
                        live.insert(p.raw());
                    }
                }
                if let Some((c, p)) = entry.old_dst {
                    if c == class {
                        live.insert(p.raw());
                    }
                }
            }
            assert!(
                free + live.len() == self.config.phys_regs,
                "{class}: {free} free + {} live != {}",
                live.len(),
                self.config.phys_regs
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_core::{
        CachingPolicy, FetchPolicy, RegFileCacheConfig, ReplicatedBankConfig, SingleBankConfig,
    };
    use rfcache_workload::{BenchProfile, TraceGenerator};

    /// The scenario engine moves whole CPUs across worker threads; a
    /// non-`Send` field sneaking in (e.g. an `Rc` in a model) must fail
    /// here, at compile time, not in the engine.
    #[test]
    fn cpu_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Cpu<TraceGenerator>>();
    }

    fn run_arch(rf: RegFileConfig, bench: &str, insts: u64) -> SimMetrics {
        let profile = BenchProfile::by_name(bench).unwrap();
        let trace = TraceGenerator::new(profile, 1234);
        let mut cpu = Cpu::new(PipelineConfig::default(), rf, trace);
        let m = cpu.run(insts);
        cpu.check_register_accounting();
        m
    }

    fn one_cycle() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::one_cycle())
    }

    fn two_cycle_1byp() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::two_cycle_single_bypass())
    }

    fn two_cycle_full() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::two_cycle_full_bypass())
    }

    fn rfc() -> RegFileConfig {
        RegFileConfig::Cache(RegFileCacheConfig::paper_default())
    }

    #[test]
    fn commits_exactly_the_requested_instructions() {
        let m = run_arch(one_cycle(), "li", 5_000);
        assert!(m.committed >= 5_000);
        assert!(m.committed < 5_000 + 8, "commit width bounds the overshoot");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_arch(one_cycle(), "gcc", 3_000);
        let b = run_arch(one_cycle(), "gcc", 3_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mispredicted, b.mispredicted);
    }

    #[test]
    fn ipc_is_plausible() {
        for bench in ["compress", "mgrid"] {
            let m = run_arch(one_cycle(), bench, 8_000);
            assert!(m.ipc() > 0.5, "{bench}: {}", m.ipc());
            assert!(m.ipc() <= 8.0, "{bench}: {}", m.ipc());
        }
    }

    #[test]
    fn one_cycle_beats_two_cycle_single_bypass() {
        for bench in ["go", "li"] {
            let fast = run_arch(one_cycle(), bench, 8_000);
            let slow = run_arch(two_cycle_1byp(), bench, 8_000);
            assert!(
                fast.ipc() > slow.ipc(),
                "{bench}: 1-cycle {} vs 2-cycle/1-bypass {}",
                fast.ipc(),
                slow.ipc()
            );
        }
    }

    #[test]
    fn full_bypass_beats_single_bypass_at_two_cycles() {
        for bench in ["go", "compress"] {
            let full = run_arch(two_cycle_full(), bench, 8_000);
            let single = run_arch(two_cycle_1byp(), bench, 8_000);
            assert!(
                full.ipc() >= single.ipc(),
                "{bench}: full {} vs single {}",
                full.ipc(),
                single.ipc()
            );
        }
    }

    #[test]
    fn register_file_cache_sits_between_one_and_two_cycle() {
        for bench in ["li", "m88ksim"] {
            let one = run_arch(one_cycle(), bench, 8_000);
            let two = run_arch(two_cycle_1byp(), bench, 8_000);
            let cache = run_arch(rfc(), bench, 8_000);
            assert!(
                cache.ipc() <= one.ipc() * 1.02,
                "{bench}: rfc {} should not beat 1-cycle {}",
                cache.ipc(),
                one.ipc()
            );
            assert!(
                cache.ipc() > two.ipc() * 0.98,
                "{bench}: rfc {} should be at least near 2-cycle {}",
                cache.ipc(),
                two.ipc()
            );
        }
    }

    #[test]
    fn branches_resolve_and_mispredict() {
        // Warm the predictor first (the paper skips initialization too);
        // a cold gshare on 900 static sites mispredicts far above its
        // steady-state rate.
        let profile = BenchProfile::by_name("go").unwrap();
        let trace = TraceGenerator::new(profile, 1234);
        let mut cpu = Cpu::new(PipelineConfig::default(), one_cycle(), trace);
        cpu.run(30_000);
        cpu.reset_metrics();
        let m = cpu.run(15_000);
        assert!(m.branches > 1_000, "go is branchy: {}", m.branches);
        let rate = m.branch_mispredict_rate().unwrap();
        assert!(rate > 0.02, "go must mispredict noticeably: {rate}");
        assert!(rate < 0.35, "rate implausible: {rate}");
        // Trace-driven simulation never fetches past a mispredicted
        // branch, so recovery finds nothing younger to squash; the whole
        // penalty is the fetch stall until resolution.
        assert_eq!(m.squashed, 0);
    }

    #[test]
    fn fp_benchmark_exercises_fp_register_file() {
        let m = run_arch(rfc(), "swim", 8_000);
        assert!(m.rf_fp.writebacks > 1_000, "swim writes fp results: {:?}", m.rf_fp.writebacks);
        assert!(m.rf_int.writebacks > 0);
    }

    #[test]
    fn rfc_uses_transfers_and_caching() {
        let m = run_arch(rfc(), "li", 8_000);
        let rf = m.rf_combined();
        assert!(rf.cached_results > 0, "caching policy must cache some results");
        assert!(rf.policy_skipped > 0, "bypass-consumed values must be skipped");
        assert!(
            rf.demand_transfers + rf.prefetch_transfers > 0,
            "some operands must come from the lower bank"
        );
    }

    #[test]
    fn read_at_most_once_statistic_matches_paper_ballpark() {
        let m = run_arch(one_cycle(), "gcc", 15_000);
        let frac = m.rf_combined().read_at_most_once_fraction().unwrap();
        // The paper reports 88% (int) / 85% (fp); accept a generous band.
        assert!((0.6..=0.99).contains(&frac), "read-at-most-once {frac}");
    }

    #[test]
    fn occupancy_sampling_records_histograms() {
        let profile = BenchProfile::by_name("li").unwrap();
        let trace = TraceGenerator::new(profile, 7);
        let config = PipelineConfig::default().with_occupancy_sampling();
        let mut cpu = Cpu::new(config, one_cycle(), trace);
        let m = cpu.run(4_000);
        assert!(m.occupancy_value.samples() > 100);
        assert_eq!(m.occupancy_value.samples(), m.occupancy_ready.samples());
        // Ready values are a subset of live values.
        assert!(m.occupancy_ready.percentile(0.9) <= m.occupancy_value.percentile(0.9));
    }

    #[test]
    fn replicated_banks_run_and_commit() {
        let m = run_arch(RegFileConfig::Replicated(ReplicatedBankConfig::default()), "perl", 5_000);
        assert!(m.ipc() > 0.5);
    }

    #[test]
    fn ready_caching_policy_runs() {
        let cfg = RegFileCacheConfig::paper_default()
            .with_policies(CachingPolicy::Ready, FetchPolicy::OnDemand);
        let m = run_arch(RegFileConfig::Cache(cfg), "compress", 6_000);
        assert!(m.ipc() > 0.3);
        assert!(m.rf_combined().cached_results > 0);
    }

    #[test]
    fn smaller_window_does_not_crash_and_reduces_ilp() {
        let profile = BenchProfile::by_name("mgrid").unwrap();
        let big = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_window(128),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        let small = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_window(16),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        assert!(big.ipc() >= small.ipc(), "big {} vs small {}", big.ipc(), small.ipc());
    }

    #[test]
    fn fewer_phys_regs_reduce_ipc() {
        let profile = BenchProfile::by_name("mgrid").unwrap();
        let many = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_phys_regs(128),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        let few = {
            let mut cpu = Cpu::new(
                PipelineConfig::default().with_phys_regs(48),
                one_cycle(),
                TraceGenerator::new(profile, 3),
            );
            cpu.run(6_000)
        };
        assert!(many.ipc() > few.ipc(), "128 regs {} vs 48 regs {}", many.ipc(), few.ipc());
    }

    #[test]
    fn debug_snapshot_renders_in_flight_state() {
        let profile = BenchProfile::by_name("gcc").unwrap();
        let mut cpu =
            Cpu::new(PipelineConfig::default(), one_cycle(), TraceGenerator::new(profile, 1));
        for _ in 0..50 {
            cpu.step();
        }
        let snap = cpu.debug_snapshot();
        assert!(snap.contains("cycle 50"), "{snap}");
        assert!(snap.contains("ROB"), "{snap}");
        assert!(snap.contains("srcs ["), "{snap}");
    }

    #[test]
    fn port_limited_single_bank_loses_ipc() {
        use rfcache_core::PortLimits;
        let unlimited = run_arch(one_cycle(), "ijpeg", 6_000);
        let limited = run_arch(
            RegFileConfig::Single(
                SingleBankConfig::one_cycle().with_ports(PortLimits::limited(2, 1)),
            ),
            "ijpeg",
            6_000,
        );
        assert!(
            limited.ipc() < unlimited.ipc(),
            "limited {} vs unlimited {}",
            limited.ipc(),
            unlimited.ipc()
        );
    }
}
