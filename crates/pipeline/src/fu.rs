//! Functional-unit pools with per-unit reservation.
//!
//! Pipelined units accept a new operation every cycle; non-pipelined
//! units (FP divide) are busy for the full operation latency.

use rfcache_isa::{Cycle, FuKind};

/// The machine's functional units (Table 1 of the paper).
///
/// # Examples
///
/// ```
/// use rfcache_isa::FuKind;
/// use rfcache_pipeline::FuPool;
///
/// let mut pool = FuPool::new([6, 3, 4, 2, 4]);
/// assert!(pool.reserve(FuKind::SimpleInt, 5, 1));
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    /// `free_at[kind][unit]`: first cycle the unit can start an operation.
    free_at: [Vec<Cycle>; 5],
}

impl FuPool {
    /// Creates a pool with `counts[kind.index()]` units of each kind.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(counts: [usize; 5]) -> Self {
        assert!(counts.iter().all(|&c| c > 0), "every FU kind needs at least one unit");
        FuPool { free_at: std::array::from_fn(|i| vec![0; counts[i]]) }
    }

    /// Attempts to reserve a unit of `kind` starting execution at
    /// `ex_start` for an operation of `latency` cycles. Returns `false`
    /// when every unit is busy.
    #[inline]
    pub fn reserve(&mut self, kind: FuKind, ex_start: Cycle, latency: u64) -> bool {
        let units = &mut self.free_at[kind.index()];
        let Some(unit) = units.iter_mut().find(|f| **f <= ex_start) else {
            return false;
        };
        *unit = if kind.is_pipelined() { ex_start + 1 } else { ex_start + latency };
        true
    }

    /// Units of `kind` that could start an operation at `ex_start`.
    pub fn available(&self, kind: FuKind, ex_start: Cycle) -> usize {
        self.free_at[kind.index()].iter().filter(|&&f| f <= ex_start).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_unit_accepts_every_cycle() {
        let mut p = FuPool::new([1, 1, 1, 1, 1]);
        assert!(p.reserve(FuKind::SimpleInt, 5, 1));
        assert!(!p.reserve(FuKind::SimpleInt, 5, 1), "one unit, one op per cycle");
        assert!(p.reserve(FuKind::SimpleInt, 6, 1), "pipelined: next cycle ok");
    }

    #[test]
    fn non_pipelined_divider_blocks_for_latency() {
        let mut p = FuPool::new([1, 1, 1, 1, 1]);
        assert!(p.reserve(FuKind::FpDiv, 10, 14));
        assert!(!p.reserve(FuKind::FpDiv, 20, 14), "busy until 24");
        assert!(p.reserve(FuKind::FpDiv, 24, 14));
    }

    #[test]
    fn multiple_units_serve_same_cycle() {
        let mut p = FuPool::new([3, 1, 1, 1, 1]);
        assert_eq!(p.available(FuKind::SimpleInt, 0), 3);
        for _ in 0..3 {
            assert!(p.reserve(FuKind::SimpleInt, 0, 1));
        }
        assert!(!p.reserve(FuKind::SimpleInt, 0, 1));
        assert_eq!(p.available(FuKind::SimpleInt, 0), 0);
    }

    #[test]
    fn kinds_are_independent() {
        let mut p = FuPool::new([1, 1, 1, 1, 1]);
        assert!(p.reserve(FuKind::SimpleInt, 0, 1));
        assert!(p.reserve(FuKind::LoadStore, 0, 1));
    }
}
