//! Cycle-level out-of-order superscalar core.
//!
//! Models the paper's machine (Table 1): a 6-stage pipeline — fetch,
//! decode/rename, register read, execute, write-back, commit — 8-wide at
//! every stage, with a 128-entry instruction window, register renaming
//! over 128 physical registers per class, a 64-entry load/store queue with
//! store→load forwarding, the functional-unit pools of Table 1, and
//! branch-resolution-time misprediction recovery via register alias table
//! checkpoints.
//!
//! The register read stage is delegated to a [`rfcache_core::RegFileModel`]
//! (one per register class), which is where the three compared register
//! file architectures differ: read latency, bypass coverage, port
//! arbitration, caching and transfer policies.
//!
//! # Examples
//!
//! ```
//! use rfcache_core::{RegFileConfig, SingleBankConfig};
//! use rfcache_pipeline::{Cpu, PipelineConfig};
//! use rfcache_workload::{BenchProfile, TraceGenerator};
//!
//! let profile = BenchProfile::by_name("li").unwrap();
//! let trace = TraceGenerator::new(profile, 42);
//! let config = PipelineConfig::default();
//! let rf = RegFileConfig::Single(SingleBankConfig::one_cycle());
//! let mut cpu = Cpu::new(config, rf, trace);
//! let metrics = cpu.run(10_000);
//! assert!(metrics.ipc() > 0.5);
//! ```

#![warn(missing_docs)]

mod config;
mod cpu;
mod fu;
mod lsq;
mod metrics;
mod rename;
mod rob;
mod wheel;

pub use config::PipelineConfig;
pub use cpu::Cpu;
pub use fu::FuPool;
pub use lsq::{Lsq, StoreSearch};
pub use metrics::{OccupancyHistogram, SimMetrics};
pub use rename::RenameUnit;
pub use rob::{Rob, SlotId, Stage};
