//! The load/store queue: program-ordered memory operations with
//! store→load forwarding and conservative load scheduling ("loads may
//! execute when prior store addresses are known", Table 1).

use crate::rob::SlotId;
use rfcache_isa::InstSeq;

/// Word granularity used for forwarding/alias checks (8-byte words).
const WORD_SHIFT: u32 = 3;

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    slot: SlotId,
    seq: InstSeq,
    is_store: bool,
    addr: u64,
    /// Stores: address has been computed (the store has issued).
    addr_known: bool,
    /// Stores: data value is available for forwarding (store completed).
    data_ready: bool,
}

/// Outcome of searching the older stores for a load's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSearch {
    /// No older store overlaps: access the data cache.
    NoConflict,
    /// The nearest older overlapping store can forward its data.
    Forward,
    /// The nearest older overlapping store has not produced its data yet:
    /// the load must retry later.
    MustWait,
}

/// The load/store queue.
///
/// # Examples
///
/// ```
/// use rfcache_pipeline::{Lsq, StoreSearch, SlotId, Rob};
/// use rfcache_isa::{ArchReg, OpClass, TraceInst};
///
/// let mut rob = Rob::new(4);
/// let mut lsq = Lsq::new(8);
/// let st = rob.push(0, TraceInst::store(ArchReg::int(1), ArchReg::int(2), 0x100, 0));
/// let ld = rob.push(1, TraceInst::load(ArchReg::int(3), ArchReg::int(2), 0x100, 4));
/// lsq.insert(st, 0, true, 0x100);
/// lsq.insert(ld, 1, false, 0x100);
/// assert!(!lsq.prior_store_addresses_known(1)); // store not issued yet
/// lsq.store_address_ready(0);
/// assert_eq!(lsq.search_older_stores(1, 0x100), StoreSearch::MustWait);
/// lsq.store_data_ready(0);
/// assert_eq!(lsq.search_older_stores(1, 0x100), StoreSearch::Forward);
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: Vec<LsqEntry>,
    capacity: usize,
}

impl Lsq {
    /// Creates a queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ capacity must be positive");
        Lsq { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full (dispatch must stall).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Appends a memory operation at dispatch (program order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not monotonically
    /// increasing.
    pub fn insert(&mut self, slot: SlotId, seq: InstSeq, is_store: bool, addr: u64) {
        assert!(!self.is_full(), "LSQ overflow: check is_full() before insert");
        if let Some(last) = self.entries.last() {
            assert!(last.seq < seq, "LSQ inserts must follow program order");
        }
        self.entries.push(LsqEntry {
            slot,
            seq,
            is_store,
            addr,
            addr_known: false,
            data_ready: false,
        });
    }

    fn position(&self, seq: InstSeq) -> Option<usize> {
        self.entries.iter().position(|e| e.seq == seq)
    }

    /// Marks the store with sequence `seq` as having computed its address
    /// (it has issued).
    pub fn store_address_ready(&mut self, seq: InstSeq) {
        if let Some(i) = self.position(seq) {
            debug_assert!(self.entries[i].is_store);
            self.entries[i].addr_known = true;
        }
    }

    /// Marks the store with sequence `seq` as having its data available
    /// (it completed execution).
    pub fn store_data_ready(&mut self, seq: InstSeq) {
        if let Some(i) = self.position(seq) {
            debug_assert!(self.entries[i].is_store);
            self.entries[i].addr_known = true;
            self.entries[i].data_ready = true;
        }
    }

    /// Whether every store older than `seq` has a known address — the
    /// paper's condition for a load to begin execution.
    #[inline]
    pub fn prior_store_addresses_known(&self, seq: InstSeq) -> bool {
        self.entries.iter().take_while(|e| e.seq < seq).all(|e| !e.is_store || e.addr_known)
    }

    /// Searches older stores for one overlapping the load at `addr`
    /// (8-byte granularity), nearest first.
    pub fn search_older_stores(&self, seq: InstSeq, addr: u64) -> StoreSearch {
        let word = addr >> WORD_SHIFT;
        for e in self.entries.iter().rev().skip_while(|e| e.seq >= seq) {
            if e.is_store && e.addr_known && (e.addr >> WORD_SHIFT) == word {
                return if e.data_ready { StoreSearch::Forward } else { StoreSearch::MustWait };
            }
        }
        StoreSearch::NoConflict
    }

    /// Removes the entry with sequence `seq` (commit of a memory op).
    pub fn remove(&mut self, seq: InstSeq) {
        if let Some(i) = self.position(seq) {
            self.entries.remove(i);
        }
    }

    /// Removes every entry younger than `seq` (misprediction squash).
    pub fn squash_younger(&mut self, seq: InstSeq) {
        self.entries.retain(|e| e.seq <= seq);
    }

    /// Handle of the entry with sequence `seq`, if present.
    pub fn slot_of(&self, seq: InstSeq) -> Option<SlotId> {
        self.position(seq).map(|i| self.entries[i].slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rob::Rob;
    use rfcache_isa::{ArchReg, TraceInst};

    fn ids(n: usize) -> Vec<SlotId> {
        let mut rob = Rob::new(n);
        (0..n)
            .map(|i| rob.push(i as u64, TraceInst::load(ArchReg::int(1), ArchReg::int(2), 0, 0)))
            .collect()
    }

    #[test]
    fn load_waits_for_unknown_store_addresses() {
        let s = ids(3);
        let mut lsq = Lsq::new(8);
        lsq.insert(s[0], 0, true, 0x40);
        lsq.insert(s[1], 1, true, 0x80);
        lsq.insert(s[2], 2, false, 0x40);
        assert!(!lsq.prior_store_addresses_known(2));
        lsq.store_address_ready(0);
        assert!(!lsq.prior_store_addresses_known(2));
        lsq.store_address_ready(1);
        assert!(lsq.prior_store_addresses_known(2));
    }

    #[test]
    fn forwarding_from_nearest_older_store() {
        let s = ids(4);
        let mut lsq = Lsq::new(8);
        lsq.insert(s[0], 0, true, 0x100); // far store, same word
        lsq.insert(s[1], 1, true, 0x100); // near store, same word
        lsq.insert(s[2], 2, false, 0x104); // same 8-byte word as 0x100
        lsq.store_data_ready(0);
        lsq.store_address_ready(1); // near store: address only
        assert_eq!(lsq.search_older_stores(2, 0x104), StoreSearch::MustWait);
        lsq.store_data_ready(1);
        assert_eq!(lsq.search_older_stores(2, 0x104), StoreSearch::Forward);
    }

    #[test]
    fn no_conflict_when_addresses_differ() {
        let s = ids(2);
        let mut lsq = Lsq::new(8);
        lsq.insert(s[0], 0, true, 0x100);
        lsq.insert(s[1], 1, false, 0x200);
        lsq.store_data_ready(0);
        assert_eq!(lsq.search_older_stores(1, 0x200), StoreSearch::NoConflict);
    }

    #[test]
    fn younger_stores_are_ignored() {
        let s = ids(2);
        let mut lsq = Lsq::new(8);
        lsq.insert(s[0], 0, false, 0x100);
        lsq.insert(s[1], 1, true, 0x100);
        lsq.store_data_ready(1);
        assert_eq!(lsq.search_older_stores(0, 0x100), StoreSearch::NoConflict);
    }

    #[test]
    fn squash_and_remove() {
        let s = ids(3);
        let mut lsq = Lsq::new(8);
        lsq.insert(s[0], 0, true, 0x40);
        lsq.insert(s[1], 1, false, 0x40);
        lsq.insert(s[2], 2, false, 0x80);
        lsq.squash_younger(1);
        assert_eq!(lsq.len(), 2);
        lsq.remove(0);
        assert_eq!(lsq.len(), 1);
        assert!(lsq.slot_of(1).is_some());
        assert!(lsq.slot_of(2).is_none());
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_insert_rejected() {
        let s = ids(2);
        let mut lsq = Lsq::new(8);
        lsq.insert(s[0], 5, false, 0);
        lsq.insert(s[1], 3, false, 0);
    }

    #[test]
    fn capacity() {
        let s = ids(2);
        let mut lsq = Lsq::new(2);
        lsq.insert(s[0], 0, false, 0);
        assert!(!lsq.is_full());
        lsq.insert(s[1], 1, false, 0);
        assert!(lsq.is_full());
    }
}
