//! Simulation metrics: IPC, stall accounting, and the Figure 3
//! register-occupancy distributions.

use rfcache_core::RegFileStats;
use rfcache_frontend::FetchStats;
use rfcache_isa::Cycle;
use std::fmt;

/// Histogram over "number of registers" with cumulative-distribution
/// queries, used for Figure 3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyHistogram {
    counts: Vec<u64>,
    samples: u64,
}

impl OccupancyHistogram {
    /// Records one cycle observing `n` registers.
    pub fn record(&mut self, n: usize) {
        if self.counts.len() <= n {
            self.counts.resize(n + 1, 0);
        }
        self.counts[n] += 1;
        self.samples += 1;
    }

    /// Number of recorded samples (cycles).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Fraction of cycles observing at most `n` registers.
    pub fn cumulative_at(&self, n: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().take(n + 1).sum();
        sum as f64 / self.samples as f64
    }

    /// Smallest `n` such that at least `fraction` of cycles observed at
    /// most `n` registers (e.g. `percentile(0.9)` = the paper's "90% of
    /// the time about 4 registers are enough").
    pub fn percentile(&self, fraction: f64) -> usize {
        let mut acc = 0u64;
        let target = (fraction * self.samples as f64).ceil() as u64;
        for (n, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return n;
            }
        }
        self.counts.len().saturating_sub(1)
    }

    /// The raw per-occupancy cycle counts (`counts()[n]` = cycles that
    /// observed exactly `n` registers). Together with
    /// [`samples`](Self::samples) this is the histogram's full state,
    /// which the shard-file metrics codec serializes.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from its serialized parts, the inverse of
    /// [`counts`](Self::counts) + [`samples`](Self::samples). A histogram
    /// built by [`record`](Self::record)/[`merge`](Self::merge) always
    /// keeps `samples` equal to the sum of `counts`; decoders pass both
    /// through so a round trip is exact.
    pub fn from_parts(counts: Vec<u64>, samples: u64) -> Self {
        OccupancyHistogram { counts, samples }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &OccupancyHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.samples += other.samples;
    }
}

/// End-of-run metrics of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Simulated cycles.
    pub cycles: Cycle,
    /// Committed instructions.
    pub committed: u64,
    /// Committed branches.
    pub branches: u64,
    /// Committed mispredicted branches.
    pub mispredicted: u64,
    /// Squashed (wrong-path allocation) instructions.
    pub squashed: u64,
    /// Cycles in which no instruction committed.
    pub commit_idle_cycles: u64,
    /// Dispatch stalls due to a full reorder buffer.
    pub stall_rob_full: u64,
    /// Dispatch stalls due to a full instruction window.
    pub stall_window_full: u64,
    /// Dispatch stalls due to an empty free list.
    pub stall_no_phys_reg: u64,
    /// Dispatch stalls due to a full load/store queue.
    pub stall_lsq_full: u64,
    /// Dispatch stalls due to the outstanding-branch limit.
    pub stall_branch_limit: u64,
    /// Register file statistics, integer class.
    pub rf_int: RegFileStats,
    /// Register file statistics, FP class.
    pub rf_fp: RegFileStats,
    /// Front-end statistics.
    pub fetch: FetchStats,
    /// Data-cache hit rate (if any access happened).
    pub dcache_hit_rate: Option<f64>,
    /// Figure 3, solid line: registers holding a produced value that is a
    /// source of at least one instruction still in the window.
    pub occupancy_value: OccupancyHistogram,
    /// Figure 3, dashed line: as above, but only counting values whose
    /// consuming instruction has all operands produced.
    pub occupancy_ready: OccupancyHistogram,
}

impl SimMetrics {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.committed as f64 / self.cycles as f64
    }

    /// Branch misprediction rate over committed branches.
    pub fn branch_mispredict_rate(&self) -> Option<f64> {
        (self.branches > 0).then(|| self.mispredicted as f64 / self.branches as f64)
    }

    /// Combined register-file statistics (both classes summed).
    pub fn rf_combined(&self) -> RegFileStats {
        let mut s = self.rf_int.clone();
        let o = &self.rf_fp;
        s.bypass_reads += o.bypass_reads;
        s.regfile_reads += o.regfile_reads;
        s.writebacks += o.writebacks;
        s.cached_results += o.cached_results;
        s.policy_skipped += o.policy_skipped;
        s.port_skipped += o.port_skipped;
        s.evictions += o.evictions;
        s.demand_transfers += o.demand_transfers;
        s.prefetch_transfers += o.prefetch_transfers;
        s.prefetch_dropped += o.prefetch_dropped;
        s.read_port_stalls += o.read_port_stalls;
        s.upper_miss_stalls += o.upper_miss_stalls;
        s.write_port_stalls += o.write_port_stalls;
        s.values_never_read += o.values_never_read;
        s.values_read_once += o.values_read_once;
        s.values_read_many += o.values_read_many;
        s
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IPC {:.3} ({} insts / {} cycles), mispredict rate {}",
            self.ipc(),
            self.committed,
            self.cycles,
            self.branch_mispredict_rate()
                .map_or("n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_division() {
        let m = SimMetrics { cycles: 100, committed: 250, ..SimMetrics::default() };
        assert!((m.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(SimMetrics::default().ipc(), 0.0);
    }

    #[test]
    fn histogram_cumulative_and_percentile() {
        let mut h = OccupancyHistogram::default();
        for n in [0, 1, 1, 2, 2, 2, 3, 3, 3, 3] {
            h.record(n);
        }
        assert_eq!(h.samples(), 10);
        assert!((h.cumulative_at(1) - 0.3).abs() < 1e-12);
        assert!((h.cumulative_at(3) - 1.0).abs() < 1e-12);
        assert_eq!(h.percentile(0.9), 3);
        assert_eq!(h.percentile(0.3), 1);
    }

    #[test]
    fn histogram_merge() {
        let mut a = OccupancyHistogram::default();
        a.record(1);
        let mut b = OccupancyHistogram::default();
        b.record(4);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert!((a.cumulative_at(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn combined_rf_stats_sum() {
        let mut m = SimMetrics::default();
        m.rf_int.bypass_reads = 3;
        m.rf_fp.bypass_reads = 4;
        m.rf_int.values_read_once = 10;
        assert_eq!(m.rf_combined().bypass_reads, 7);
        assert_eq!(m.rf_combined().values_read_once, 10);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = OccupancyHistogram::default();
        assert_eq!(h.cumulative_at(10), 0.0);
        assert_eq!(h.percentile(0.9), 0);
    }
}
