//! Register renaming: per-class register alias tables, free lists, and
//! checkpoint/restore for branch misprediction recovery.

use rfcache_isa::{ArchReg, PhysReg, RegClass, ARCH_REGS_PER_CLASS};

/// The rename unit. Logical registers of each class map to physical
/// registers of that class's register file; each in-flight result gets a
/// fresh physical register, eliminating WAR/WAW hazards.
///
/// # Examples
///
/// ```
/// use rfcache_isa::{ArchReg, RegClass};
/// use rfcache_pipeline::RenameUnit;
///
/// let mut rename = RenameUnit::new(64);
/// let r1 = ArchReg::int(1);
/// let before = rename.lookup(r1);
/// let fresh = rename.allocate(r1).unwrap();
/// assert_ne!(before, fresh.new_preg);
/// assert_eq!(rename.lookup(r1), fresh.new_preg);
/// ```
#[derive(Debug, Clone)]
pub struct RenameUnit {
    rat: [[PhysReg; 32]; 2],
    free: [Vec<PhysReg>; 2],
    phys_regs: usize,
}

/// Result of allocating a destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// The freshly allocated physical register.
    pub new_preg: PhysReg,
    /// The previous mapping of the architectural register (to free at
    /// commit of the allocating instruction).
    pub old_preg: PhysReg,
}

impl RenameUnit {
    /// Creates a rename unit with `phys_regs` physical registers per
    /// class. Architectural register `i` initially maps to physical
    /// register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs <= ARCH_REGS_PER_CLASS`.
    pub fn new(phys_regs: usize) -> Self {
        let arch = usize::from(ARCH_REGS_PER_CLASS);
        assert!(phys_regs > arch, "need more physical than architectural registers");
        let identity = std::array::from_fn(|i| PhysReg::new(i as u16));
        let free_range = || (arch as u16..phys_regs as u16).rev().map(PhysReg::new).collect();
        RenameUnit { rat: [identity; 2], free: [free_range(), free_range()], phys_regs }
    }

    /// Physical registers per class.
    pub fn phys_regs(&self) -> usize {
        self.phys_regs
    }

    /// Free physical registers currently available in `class`.
    pub fn free_count(&self, class: RegClass) -> usize {
        self.free[class.index()].len()
    }

    /// Current mapping of an architectural register.
    pub fn lookup(&self, reg: ArchReg) -> PhysReg {
        self.rat[reg.class().index()][reg.index()]
    }

    /// Allocates a fresh physical register for `dst`, updating the RAT.
    /// Returns `None` when the class's free list is empty (dispatch must
    /// stall).
    pub fn allocate(&mut self, dst: ArchReg) -> Option<Allocation> {
        let class = dst.class().index();
        let new_preg = self.free[class].pop()?;
        let old_preg = std::mem::replace(&mut self.rat[class][dst.index()], new_preg);
        Some(Allocation { new_preg, old_preg })
    }

    /// Returns a physical register to the free list (at commit of the
    /// superseding instruction, or on squash of the allocating one).
    pub fn release(&mut self, class: RegClass, preg: PhysReg) {
        debug_assert!(
            !self.free[class.index()].contains(&preg),
            "double release of {preg} ({class})"
        );
        self.free[class.index()].push(preg);
    }

    /// Snapshots the RAT (taken at branch rename).
    pub fn checkpoint(&self) -> Box<[[PhysReg; 32]; 2]> {
        Box::new(self.rat)
    }

    /// Snapshots the RAT, reusing a retired snapshot buffer when one is
    /// available instead of allocating.
    pub fn checkpoint_into(
        &self,
        reuse: Option<Box<[[PhysReg; 32]; 2]>>,
    ) -> Box<[[PhysReg; 32]; 2]> {
        match reuse {
            Some(mut buf) => {
                *buf = self.rat;
                buf
            }
            None => Box::new(self.rat),
        }
    }

    /// Restores the RAT from a snapshot (misprediction recovery). The
    /// physical registers allocated by squashed instructions must be
    /// released separately via [`release`](Self::release).
    pub fn restore(&mut self, snapshot: &[[PhysReg; 32]; 2]) {
        self.rat = *snapshot;
    }

    /// All physical registers currently mapped by the RAT of `class`.
    pub fn mapped(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        self.rat[class.index()].iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mapping_is_identity() {
        let r = RenameUnit::new(48);
        assert_eq!(r.lookup(ArchReg::int(7)), PhysReg::new(7));
        assert_eq!(r.lookup(ArchReg::fp(31)), PhysReg::new(31));
        assert_eq!(r.free_count(RegClass::Int), 16);
    }

    #[test]
    fn allocate_updates_rat_and_returns_old() {
        let mut r = RenameUnit::new(40);
        let a = r.allocate(ArchReg::int(3)).unwrap();
        assert_eq!(a.old_preg, PhysReg::new(3));
        assert_eq!(r.lookup(ArchReg::int(3)), a.new_preg);
        let b = r.allocate(ArchReg::int(3)).unwrap();
        assert_eq!(b.old_preg, a.new_preg);
    }

    #[test]
    fn classes_have_independent_free_lists() {
        let mut r = RenameUnit::new(33);
        assert!(r.allocate(ArchReg::int(0)).is_some());
        assert_eq!(r.free_count(RegClass::Int), 0);
        assert!(r.allocate(ArchReg::int(1)).is_none(), "int exhausted");
        assert!(r.allocate(ArchReg::fp(1)).is_some(), "fp unaffected");
    }

    #[test]
    fn release_replenishes() {
        let mut r = RenameUnit::new(33);
        let a = r.allocate(ArchReg::int(0)).unwrap();
        assert!(r.allocate(ArchReg::int(1)).is_none());
        r.release(RegClass::Int, a.old_preg);
        assert!(r.allocate(ArchReg::int(1)).is_some());
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut r = RenameUnit::new(64);
        let cp = r.checkpoint();
        let a = r.allocate(ArchReg::int(5)).unwrap();
        let _ = r.allocate(ArchReg::fp(9)).unwrap();
        assert_ne!(r.lookup(ArchReg::int(5)), PhysReg::new(5));
        r.restore(&cp);
        assert_eq!(r.lookup(ArchReg::int(5)), PhysReg::new(5));
        assert_eq!(r.lookup(ArchReg::fp(9)), PhysReg::new(9));
        // Squashed allocations are returned manually; the fp allocation is
        // in a separate class, so the int free list is whole again.
        r.release(RegClass::Int, a.new_preg);
        assert_eq!(r.free_count(RegClass::Int), 64 - 32);
    }

    #[test]
    #[should_panic(expected = "more physical than architectural")]
    fn too_small_rejected() {
        let _ = RenameUnit::new(32);
    }
}
