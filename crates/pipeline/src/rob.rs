//! The reorder buffer: a bounded circular buffer of in-flight
//! instructions with generation-checked stable handles.

use rfcache_isa::{Cycle, InstSeq, PhysReg, RegClass, TraceInst};

/// Pipeline stage of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Renamed and waiting in the instruction window.
    Dispatched,
    /// Issued; operands being read / executing.
    Issued,
    /// Result produced (end of execute).
    Completed,
    /// Result written to the register file.
    WrittenBack,
}

/// A stable, generation-checked handle to a reorder-buffer entry.
///
/// Events scheduled for future cycles hold `SlotId`s; if the instruction
/// is squashed and the slot reused, the generation mismatch invalidates
/// the stale event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId {
    pub(crate) index: u32,
    pub(crate) gen: u32,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Dynamic sequence number (program order).
    pub seq: InstSeq,
    /// The trace instruction.
    pub inst: TraceInst,
    /// Current stage.
    pub stage: Stage,
    /// Renamed destination, if any.
    pub dst: Option<(RegClass, PhysReg)>,
    /// Previous mapping of the destination architectural register (freed
    /// at commit).
    pub old_dst: Option<(RegClass, PhysReg)>,
    /// Renamed sources.
    pub srcs: [Option<(RegClass, PhysReg)>; 2],
    /// Whether the front end mispredicted this branch.
    pub mispredicted: bool,
    /// RAT snapshot taken at rename (branches only): `[class][arch index]`.
    pub checkpoint: Option<Box<[[PhysReg; 32]; 2]>>,
    /// Cycle the instruction issued.
    pub issue_cycle: Option<Cycle>,
    /// Cycle the result was (or will be) produced.
    pub complete_cycle: Option<Cycle>,
    /// Cycle the result was written back.
    pub writeback_cycle: Option<Cycle>,
    /// Whether a load has been granted its memory access (execute reached).
    pub mem_started: bool,
}

impl InFlight {
    fn new(seq: InstSeq, inst: TraceInst) -> Self {
        InFlight {
            seq,
            inst,
            stage: Stage::Dispatched,
            dst: None,
            old_dst: None,
            srcs: [None, None],
            mispredicted: false,
            checkpoint: None,
            issue_cycle: None,
            complete_cycle: None,
            writeback_cycle: None,
            mem_started: false,
        }
    }

    /// Renamed source registers that are present.
    pub fn sources(&self) -> impl Iterator<Item = (RegClass, PhysReg)> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

struct Slot {
    gen: u32,
    entry: Option<InFlight>,
}

/// The reorder buffer. Entries are appended in program order at dispatch,
/// removed from the head at commit, and removed from the tail on
/// misprediction squash.
pub struct Rob {
    slots: Vec<Slot>,
    /// Indices into `slots`, in program order.
    order: std::collections::VecDeque<u32>,
    free: Vec<u32>,
}

impl Rob {
    /// Creates a reorder buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            slots: (0..capacity).map(|_| Slot { gen: 0, entry: None }).collect(),
            order: std::collections::VecDeque::with_capacity(capacity),
            free: (0..capacity as u32).rev().collect(),
        }
    }

    /// Number of occupied entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether the buffer is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Appends an instruction at the tail. Returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (callers must check
    /// [`is_full`](Self::is_full) first).
    pub fn push(&mut self, seq: InstSeq, inst: TraceInst) -> SlotId {
        let index = self.free.pop().expect("ROB overflow: check is_full() before push");
        let slot = &mut self.slots[index as usize];
        slot.entry = Some(InFlight::new(seq, inst));
        self.order.push_back(index);
        SlotId { index, gen: slot.gen }
    }

    /// Returns the entry for `id` if it is still alive.
    #[inline]
    pub fn get(&self, id: SlotId) -> Option<&InFlight> {
        let slot = &self.slots[id.index as usize];
        (slot.gen == id.gen).then_some(slot.entry.as_ref()).flatten()
    }

    /// Mutable access to the entry for `id` if it is still alive.
    #[inline]
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut InFlight> {
        let slot = &mut self.slots[id.index as usize];
        (slot.gen == id.gen).then_some(slot.entry.as_mut()).flatten()
    }

    /// Handle of the oldest entry.
    #[inline]
    pub fn head(&self) -> Option<SlotId> {
        self.order.front().map(|&index| SlotId { index, gen: self.slots[index as usize].gen })
    }

    /// Removes and returns the oldest entry.
    pub fn pop_head(&mut self) -> Option<InFlight> {
        let index = self.order.pop_front()?;
        let slot = &mut self.slots[index as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(index);
        slot.entry.take()
    }

    /// Removes every entry younger than `seq` (strictly greater sequence
    /// number), returning them youngest-first with the handle each entry
    /// had while alive — the misprediction squash.
    pub fn squash_younger(&mut self, seq: InstSeq) -> Vec<(SlotId, InFlight)> {
        let mut squashed = Vec::new();
        while let Some(&index) = self.order.back() {
            let slot = &mut self.slots[index as usize];
            let entry_seq = slot.entry.as_ref().expect("ordered slot must be occupied").seq;
            if entry_seq <= seq {
                break;
            }
            self.order.pop_back();
            let id = SlotId { index, gen: slot.gen };
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(index);
            squashed.push((id, slot.entry.take().expect("checked above")));
        }
        squashed
    }

    /// Iterates over live entries in program order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &InFlight)> + '_ {
        self.order.iter().map(|&index| {
            let slot = &self.slots[index as usize];
            (
                SlotId { index, gen: slot.gen },
                slot.entry.as_ref().expect("ordered slot must be occupied"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_isa::{ArchReg, OpClass};

    fn inst() -> TraceInst {
        TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(2), ArchReg::int(3))
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        let a = rob.push(0, inst());
        let _b = rob.push(1, inst());
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.head(), Some(a));
        let popped = rob.pop_head().unwrap();
        assert_eq!(popped.seq, 0);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn stale_handles_are_invalidated() {
        let mut rob = Rob::new(2);
        let a = rob.push(0, inst());
        rob.pop_head();
        assert!(rob.get(a).is_none());
        // Reusing the slot bumps the generation.
        let b = rob.push(1, inst());
        assert!(rob.get(a).is_none());
        assert!(rob.get(b).is_some());
    }

    #[test]
    fn squash_removes_younger_only() {
        let mut rob = Rob::new(8);
        let ids: Vec<_> = (0..5).map(|s| rob.push(s, inst())).collect();
        let squashed = rob.squash_younger(2);
        assert_eq!(squashed.len(), 2);
        assert_eq!(squashed[0].1.seq, 4); // youngest first
        assert_eq!(squashed[0].0, ids[4]); // carries the old handle
        assert_eq!(squashed[1].1.seq, 3);
        assert_eq!(rob.len(), 3);
        assert!(rob.get(ids[2]).is_some());
        assert!(rob.get(ids[3]).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(2);
        rob.push(0, inst());
        rob.push(1, inst());
        assert!(rob.is_full());
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn push_past_capacity_panics() {
        let mut rob = Rob::new(1);
        rob.push(0, inst());
        rob.push(1, inst());
    }

    #[test]
    fn iter_is_program_order_after_churn() {
        let mut rob = Rob::new(4);
        rob.push(0, inst());
        rob.push(1, inst());
        rob.pop_head();
        rob.push(2, inst());
        rob.push(3, inst());
        let seqs: Vec<_> = rob.iter().map(|(_, e)| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn squash_then_refill_reuses_slots() {
        let mut rob = Rob::new(3);
        rob.push(0, inst());
        rob.push(1, inst());
        rob.push(2, inst());
        rob.squash_younger(0);
        assert_eq!(rob.len(), 1);
        rob.push(3, inst());
        rob.push(4, inst());
        let seqs: Vec<_> = rob.iter().map(|(_, e)| e.seq).collect();
        assert_eq!(seqs, vec![0, 3, 4]);
    }
}
