//! A calendar-wheel event queue for near-future wakeups.
//!
//! The cycle loop schedules every event a small, bounded number of
//! cycles ahead (execute start, completion, cache fills — all within a
//! few tens of cycles), so a `BTreeMap<Cycle, Vec<_>>` pays tree
//! rebalancing and a fresh `Vec` allocation per simulated cycle for no
//! benefit. The wheel keeps one recyclable bucket per slot of a
//! power-of-two window and falls back to a `BTreeMap` only for the rare
//! event beyond the horizon.
//!
//! Draining order matches the `BTreeMap` exactly: an overflow event for
//! cycle `X` was necessarily scheduled at some `t ≤ X - horizon`, i.e.
//! strictly before any same-cycle wheel event could have been scheduled
//! (those are scheduled at `t > X - horizon`), so draining overflow
//! entries first preserves global insertion order per cycle.

use rfcache_isa::Cycle;
use std::collections::BTreeMap;

/// Wheel window: events at most this many cycles ahead live in the
/// recycled buckets; farther ones go to the overflow map. Must exceed
/// every latency the core schedules (max FU latency 14, dcache miss 8,
/// MSHR-full retry ≈ 2× miss latency).
const HORIZON: u64 = 64;

/// A monotone event queue: events are scheduled strictly in the future
/// and drained cycle by cycle, never out of order.
#[derive(Debug)]
pub(crate) struct EventWheel<T> {
    /// One bucket per slot in the window, indexed by `cycle % HORIZON`.
    buckets: Vec<Vec<T>>,
    /// Events at `cycle - now >= HORIZON` (rare).
    overflow: BTreeMap<Cycle, Vec<T>>,
}

impl<T> EventWheel<T> {
    pub fn new() -> Self {
        EventWheel {
            buckets: (0..HORIZON).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
        }
    }

    /// Enqueues `event` for `cycle`. `now` is the current cycle; `cycle`
    /// must be strictly in the future.
    pub fn schedule(&mut self, now: Cycle, cycle: Cycle, event: T) {
        debug_assert!(cycle > now, "event scheduled in the past");
        if cycle - now < HORIZON {
            // In-window: the slot cannot still hold events of an earlier
            // cycle (those were drained when that cycle passed) nor of a
            // later one (that would need a distance >= HORIZON).
            self.buckets[(cycle % HORIZON) as usize].push(event);
        } else {
            self.overflow.entry(cycle).or_default().push(event);
        }
    }

    /// Removes and returns all events due at `now`, oldest-scheduled
    /// first; `None` when the cycle has no events. Return the `Vec` via
    /// [`recycle`](Self::recycle) to keep the queue allocation-free.
    pub fn take(&mut self, now: Cycle) -> Option<Vec<T>> {
        let bucket = &mut self.buckets[(now % HORIZON) as usize];
        let due_overflow =
            matches!(self.overflow.first_key_value(), Some((&cycle, _)) if cycle == now);
        if due_overflow {
            // Rare: merge, overflow first (see the module docs for why
            // this reproduces BTreeMap order).
            let mut events = self.overflow.pop_first().expect("checked above").1;
            events.append(bucket);
            return Some(events);
        }
        if bucket.is_empty() {
            return None;
        }
        Some(std::mem::take(bucket))
    }

    /// Returns a drained bucket's storage to the wheel so the next
    /// schedule at this slot reuses it.
    pub fn recycle(&mut self, now: Cycle, mut list: Vec<T>) {
        list.clear();
        let slot = &mut self.buckets[(now % HORIZON) as usize];
        // The slot was emptied by `take`; don't clobber a fuller buffer.
        if slot.capacity() < list.capacity() {
            *slot = list;
        }
    }

    /// Whether any event is pending anywhere.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.overflow.is_empty() && self.buckets.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a schedule/drain sequence against a BTreeMap reference.
    fn check_against_btreemap(horizon_jumps: &[(u64, Vec<u64>)]) {
        let mut wheel = EventWheel::new();
        let mut reference: BTreeMap<Cycle, Vec<u32>> = BTreeMap::new();
        let mut id = 0u32;
        let mut now = 0;
        for &(advance, ref offsets) in horizon_jumps {
            for &off in offsets {
                wheel.schedule(now, now + off, id);
                reference.entry(now + off).or_default().push(id);
                id += 1;
            }
            for _ in 0..advance {
                now += 1;
                let got = wheel.take(now).unwrap_or_default();
                let want = reference.remove(&now).unwrap_or_default();
                assert_eq!(got, want, "cycle {now}");
                wheel.recycle(now, got);
            }
        }
    }

    #[test]
    fn drains_in_btreemap_order_within_window() {
        check_against_btreemap(&[
            (1, vec![1, 3, 1, 2]),
            (2, vec![5, 1, 1]),
            (3, vec![2, 2, 2]),
            (10, vec![1, 9, 4, 1]),
        ]);
    }

    #[test]
    fn overflow_events_come_before_wheel_events_of_the_same_cycle() {
        // Schedule far (overflow), advance near the horizon, then
        // schedule near for the same cycle: the far event must drain
        // first, exactly as BTreeMap insertion order would have it.
        check_against_btreemap(&[(60, vec![70, 100]), (50, vec![10, 10, 3]), (100, vec![])]);
    }

    #[test]
    fn exactly_horizon_away_goes_to_overflow_not_a_live_bucket() {
        let mut wheel = EventWheel::new();
        wheel.schedule(0, HORIZON, 1u32);
        assert!(wheel.overflow.contains_key(&HORIZON), "distance == HORIZON must overflow");
        for now in 1..HORIZON {
            assert!(wheel.take(now).is_none());
        }
        assert_eq!(wheel.take(HORIZON), Some(vec![1]));
        assert!(wheel.is_empty());
    }

    #[test]
    fn recycle_reuses_the_buffer() {
        let mut wheel = EventWheel::new();
        wheel.schedule(0, 1, 7u32);
        let drained = wheel.take(1).unwrap();
        let cap = drained.capacity();
        assert!(cap >= 1);
        wheel.recycle(1, drained);
        assert!(wheel.buckets[1].capacity() >= cap, "slot keeps the returned buffer");
    }
}
