//! Structural-hazard and backpressure tests for the out-of-order core:
//! each test constricts exactly one resource and checks both that the
//! machine still completes correctly and that the corresponding stall
//! counter (and only that mechanism) reports pressure.

use rfcache_core::{PortLimits, RegFileConfig, SingleBankConfig};
use rfcache_isa::{ArchReg, OpClass, TraceInst};
use rfcache_pipeline::{Cpu, PipelineConfig};
use rfcache_workload::{BenchProfile, TraceGenerator};

fn one_cycle() -> RegFileConfig {
    RegFileConfig::Single(SingleBankConfig::one_cycle())
}

/// A looping block of independent ALU ops (pcs repeat so the icache hits).
fn alu_stream(n: usize) -> Vec<TraceInst> {
    (0..n)
        .map(|i| {
            TraceInst::alu(
                OpClass::IntAlu,
                ArchReg::int(1 + (i % 20) as u8),
                ArchReg::int(30),
                ArchReg::int(31),
            )
            .with_pc(0x1000 + (i as u64 % 64) * 4)
        })
        .collect()
}

/// A looping stream of independent loads hitting the same hot line.
fn load_stream(n: usize) -> Vec<TraceInst> {
    (0..n)
        .map(|i| {
            TraceInst::load(
                ArchReg::int(1 + (i % 20) as u8),
                ArchReg::int(30),
                0x2000 + (i as u64 % 8) * 8,
                0x1000 + (i as u64 % 64) * 4,
            )
        })
        .collect()
}

#[test]
fn write_port_backpressure_throttles_but_preserves_correctness() {
    let n = 3000u64;
    let unlimited = {
        let mut cpu =
            Cpu::new(PipelineConfig::default(), one_cycle(), alu_stream(n as usize).into_iter());
        cpu.run(n)
    };
    let throttled = {
        let rf = RegFileConfig::Single(
            SingleBankConfig::one_cycle().with_ports(PortLimits::limited(16, 1)),
        );
        let mut cpu = Cpu::new(PipelineConfig::default(), rf, alu_stream(n as usize).into_iter());
        cpu.run(n)
    };
    assert_eq!(throttled.committed, n);
    // One write port bounds sustained throughput at 1 result/cycle.
    assert!(throttled.ipc() <= 1.05, "ipc {}", throttled.ipc());
    assert!(unlimited.ipc() > 2.0 * throttled.ipc());
    assert!(throttled.rf_combined().write_port_stalls > 0);
}

#[test]
fn lsq_capacity_stalls_dispatch() {
    let n = 2000u64;
    let config = PipelineConfig { lsq_size: 4, ..PipelineConfig::default() };
    let mut cpu = Cpu::new(config, one_cycle(), load_stream(n as usize).into_iter());
    let m = cpu.run(n);
    assert_eq!(m.committed, n);
    assert!(m.stall_lsq_full > 0, "tiny LSQ must throttle dispatch");
}

#[test]
fn branch_checkpoint_limit_stalls_dispatch() {
    // A stream of well-predictable taken branches in a tight loop.
    let mut trace = Vec::new();
    for i in 0..2000u64 {
        trace.push(TraceInst::branch(ArchReg::int(30), true, 0x1000, 0x1000));
        trace.push(
            TraceInst::alu(OpClass::IntAlu, ArchReg::int(1), ArchReg::int(30), ArchReg::int(31))
                .with_pc(0x1000 + (i % 2) * 4),
        );
    }
    let total = trace.len() as u64;
    let config = PipelineConfig { max_branches: 2, ..PipelineConfig::default() };
    let mut cpu = Cpu::new(config, one_cycle(), trace.into_iter());
    let m = cpu.run(total);
    assert_eq!(m.committed, total);
    assert!(m.stall_branch_limit > 0, "2 checkpoints must throttle a branchy stream");
}

#[test]
fn physical_register_shortage_stalls_dispatch() {
    let n = 3000u64;
    // 40 physical registers = 32 architectural + 8 in flight.
    let config = PipelineConfig::default().with_phys_regs(40);
    let mut cpu = Cpu::new(config, one_cycle(), alu_stream(n as usize).into_iter());
    let m = cpu.run(n);
    assert_eq!(m.committed, n);
    assert!(m.stall_no_phys_reg > 0);
    cpu.check_register_accounting();
}

#[test]
fn finite_trace_drains_completely() {
    let trace = alu_stream(777);
    let mut cpu = Cpu::new(PipelineConfig::default(), one_cycle(), trace.into_iter());
    // Ask for more than the trace holds: the run must terminate anyway.
    let m = cpu.run(10_000);
    assert_eq!(m.committed, 777);
}

#[test]
fn issue_width_one_serializes() {
    let n = 2000u64;
    let config = PipelineConfig { issue_width: 1, ..PipelineConfig::default() };
    let mut cpu = Cpu::new(config, one_cycle(), alu_stream(n as usize).into_iter());
    let m = cpu.run(n);
    assert_eq!(m.committed, n);
    assert!(m.ipc() <= 1.02, "issue width 1 bounds IPC: {}", m.ipc());
}

#[test]
fn rfc_with_one_bus_still_completes_workloads() {
    use rfcache_core::RegFileCacheConfig;
    let p = BenchProfile::by_name("compress").unwrap();
    let cfg = RegFileCacheConfig::paper_default().with_ports(3, 2, 2, 1);
    let mut cpu =
        Cpu::new(PipelineConfig::default(), RegFileConfig::Cache(cfg), TraceGenerator::new(p, 4));
    let m = cpu.run(10_000);
    assert!(m.committed >= 10_000);
    assert!(m.rf_combined().demand_transfers > 0);
    cpu.check_register_accounting();
}

#[test]
fn dcache_misses_show_up_in_hit_rate() {
    // Loads spread far beyond the 64KB cache: every line is a miss.
    let n = 2000usize;
    let trace: Vec<TraceInst> = (0..n)
        .map(|i| {
            TraceInst::load(
                ArchReg::int(1 + (i % 20) as u8),
                ArchReg::int(30),
                (i as u64) * 4096,
                0x1000 + (i as u64 % 64) * 4,
            )
        })
        .collect();
    let mut cpu = Cpu::new(PipelineConfig::default(), one_cycle(), trace.into_iter());
    let m = cpu.run(n as u64);
    assert!(m.dcache_hit_rate.unwrap() < 0.1, "{:?}", m.dcache_hit_rate);
}
