//! Persistent, content-addressed cache of completed simulation results.
//!
//! Every campaign ultimately reduces to a flat list of [`RunSpec`]s, and
//! identical specs recur constantly — sweeps share axis points, the
//! quick/smoke scenario variants overlap, and a re-run campaign repeats
//! every spec verbatim. The cache turns each repeat into an O(1) lookup:
//! executors consult [`Cache::lookup`] before simulating and
//! [`Cache::store`] afterwards, and because a hit returns the exact
//! [`SimMetrics`] the original simulation produced (the codec
//! round-trips every `u64` counter exactly), campaign reports stay
//! **byte-identical** whether a run was simulated or served from cache.
//!
//! # Addressing and collision safety
//!
//! An entry is keyed by the spec's FNV [`RunSpec::fingerprint`], which
//! names the shard file it lives in
//! (`<dir>/objects/<hh>/<fingerprint>.jsonl`, where `hh` is the key's
//! top byte). The fingerprint alone is *not* trusted to identify a spec:
//! each entry also stores the complete literal spec rendering the
//! fingerprint was computed over, and [`Cache::lookup`] requires an
//! exact match on that full text — a fingerprint collision therefore
//! lands two entries in one shard file (it is a JSON-lines file exactly
//! so it can hold them) and can never serve the wrong metrics.
//!
//! # Corruption safety
//!
//! Every entry line wraps its payload in a checksum:
//! `{"check": "<fnv64>", "body": {...}}`, where the checksum is FNV-1a
//! over the exact body text. A reader verifies the checksum before
//! parsing the body, so *any* flipped or truncated byte — even one that
//! would still parse as valid JSON — makes the entry invisible rather
//! than wrong, and the executor falls back to simulating. [`Cache::store`]
//! rewrites shard files atomically (tmp file + `sync_data` + rename) and
//! drops unreadable lines as it goes, so a corrupted file heals on the
//! next store.
//!
//! # Concurrency
//!
//! Mutations (stores, session lines, clears) serialize on an advisory
//! `flock(2)` over `<dir>/lock`, so shard workers and distributed
//! coordinators can share one cache directory. Readers don't take the
//! lock: atomic renames mean they only ever see a complete former
//! version of a shard file.
//!
//! # Sessions
//!
//! Each cache-enabled campaign appends one summary line to
//! `<dir>/sessions.jsonl` (mode, lookups, hits, stores), so
//! `experiments cache stats` can report lifetime hit rates and CI can
//! assert a warm run was 100% hits without instrumenting the campaign
//! process itself.

use crate::json::{escape, parse_json, JsonValue};
use crate::metrics_codec::{decode_metrics, encode_metrics};
use crate::run::{fnv1a_64, RunResult, RunSpec};
use rfcache_pipeline::SimMetrics;
use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Schema identifier stamped into every cache entry body.
pub const ENTRY_SCHEMA: &str = "rfcache-result/v1";
/// Schema identifier stamped into every session summary line.
pub const SESSION_SCHEMA: &str = "rfcache-session/v1";

const CHECK_PREFIX: &str = "{\"check\": \"";
const BODY_INFIX: &str = "\", \"body\": ";

/// A persistent, content-addressed store of completed runs, shared
/// safely between concurrent processes. See the module docs for the
/// layout and guarantees.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
    shard_key: fn(&RunSpec) -> u64,
}

/// One problem [`Cache::verify`] found, locating the offending entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheProblem {
    /// The shard file holding the bad entry.
    pub file: PathBuf,
    /// 1-based line number within the file.
    pub line: usize,
    /// What is wrong with it.
    pub detail: String,
}

impl fmt::Display for CacheProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: line {}: {}", self.file.display(), self.line, self.detail)
    }
}

/// One campaign's cache usage, as appended to `sessions.jsonl`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSession {
    /// Which execution layer ran the campaign (`in-process`,
    /// `shard I/N`, `distributed`, …).
    pub mode: String,
    /// Specs the campaign asked the cache about.
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Fresh results written back.
    pub stores: u64,
    /// Seconds since the Unix epoch when the session was recorded.
    pub unix_time: u64,
}

impl CacheSession {
    /// Builds a session summary stamped with the current time.
    pub fn now(mode: impl Into<String>, lookups: u64, hits: u64, stores: u64) -> Self {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        CacheSession { mode: mode.into(), lookups, hits, stores, unix_time }
    }

    fn to_line(&self) -> String {
        format!(
            "{{\"schema\": \"{SESSION_SCHEMA}\", \"mode\": \"{}\", \"lookups\": {}, \
             \"hits\": {}, \"stores\": {}, \"unix_time\": {}}}",
            escape(&self.mode),
            self.lookups,
            self.hits,
            self.stores,
            self.unix_time
        )
    }

    fn parse(line: &str) -> Option<Self> {
        let v = parse_json(line).ok()?;
        if v.get("schema")?.as_str()? != SESSION_SCHEMA {
            return None;
        }
        Some(CacheSession {
            mode: v.get("mode")?.as_str()?.to_string(),
            lookups: v.get("lookups")?.as_u64()?,
            hits: v.get("hits")?.as_u64()?,
            stores: v.get("stores")?.as_u64()?,
            unix_time: v.get("unix_time")?.as_u64()?,
        })
    }
}

/// What [`Cache::stats`] measured: the object store plus the lifetime
/// session totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Readable entries across every shard file.
    pub entries: usize,
    /// Shard files on disk.
    pub files: usize,
    /// Shard files holding more than one entry (fingerprint collisions,
    /// or a forced shard key).
    pub collision_files: usize,
    /// Total bytes of the shard files.
    pub bytes: u64,
    /// Session summary lines recorded.
    pub sessions: usize,
    /// Lifetime lookups across all sessions.
    pub lookups: u64,
    /// Lifetime hits across all sessions.
    pub hits: u64,
    /// Lifetime stores across all sessions.
    pub stores: u64,
    /// The most recent session, if any.
    pub last_session: Option<CacheSession>,
}

/// One decoded cache entry: the stored spec identity plus the result.
struct Entry {
    fingerprint: u64,
    spec: String,
    bench: String,
    fp: bool,
    metrics: SimMetrics,
}

impl Entry {
    /// Resolves the entry back into the [`RunResult`] the original
    /// simulation of `spec` produced, verifying the stored workload
    /// identity against the spec being served.
    fn into_run_result(self, spec: &RunSpec) -> Result<RunResult, String> {
        if self.bench != spec.workload.label() {
            return Err(format!(
                "entry is for workload `{}` but the spec is `{}`",
                self.bench,
                spec.workload.label()
            ));
        }
        if self.fp != spec.workload.fp() {
            return Err(format!(
                "workload `{}` has fp={} but the entry says fp={}",
                self.bench,
                spec.workload.fp(),
                self.fp
            ));
        }
        Ok(RunResult { bench: self.bench, fp: self.fp, metrics: self.metrics })
    }
}

/// Renders one entry line: checksum-wrapped body, no trailing newline.
fn render_entry(spec_text: &str, fingerprint: u64, result: &RunResult) -> String {
    let body = format!(
        "{{\"schema\": \"{ENTRY_SCHEMA}\", \"fingerprint\": \"{fingerprint:016x}\", \
         \"spec\": \"{}\", \"bench\": \"{}\", \"fp\": {}, \"metrics\": {}}}",
        escape(spec_text),
        escape(&result.bench),
        result.fp,
        encode_metrics(&result.metrics),
    );
    format!("{CHECK_PREFIX}{:016x}{BODY_INFIX}{body}}}", fnv1a_64(body.bytes()))
}

/// Decodes one entry line, verifying the checksum before trusting a
/// single byte of the body, and the body's internal consistency
/// (schema, and that the stored fingerprint really is the FNV of the
/// stored spec text) after.
fn parse_entry(line: &str) -> Result<Entry, String> {
    let rest = line.strip_prefix(CHECK_PREFIX).ok_or("malformed entry frame")?;
    let check_hex = rest.get(..16).ok_or("malformed checksum")?;
    let check =
        u64::from_str_radix(check_hex, 16).map_err(|_| "checksum is not a hex u64".to_string())?;
    let body = rest
        .get(16..)
        .and_then(|r| r.strip_prefix(BODY_INFIX))
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("malformed entry frame")?;
    if fnv1a_64(body.bytes()) != check {
        return Err(format!("checksum mismatch (expected {check:016x})"));
    }
    let v = parse_json(body).map_err(|e| e.to_string())?;
    let text = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    };
    if text("schema")? != ENTRY_SCHEMA {
        return Err(format!("unknown entry schema `{}`", text("schema")?));
    }
    let fingerprint = u64::from_str_radix(text("fingerprint")?, 16)
        .map_err(|_| "field `fingerprint` is not a hex u64".to_string())?;
    let spec = text("spec")?.to_string();
    if fnv1a_64(spec.bytes()) != fingerprint {
        return Err(format!(
            "stored fingerprint {fingerprint:016x} is not the FNV of the stored spec"
        ));
    }
    let fp = v
        .get("fp")
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| "missing or non-bool field `fp`".to_string())?;
    let metrics =
        decode_metrics(v.get("metrics").ok_or_else(|| "missing field `metrics`".to_string())?)
            .map_err(|e| e.to_string())?;
    Ok(Entry { fingerprint, spec, bench: text("bench")?.to_string(), fp, metrics })
}

/// Complete (newline-terminated) lines of a file, in order. A torn or
/// unterminated tail — a crash mid-write, a truncation — is simply not
/// yielded, so it can never be mis-parsed as an entry.
fn complete_lines(text: &str) -> impl Iterator<Item = &str> {
    text.split_inclusive('\n')
        .filter(|l| l.ends_with('\n'))
        .map(|l| l.trim_end_matches(['\n', '\r']))
}

#[cfg(unix)]
mod sys {
    pub const LOCK_EX: core::ffi::c_int = 2;

    extern "C" {
        pub fn flock(fd: core::ffi::c_int, operation: core::ffi::c_int) -> core::ffi::c_int;
    }
}

/// Holds an exclusive advisory lock on the cache's `lock` file for its
/// lifetime (closing the descriptor releases `flock(2)` locks).
struct DirLock {
    _file: std::fs::File,
}

impl DirLock {
    fn acquire(dir: &Path) -> io::Result<DirLock> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join("lock"))?;
        lock_exclusive(&file)?;
        Ok(DirLock { _file: file })
    }
}

#[cfg(unix)]
fn lock_exclusive(file: &std::fs::File) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    loop {
        if unsafe { sys::flock(file.as_raw_fd(), sys::LOCK_EX) } == 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Off Unix there is no `flock(2)`; mutations fall back to unlocked
/// atomic renames (last writer wins, readers still never see a torn
/// file).
#[cfg(not(unix))]
fn lock_exclusive(_file: &std::fs::File) -> io::Result<()> {
    Ok(())
}

impl Cache {
    /// Opens (creating on demand) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        Self::with_shard_key(dir, RunSpec::fingerprint)
    }

    /// [`open`](Self::open) with a custom shard-key function. This is a
    /// test hook: forcing every spec onto one shard key exercises the
    /// collision path (multiple entries in one shard file, disambiguated
    /// by the stored full-spec text) deterministically.
    #[doc(hidden)]
    pub fn with_shard_key(
        dir: impl Into<PathBuf>,
        shard_key: fn(&RunSpec) -> u64,
    ) -> io::Result<Cache> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("objects"))?;
        Ok(Cache { dir, shard_key })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard file entries for `key` live in.
    fn object_path(&self, key: u64) -> PathBuf {
        self.dir
            .join("objects")
            .join(format!("{:02x}", key >> 56))
            .join(format!("{key:016x}.jsonl"))
    }

    /// Looks up the result of an already-simulated spec.
    ///
    /// Never errors: a missing file, a torn tail, a failed checksum, an
    /// unparseable body, or an entry whose stored spec text doesn't
    /// match this spec exactly are all just misses — the caller
    /// simulates, and the subsequent [`store`](Self::store) self-heals
    /// whatever was unreadable.
    pub fn lookup(&self, spec: &RunSpec) -> Option<RunResult> {
        let path = self.object_path((self.shard_key)(spec));
        let data = std::fs::read_to_string(&path).ok()?;
        let spec_text = format!("{spec:?}");
        let fingerprint = spec.fingerprint();
        for line in complete_lines(&data) {
            let Ok(entry) = parse_entry(line) else { continue };
            if entry.fingerprint == fingerprint && entry.spec == spec_text {
                return entry.into_run_result(spec).ok();
            }
        }
        None
    }

    /// Stores a completed run, replacing any previous entry for the same
    /// spec and silently dropping unreadable lines (self-healing).
    ///
    /// The shard file is rewritten atomically (tmp + `sync_data` +
    /// rename) under the cache's advisory lock, so concurrent writers
    /// sharing the directory serialize instead of clobbering each other.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. Executors treat a failed store as
    /// a warning — the cache is an optimization, not a correctness
    /// dependency.
    pub fn store(&self, spec: &RunSpec, result: &RunResult) -> io::Result<()> {
        let spec_text = format!("{spec:?}");
        let path = self.object_path((self.shard_key)(spec));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let _lock = DirLock::acquire(&self.dir)?;
        let mut lines: Vec<String> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in complete_lines(&existing) {
                if let Ok(entry) = parse_entry(line) {
                    if entry.spec != spec_text {
                        lines.push(line.to_string());
                    }
                }
            }
        }
        lines.push(render_entry(&spec_text, spec.fingerprint(), result));
        let mut blob = lines.join("\n");
        blob.push('\n');
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(blob.as_bytes())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        crate::transport::sync_parent_dir(&path)
    }

    /// Appends one campaign's usage summary to `sessions.jsonl` (under
    /// the advisory lock, so concurrent shard workers interleave whole
    /// lines).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn record_session(&self, session: &CacheSession) -> io::Result<()> {
        let _lock = DirLock::acquire(&self.dir)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("sessions.jsonl"))?;
        let mut line = session.to_line();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()
    }

    /// Every shard file currently on disk, in sorted order.
    fn object_files(&self) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        let objects = self.dir.join("objects");
        let shards = match std::fs::read_dir(&objects) {
            Ok(shards) => shards,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(files),
            Err(e) => return Err(e),
        };
        for shard in shards {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(shard.path())? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "jsonl") {
                    files.push(path);
                }
            }
        }
        files.sort();
        Ok(files)
    }

    /// Measures the object store and folds up the session history.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (unreadable *entries* are not
    /// errors — they are simply not counted).
    pub fn stats(&self) -> io::Result<CacheStats> {
        let mut stats = CacheStats::default();
        for path in self.object_files()? {
            stats.files += 1;
            stats.bytes += std::fs::metadata(&path)?.len();
            let data = std::fs::read_to_string(&path).unwrap_or_default();
            let readable = complete_lines(&data).filter(|l| parse_entry(l).is_ok()).count();
            stats.entries += readable;
            if readable > 1 {
                stats.collision_files += 1;
            }
        }
        if let Ok(data) = std::fs::read_to_string(self.dir.join("sessions.jsonl")) {
            for line in complete_lines(&data) {
                let Some(session) = CacheSession::parse(line) else { continue };
                stats.sessions += 1;
                stats.lookups += session.lookups;
                stats.hits += session.hits;
                stats.stores += session.stores;
                stats.last_session = Some(session);
            }
        }
        Ok(stats)
    }

    /// Checks every entry end to end — frame, checksum, schema,
    /// fingerprint-vs-spec consistency, metrics decode, and benchmark
    /// resolution — and returns every problem found (empty = healthy).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn verify(&self) -> io::Result<Vec<CacheProblem>> {
        let mut problems = Vec::new();
        for path in self.object_files()? {
            let data = match std::fs::read_to_string(&path) {
                Ok(data) => data,
                Err(e) => {
                    problems.push(CacheProblem {
                        file: path,
                        line: 0,
                        detail: format!("unreadable: {e}"),
                    });
                    continue;
                }
            };
            if !data.is_empty() && !data.ends_with('\n') {
                problems.push(CacheProblem {
                    file: path.clone(),
                    line: data.lines().count(),
                    detail: "torn final line (no trailing newline)".into(),
                });
            }
            for (n, line) in complete_lines(&data).enumerate() {
                // Workload identity can only be checked against a live
                // spec at lookup time; verify covers everything
                // self-contained (framing, checksum, schema, fingerprint
                // vs. stored spec text, metrics decode).
                let detail = match parse_entry(line) {
                    Ok(_) => continue,
                    Err(e) => e,
                };
                problems.push(CacheProblem { file: path.clone(), line: n + 1, detail });
            }
        }
        Ok(problems)
    }

    /// Deletes every entry and the session history, returning how many
    /// readable entries were removed. The cache directory itself (and
    /// its lock file) survive, so concurrent processes holding the
    /// [`Cache`] keep working — they just start cold.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn clear(&self) -> io::Result<usize> {
        let _lock = DirLock::acquire(&self.dir)?;
        let removed = self.stats()?.entries;
        let objects = self.dir.join("objects");
        if objects.exists() {
            std::fs::remove_dir_all(&objects)?;
        }
        std::fs::create_dir_all(&objects)?;
        match std::fs::remove_file(self.dir.join("sessions.jsonl")) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_core::{RegFileConfig, SingleBankConfig};

    fn temp_cache(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rfcache_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(bench: &str) -> RunSpec {
        RunSpec::known(bench, RegFileConfig::Single(SingleBankConfig::one_cycle()))
            .insts(1_500)
            .warmup(300)
    }

    #[test]
    fn store_then_lookup_round_trips_exactly() {
        let dir = temp_cache("roundtrip");
        let cache = Cache::open(&dir).unwrap();
        let s = spec("li");
        assert!(cache.lookup(&s).is_none(), "cold cache must miss");
        let result = s.run();
        cache.store(&s, &result).unwrap();
        let hit = cache.lookup(&s).unwrap();
        assert_eq!(hit.bench, result.bench);
        assert_eq!(hit.fp, result.fp);
        assert_eq!(hit.metrics, result.metrics);
        // A different spec is a miss, not a wrong answer.
        assert!(cache.lookup(&s.clone().insts(1_501)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_replaces_rather_than_duplicates() {
        let dir = temp_cache("replace");
        let cache = Cache::open(&dir).unwrap();
        let s = spec("li");
        let result = s.run();
        cache.store(&s, &result).unwrap();
        cache.store(&s, &result).unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!((stats.entries, stats.files, stats.collision_files), (1, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_corrupted_byte_is_a_miss_and_heals_on_store() {
        let dir = temp_cache("corrupt");
        let cache = Cache::open(&dir).unwrap();
        let s = spec("li");
        let result = s.run();
        cache.store(&s, &result).unwrap();
        let path = cache.object_path(s.fingerprint());
        let pristine = std::fs::read(&path).unwrap();
        // Flip every byte position in turn: no single-byte corruption
        // may survive the checksum (newline included: losing it tears
        // the line).
        for at in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[at] = bytes[at].wrapping_add(1);
            std::fs::write(&path, &bytes).unwrap();
            assert!(cache.lookup(&s).is_none(), "corrupt byte {at} served a hit");
        }
        // Storing over the wreckage rewrites a clean file.
        std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        cache.store(&s, &result).unwrap();
        assert!(cache.lookup(&s).is_some());
        assert!(cache.verify().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forced_shard_key_collisions_resolve_by_full_spec() {
        let dir = temp_cache("collide");
        let cache = Cache::with_shard_key(&dir, |_| 0xdead_beef).unwrap();
        let a = spec("li");
        let b = spec("go");
        let (ra, rb) = (a.run(), b.run());
        cache.store(&a, &ra).unwrap();
        cache.store(&b, &rb).unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!((stats.entries, stats.files, stats.collision_files), (2, 1, 1));
        assert_eq!(cache.lookup(&a).unwrap().metrics, ra.metrics);
        assert_eq!(cache.lookup(&b).unwrap().metrics, rb.metrics);
        assert!(cache.verify().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_accumulate_and_clear_resets() {
        let dir = temp_cache("sessions");
        let cache = Cache::open(&dir).unwrap();
        let s = spec("li");
        cache.store(&s, &s.run()).unwrap();
        cache.record_session(&CacheSession::now("in-process", 3, 1, 2)).unwrap();
        cache.record_session(&CacheSession::now("in-process", 3, 3, 0)).unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!((stats.sessions, stats.lookups, stats.hits, stats.stores), (2, 6, 4, 2));
        assert_eq!(stats.last_session.as_ref().unwrap().hits, 3);
        assert_eq!(cache.clear().unwrap(), 1);
        let stats = cache.stats().unwrap();
        assert_eq!((stats.entries, stats.sessions), (0, 0));
        assert!(cache.lookup(&s).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_names_the_offending_line() {
        let dir = temp_cache("verify");
        let cache = Cache::open(&dir).unwrap();
        let s = spec("li");
        cache.store(&s, &s.run()).unwrap();
        let path = cache.object_path(s.fingerprint());
        let mut data = std::fs::read_to_string(&path).unwrap();
        data.push_str("not an entry\n");
        std::fs::write(&path, data).unwrap();
        let problems = cache.verify().unwrap();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert_eq!(problems[0].line, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
