//! Per-connection state for the coordinator's single-threaded readiness
//! loop: nonblocking read/write buffering plus the worker-protocol and
//! HTTP connection state machines.
//!
//! Nothing here decides *protocol* — `transport::serve_with` owns the
//! lease table and frame semantics; this module owns the mechanics of
//! moving bytes in and out of a socket that is never allowed to block
//! the loop.

use crate::metrics_codec::Frame;
use crate::transport::LineBuffer;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Per-tick cap on bytes read from one connection, so a firehosing
/// worker cannot starve its thousand siblings of loop time.
const READ_BUDGET: usize = 256 * 1024;

/// An outbound byte queue for a nonblocking socket: frames are queued
/// whole, [`flush`](Self::flush) sends as much as the socket accepts and
/// remembers the rest for the next writable tick.
#[derive(Debug, Default)]
pub(crate) struct WriteBuf {
    buf: Vec<u8>,
    sent: usize,
}

impl WriteBuf {
    /// Queues one protocol frame (newline-terminated).
    pub fn queue_frame(&mut self, frame: &Frame) {
        let line = frame.to_line();
        self.buf.reserve(line.len() + 1);
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// Queues raw bytes (an HTTP response).
    pub fn queue_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether unsent bytes remain (drives write-interest registration).
    pub fn pending(&self) -> bool {
        self.sent < self.buf.len()
    }

    /// Writes as much as the socket will take. `Ok(true)` = fully
    /// drained, `Ok(false)` = the socket backpressured (`WouldBlock`);
    /// hard errors mean the connection is gone.
    pub fn flush(&mut self, stream: &mut TcpStream) -> io::Result<bool> {
        while self.sent < self.buf.len() {
            match stream.write(&self.buf[self.sent..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection closed while sending",
                    ))
                }
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.sent = 0;
        Ok(true)
    }
}

/// Where a worker connection stands in the lease protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerPhase {
    /// Hello sent; waiting for the worker's fingerprint echo.
    Handshake {
        /// When an unanswered handshake is abandoned.
        deadline: Instant,
    },
    /// Handshake verified; idle and eligible for a lease.
    Ready,
    /// A lease is out; `record` frames are flowing back.
    Streaming,
    /// Campaign over; final `done` queued, connection winding down.
    Closing,
}

/// The lease a streaming worker currently holds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveLease {
    pub id: u64,
    pub issued: Instant,
}

/// One worker connection owned by the readiness loop.
pub(crate) struct WorkerConn {
    pub stream: TcpStream,
    pub peer: String,
    pub inbuf: LineBuffer,
    pub out: WriteBuf,
    pub phase: WorkerPhase,
    pub lease: Option<ActiveLease>,
    /// The campaign this worker handshook against (`None` for the
    /// single-campaign loop, and for service connections that arrived
    /// between campaigns and are only draining a `retry` frame). A
    /// lease may only be issued to — and records only admitted from —
    /// the campaign the connection is bound to.
    pub campaign: Option<u64>,
    /// Leases this worker completed (for the status roster).
    pub leases_done: usize,
    /// Record frames this worker streamed (for the status roster).
    pub records: usize,
    /// Set when the connection failed or closed; the loop's sweep
    /// releases the active lease and drops the entry.
    pub dead: Option<String>,
}

impl WorkerConn {
    /// Adopts an accepted socket: switches it nonblocking and queues the
    /// coordinator's hello (flushed opportunistically — a fresh socket
    /// almost always takes it immediately).
    pub fn start(
        stream: TcpStream,
        peer: String,
        hello: &Frame,
        deadline: Instant,
    ) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        let mut conn = WorkerConn {
            stream,
            peer,
            inbuf: LineBuffer::new(),
            out: WriteBuf::default(),
            phase: WorkerPhase::Handshake { deadline },
            lease: None,
            campaign: None,
            leases_done: 0,
            records: 0,
            dead: None,
        };
        conn.out.queue_frame(hello);
        conn.out.flush(&mut conn.stream)?;
        Ok(conn)
    }

    /// Drains the socket into the line buffer, up to the fairness
    /// budget. `Ok(true)` = the peer may send more; `Ok(false)` = EOF
    /// (buffered complete lines are still valid and must be processed
    /// before the sweep reaps the connection).
    pub fn fill(&mut self) -> io::Result<bool> {
        let mut scratch = [0u8; 16 * 1024];
        let mut taken = 0usize;
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.inbuf.push(&scratch[..n]);
                    taken += n;
                    if taken >= READ_BUDGET {
                        return Ok(true);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Marks the connection dead (first reason wins).
    pub fn kill(&mut self, reason: impl Into<String>) {
        if self.dead.is_none() {
            self.dead = Some(reason.into());
        }
    }
}

/// One HTTP control-plane connection: accumulate a request head, send
/// one response, close (`Connection: close` keeps the state machine to a
/// single round trip).
pub(crate) struct HttpConn {
    pub stream: TcpStream,
    pub inbuf: Vec<u8>,
    pub out: WriteBuf,
    /// A response has been queued; once flushed the connection closes.
    pub responded: bool,
    /// Accept time, for reaping clients that never finish a request.
    pub opened: Instant,
    pub dead: bool,
}

impl HttpConn {
    /// Adopts an accepted control-plane socket.
    pub fn start(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(HttpConn {
            stream,
            inbuf: Vec::new(),
            out: WriteBuf::default(),
            responded: false,
            opened: Instant::now(),
            dead: false,
        })
    }

    /// Drains request bytes. `Ok(false)` = EOF.
    pub fn fill(&mut self) -> io::Result<bool> {
        let mut scratch = [0u8; 4 * 1024];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    if self.inbuf.len() >= READ_BUDGET {
                        return Ok(true);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn write_buf_queues_flushes_and_reports_pending() {
        let (mut client, server) = pair();
        client.set_nonblocking(true).unwrap();
        let mut out = WriteBuf::default();
        assert!(!out.pending());
        out.queue_frame(&Frame::Done);
        out.queue_bytes(b"tail");
        assert!(out.pending());
        assert!(out.flush(&mut client).unwrap(), "a fresh socket drains immediately");
        assert!(!out.pending());

        let mut got = Vec::new();
        let mut peer = server;
        peer.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut scratch = [0u8; 64];
        while got.len() < 4 + Frame::Done.to_line().len() + 1 {
            let n = peer.read(&mut scratch).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&scratch[..n]);
        }
        let text = String::from_utf8(got).unwrap();
        assert!(text.ends_with("tail"), "{text:?}");
        assert!(text.starts_with(&Frame::Done.to_line()), "{text:?}");
    }

    #[test]
    fn worker_conn_fill_reports_eof_after_buffered_lines() {
        let (client, mut server) = pair();
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        let mut conn = WorkerConn::start(
            client,
            "test".into(),
            &Frame::Hello { campaign: None, fingerprint: 1 },
            deadline,
        )
        .unwrap();
        // Read the hello the connection queued at start, so closing the
        // server half is a clean FIN rather than a reset-with-unread-data.
        let hello_len = Frame::Hello { campaign: None, fingerprint: 1 }.to_line().len() + 1;
        server.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut scratch = [0u8; 256];
        let mut got = 0;
        while got < hello_len {
            got += server.read(&mut scratch).unwrap();
        }
        server.write_all(b"line-one\nline-two\n").unwrap();
        drop(server);
        // Wait for delivery, then observe EOF *after* the payload.
        let mut saw_eof = false;
        for _ in 0..200 {
            match conn.fill() {
                Ok(true) => std::thread::sleep(std::time::Duration::from_millis(5)),
                Ok(false) => {
                    saw_eof = true;
                    break;
                }
                Err(e) => panic!("unexpected fill error: {e}"),
            }
        }
        assert!(saw_eof);
        assert_eq!(conn.inbuf.next_line().as_deref(), Some("line-one"));
        assert_eq!(conn.inbuf.next_line().as_deref(), Some("line-two"));
        conn.kill("first");
        conn.kill("second");
        assert_eq!(conn.dead.as_deref(), Some("first"), "first reason wins");
    }
}
