//! CSV export for experiment data, so the regenerated series can be
//! plotted with external tools.
//!
//! Every [`TextTable`](crate::TextTable) renders to CSV directly; the
//! experiment binaries use [`write_csv`] to drop one file per experiment
//! when `--csv DIR` is passed.

use crate::table::TextTable;
use std::io::{self, Write};
use std::path::Path;

/// Quotes a CSV field when needed (commas, quotes, newlines, carriage
/// returns — RFC 4180 §2.6).
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl TextTable {
    /// Renders the table as RFC-4180 CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let row_to_csv = |cells: &[String]| -> String {
            cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&row_to_csv(self.header_cells()));
        out.push('\n');
        for row in self.data_rows() {
            out.push_str(&row_to_csv(row));
            out.push('\n');
        }
        out
    }
}

/// Writes `table` as `<dir>/<name>.csv`, creating `dir` if necessary.
///
/// # Errors
///
/// Propagates filesystem errors.
///
/// # Examples
///
/// ```no_run
/// use rfcache_sim::{write_csv, TextTable};
///
/// let mut t = TextTable::new(vec!["bench".into(), "ipc".into()]);
/// t.row_f64("li", &[2.5]);
/// write_csv("results", "fig6", &t)?;
/// # std::io::Result::Ok(())
/// ```
pub fn write_csv<P: AsRef<Path>>(dir: P, name: &str, table: &TextTable) -> io::Result<()> {
    std::fs::create_dir_all(&dir)?;
    let path = dir.as_ref().join(format!("{name}.csv"));
    let mut file = std::fs::File::create(path)?;
    file.write_all(table.to_csv().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,1".into(), "plain".into()]);
        t.row(vec!["quote\"d".into(), "2".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "\"x,1\",plain");
        assert_eq!(lines[2], "\"quote\"\"d\",2");
    }

    #[test]
    fn carriage_return_fields_are_quoted() {
        // Regression: bare '\r' used to escape unquoted, breaking
        // RFC-4180 consumers on carriage returns.
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["one\rtwo".into(), "\r\n".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"one\rtwo\",\"\r\n\"\n");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("rfcache_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = TextTable::new(vec!["k".into()]);
        t.row(vec!["v".into()]);
        write_csv(&dir, "t", &t).unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "k\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
