//! Pluggable campaign execution backends.
//!
//! [`run_campaign`](crate::scenario::run_campaign) plans a flat list of
//! [`RunSpec`]s; an [`Executor`] decides *where* those specs run. Three
//! backends ship:
//!
//! * [`InProcess`] — the original shared-work-queue thread pool
//!   ([`par_indexed`]), the default.
//! * [`Subprocess`] — spawns `N` worker processes (`experiments
//!   --shard I/N --out FILE`), each of which deterministically re-derives
//!   the same campaign plan, executes only indices `i % N == I`, and
//!   emits one JSON-lines [`ShardRecord`] per completed spec. The
//!   coordinator folds the shard files back into a complete,
//!   plan-ordered result vector, verifying each record's spec
//!   fingerprint so *plan drift* between coordinator and worker is an
//!   error instead of a silently scrambled report.
//! * [`Distributed`] — a TCP coordinator ([`crate::transport`]) leasing
//!   plan-index ranges to an elastic pool of `experiments work`
//!   processes on any host, with disconnect re-queue, lease-timeout
//!   re-issue for stragglers, and per-record fingerprint verification.
//!
//! All backends return results in plan order, so every scenario's
//! `assemble()` sees exactly what a sequential run would have produced —
//! merged output is byte-identical across backends, shard counts and
//! worker pools.

use crate::experiments::ExperimentOpts;
use crate::metrics_codec::{CampaignHeader, RecordFile, ShardRecord, TailPolicy};
use crate::run::{campaign_fingerprint, par_indexed, RunResult, RunSpec};
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Why a campaign execution failed.
#[derive(Debug)]
pub enum ExecutorError {
    /// A filesystem or process-spawn failure.
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A worker process exited unsuccessfully.
    Worker {
        /// Shard index of the worker.
        shard: usize,
        /// Exit status / failure description.
        detail: String,
    },
    /// A shard file could not be decoded.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// What was malformed.
        detail: String,
    },
    /// A record's spec fingerprint disagrees with the coordinator's
    /// plan: coordinator and worker derived different campaigns.
    PlanDrift {
        /// Campaign index of the offending record.
        index: usize,
        /// Expected vs observed fingerprints.
        detail: String,
    },
    /// The shard files do not cover the plan exactly once.
    Coverage {
        /// Which indices are missing or duplicated.
        detail: String,
    },
    /// The distributed transport could not complete the campaign
    /// (aborted, or every worker was lost).
    Transport {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::Io { context, source } => write!(f, "{context}: {source}"),
            ExecutorError::Worker { shard, detail } => {
                write!(f, "shard worker {shard} failed: {detail}")
            }
            ExecutorError::Corrupt { file, detail } => {
                write!(f, "corrupt shard file {}: {detail}", file.display())
            }
            ExecutorError::PlanDrift { index, detail } => {
                write!(f, "plan drift at campaign index {index}: {detail}")
            }
            ExecutorError::Coverage { detail } => write!(f, "incomplete shard coverage: {detail}"),
            ExecutorError::Transport { detail } => {
                write!(f, "distributed campaign failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecutorError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ExecutorError {
    pub(crate) fn io(context: impl Into<String>, source: io::Error) -> Self {
        ExecutorError::Io { context: context.into(), source }
    }
}

/// A campaign execution backend: runs every spec and returns the results
/// in spec order.
pub trait Executor {
    /// Human-readable backend name for diagnostics.
    fn name(&self) -> String;

    /// Executes all specs, returning one result per spec in input order.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorError`] when the backend cannot produce a
    /// complete, verified result set.
    fn execute(&self, specs: &[&RunSpec]) -> Result<Vec<RunResult>, ExecutorError>;
}

/// The in-process thread-pool backend: a shared work queue over `jobs`
/// worker threads (0 = one per available core). Infallible and
/// zero-overhead — the default for everything that fits in one process.
///
/// With [`with_cache`](Self::with_cache), every spec is looked up in
/// the result cache first and only the misses are simulated (in
/// parallel, as usual); fresh results are stored back. A cache hit
/// returns the exact metrics the original simulation produced, so
/// reports stay byte-identical either way.
#[derive(Debug, Clone)]
pub struct InProcess {
    /// Worker threads (0 = one per available core).
    pub jobs: usize,
    cache: Option<crate::cache::Cache>,
}

impl InProcess {
    /// Builds the backend with the given worker-thread count.
    pub fn new(jobs: usize) -> Self {
        InProcess { jobs, cache: None }
    }

    /// Consults (and populates) a result cache around every simulation
    /// (builder-style).
    #[must_use]
    pub fn with_cache(mut self, cache: crate::cache::Cache) -> Self {
        self.cache = Some(cache);
        self
    }
}

impl Executor for InProcess {
    fn name(&self) -> String {
        "in-process".into()
    }

    fn execute(&self, specs: &[&RunSpec]) -> Result<Vec<RunResult>, ExecutorError> {
        let Some(cache) = &self.cache else {
            return Ok(par_indexed(specs.len(), self.jobs, |i| specs[i].run()));
        };
        let mut slots: Vec<Option<RunResult>> = specs.iter().map(|s| cache.lookup(s)).collect();
        let hits = slots.iter().filter(|s| s.is_some()).count();
        let misses: Vec<usize> =
            slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(i, _)| i).collect();
        let fresh = par_indexed(misses.len(), self.jobs, |k| specs[misses[k]].run());
        let mut stores = 0u64;
        for (&index, result) in misses.iter().zip(&fresh) {
            match cache.store(specs[index], result) {
                Ok(()) => stores += 1,
                Err(e) => eprintln!("[cache: warning: cannot store result {index}: {e}]"),
            }
            slots[index] = Some(result.clone());
        }
        let session =
            crate::cache::CacheSession::now("in-process", specs.len() as u64, hits as u64, stores);
        if let Err(e) = cache.record_session(&session) {
            eprintln!("[cache: warning: cannot record the session: {e}]");
        }
        if hits > 0 {
            eprintln!(
                "[cache: {hits} of {} run(s) served from {}]",
                specs.len(),
                cache.dir().display()
            );
        }
        Ok(slots.into_iter().map(|s| s.expect("miss slots were filled above")).collect())
    }
}

/// The multi-process sharded backend.
///
/// Spawns `shards` copies of a worker binary (normally the `experiments`
/// CLI itself), each invoked as `<worker> <campaign_args>... --shard I/N
/// --out <scratch>/shard-I.jsonl`. The workers re-derive the campaign
/// plan from `campaign_args` — the scenario names and planning options —
/// so no specs cross the process boundary; only results come back, as
/// fingerprint-stamped JSON-lines records that [`execute`](Executor::execute)
/// verifies against its own plan.
#[derive(Debug, Clone)]
pub struct Subprocess {
    worker: PathBuf,
    campaign_args: Vec<String>,
    shards: usize,
    scratch: PathBuf,
    cache: Option<PathBuf>,
}

impl Subprocess {
    /// Configures the backend.
    ///
    /// `campaign_args` must make `worker` plan exactly the campaign the
    /// coordinator planned (scenario names plus `--insts/--warmup/--seed
    /// /--quick`); fingerprint verification catches any disagreement.
    /// Shard files are written under `scratch` (created on demand, left
    /// on disk for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(
        worker: impl Into<PathBuf>,
        campaign_args: Vec<String>,
        shards: usize,
        scratch: impl Into<PathBuf>,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        Subprocess {
            worker: worker.into(),
            campaign_args,
            shards,
            scratch: scratch.into(),
            cache: None,
        }
    }

    /// Makes every shard worker consult (and populate) the result cache
    /// at `dir` — each is spawned with `--cache DIR`, and the advisory
    /// lock lets all of them share the directory safely (builder-style).
    #[must_use]
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = Some(dir.into());
        self
    }

    /// The shard file a given worker writes.
    pub fn shard_path(&self, shard: usize) -> PathBuf {
        self.scratch.join(format!("shard-{shard}.jsonl"))
    }
}

impl Executor for Subprocess {
    fn name(&self) -> String {
        format!("{} subprocess shard(s)", self.shards)
    }

    fn execute(&self, specs: &[&RunSpec]) -> Result<Vec<RunResult>, ExecutorError> {
        std::fs::create_dir_all(&self.scratch).map_err(|e| {
            ExecutorError::io(format!("cannot create {}", self.scratch.display()), e)
        })?;
        let mut children = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let mut command = Command::new(&self.worker);
            command.args(&self.campaign_args);
            if let Some(dir) = &self.cache {
                command.arg("--cache").arg(dir);
            }
            let child = command
                .arg("--shard")
                .arg(format!("{shard}/{}", self.shards))
                .arg("--out")
                .arg(self.shard_path(shard))
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                // stderr inherits: worker diagnostics surface directly.
                .spawn()
                .map_err(|e| {
                    ExecutorError::io(format!("cannot spawn {}", self.worker.display()), e)
                });
            match child {
                Ok(child) => children.push(child),
                Err(e) => {
                    // Don't leak already-started workers.
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return Err(e);
                }
            }
        }
        // Reap every worker even if one wait fails — an early return here
        // would leak the remaining children as running orphans.
        let mut failure = None;
        for (shard, mut child) in children.into_iter().enumerate() {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    failure
                        .get_or_insert(ExecutorError::Worker { shard, detail: status.to_string() });
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    failure.get_or_insert(ExecutorError::io(
                        format!("cannot wait for shard {shard}"),
                        e,
                    ));
                }
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }

        let mut records = Vec::with_capacity(specs.len());
        for shard in 0..self.shards {
            let path = self.shard_path(shard);
            let (header, shard_records) = read_shard_file(&path)?;
            if header.shard != shard || header.of != self.shards || header.runs != specs.len() {
                return Err(ExecutorError::Corrupt {
                    file: path,
                    detail: format!(
                        "header says shard {}/{} of {} run(s), expected {shard}/{} of {}",
                        header.shard,
                        header.of,
                        header.runs,
                        self.shards,
                        specs.len()
                    ),
                });
            }
            records.extend(shard_records);
        }
        assemble_shard_results(specs, records)
    }
}

/// The distributed TCP backend: a lease-based coordinator
/// ([`crate::transport::serve`]) over an elastic pool of `experiments
/// work` processes, on this host or others.
///
/// Workers re-derive the campaign plan from the `hello` frame's
/// [`CampaignHeader`] and prove it with a campaign fingerprint, then
/// stream fingerprint-verified records back lease by lease; a worker
/// that disconnects or stalls past the lease timeout has its in-flight
/// indices re-issued, and duplicate records are deduplicated by plan
/// index — so the assembled results (and therefore all reports and
/// exports) are byte-identical to [`InProcess`] no matter how many
/// workers join, leave, or crash along the way.
///
/// With [`self_spawn`](Self::self_spawn) the backend also launches `N`
/// local worker subprocesses and supervises them (the CLI's
/// `--dist-workers N` path): if every self-spawned worker exits before
/// the campaign completes, the campaign aborts instead of waiting for
/// workers that will never come.
#[derive(Debug, Clone)]
pub struct Distributed {
    bind: String,
    http_bind: Option<String>,
    scenarios: Vec<String>,
    /// Canonical JSON texts of any declarative sweeps the scenario
    /// names refer to — carried in the campaign header so workers can
    /// rebuild the namespace.
    sweeps: Vec<String>,
    opts: ExperimentOpts,
    serve_opts: crate::transport::ServeOptions,
    self_spawn: Option<SelfSpawn>,
    journal: Option<JournalSpec>,
    cache: Option<PathBuf>,
}

/// Write-ahead journal configuration for [`Distributed`]: where the
/// coordinator checkpoints accepted records, and whether this run is a
/// fresh campaign or the resumption of an interrupted one.
#[derive(Debug, Clone)]
pub struct JournalSpec {
    /// The journal file. Fresh runs refuse an existing file (it may be
    /// an interrupted campaign worth resuming); `resume` requires one.
    pub path: PathBuf,
    /// `sync_data` after every this-many accepted records (0 = only at
    /// campaign completion; every record still reaches the OS
    /// immediately — the interval only bounds what a *host* crash can
    /// lose, a coordinator crash loses nothing).
    pub sync_every: usize,
    /// Replay the journal's records into the slot table and serve only
    /// the remaining plan indices.
    pub resume: bool,
}

/// Self-spawned local worker pool configuration (the one-command
/// localhost path).
#[derive(Debug, Clone)]
pub struct SelfSpawn {
    /// The worker binary (normally the `experiments` CLI itself).
    pub worker: PathBuf,
    /// How many worker processes to launch.
    pub count: usize,
    /// `--jobs` threads per worker.
    pub jobs: usize,
}

impl Distributed {
    /// Configures the backend: listen on `bind` (e.g. `0.0.0.0:7841`,
    /// or port `0` for an ephemeral port — the chosen address is logged
    /// to stderr) and serve the campaign described by `scenarios` +
    /// `opts` under the given lease policy.
    pub fn new(
        bind: impl Into<String>,
        scenarios: Vec<String>,
        opts: &ExperimentOpts,
        serve_opts: crate::transport::ServeOptions,
    ) -> Self {
        Distributed {
            bind: bind.into(),
            http_bind: None,
            scenarios,
            sweeps: Vec::new(),
            opts: *opts,
            serve_opts,
            self_spawn: None,
            journal: None,
            cache: None,
        }
    }

    /// Embeds declarative sweep definitions (canonical JSON texts) in
    /// the campaign header, so every worker re-derives the same plan
    /// for sweep scenarios (builder-style).
    #[must_use]
    pub fn sweeps(mut self, sweeps: Vec<String>) -> Self {
        self.sweeps = sweeps;
        self
    }

    /// Consults (and populates) the result cache at `dir`: cached plan
    /// indices are admitted — and journaled — at plan time, before any
    /// lease is issued, so workers only ever simulate the remainder;
    /// every live record they stream back is stored for the next
    /// campaign (builder-style).
    #[must_use]
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = Some(dir.into());
        self
    }

    /// Additionally serve the HTTP control plane (`GET /status`, `GET
    /// /healthz`) on a second address — same readiness loop, observable
    /// from the outside (builder-style). Port `0` picks an ephemeral
    /// port; the chosen address is logged to stderr.
    #[must_use]
    pub fn http(mut self, bind: impl Into<String>) -> Self {
        self.http_bind = Some(bind.into());
        self
    }

    /// Additionally spawn and supervise `count` local worker processes
    /// (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn self_spawn(mut self, worker: impl Into<PathBuf>, count: usize, jobs: usize) -> Self {
        assert!(count > 0, "at least one worker");
        self.self_spawn = Some(SelfSpawn { worker: worker.into(), count, jobs });
        self
    }

    /// Write-ahead journal the accepted records — and, with
    /// [`JournalSpec::resume`], replay an interrupted campaign's journal
    /// and serve only what remains (builder-style).
    #[must_use]
    pub fn journal(mut self, spec: JournalSpec) -> Self {
        self.journal = Some(spec);
        self
    }

    /// Opens (or resumes) the write-ahead journal for this campaign.
    ///
    /// On resume the journaled header must describe this exact campaign
    /// and the stamped campaign fingerprint must match the re-derived
    /// plan — the same drift check a live worker handshake gets.
    fn open_journal(
        &self,
        spec: &JournalSpec,
        header: &CampaignHeader,
        specs: &[&RunSpec],
    ) -> Result<crate::transport::Journal, ExecutorError> {
        use crate::transport::{Journal, JournalReader, JournalWriter};
        let fingerprint = campaign_fingerprint(specs);
        if !spec.resume {
            let writer = JournalWriter::create(&spec.path, header, fingerprint, spec.sync_every)
                .map_err(|e| {
                    let context = if e.kind() == io::ErrorKind::AlreadyExists {
                        format!(
                            "journal {} already exists — resume the interrupted campaign with \
                             `experiments resume --journal {}`, or delete the file to start over",
                            spec.path.display(),
                            spec.path.display()
                        )
                    } else {
                        format!("cannot create journal {}", spec.path.display())
                    };
                    ExecutorError::io(context, e)
                })?;
            return Ok(Journal { writer, replay: Vec::new() });
        }
        let replay = JournalReader::read(&spec.path)?;
        if !replay.header.same_campaign(header) {
            return Err(ExecutorError::Corrupt {
                file: spec.path.clone(),
                detail: "journal header describes a different campaign (scenarios/options/plan \
                         size disagree)"
                    .into(),
            });
        }
        if let Some(journaled) = replay.campaign_fingerprint {
            if journaled != fingerprint {
                return Err(ExecutorError::PlanDrift {
                    index: 0,
                    detail: format!(
                        "journal stamps campaign fingerprint {journaled:016x}, this binary plans \
                         {fingerprint:016x} (mismatched binaries or options)"
                    ),
                });
            }
        }
        if replay.torn > 0 {
            eprintln!(
                "[serve: dropping a torn {}-byte final journal line (crash mid-write)]",
                replay.torn
            );
        }
        let writer = JournalWriter::resume(&spec.path, replay.valid_len as u64, spec.sync_every)
            .map_err(|e| {
                ExecutorError::io(format!("cannot reopen journal {}", spec.path.display()), e)
            })?;
        Ok(Journal { writer, replay: replay.records })
    }
}

impl Executor for Distributed {
    fn name(&self) -> String {
        match &self.self_spawn {
            Some(sp) => format!("distributed ({} self-spawned worker(s))", sp.count),
            None => "distributed (TCP coordinator)".into(),
        }
    }

    fn execute(&self, specs: &[&RunSpec]) -> Result<Vec<RunResult>, ExecutorError> {
        let listener = std::net::TcpListener::bind(&self.bind)
            .map_err(|e| ExecutorError::io(format!("cannot bind {}", self.bind), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ExecutorError::io("cannot read the bound address", e))?;
        eprintln!("[serve: listening on {addr}, {} simulation(s)]", specs.len());
        let http_listener = match &self.http_bind {
            Some(bind) => {
                let control = std::net::TcpListener::bind(bind)
                    .map_err(|e| ExecutorError::io(format!("cannot bind {bind}"), e))?;
                let control_addr = control
                    .local_addr()
                    .map_err(|e| ExecutorError::io("cannot read the control-plane address", e))?;
                eprintln!("[serve: http status on {control_addr}]");
                Some(control)
            }
            None => None,
        };
        let header = CampaignHeader::new(self.scenarios.clone(), &self.opts, 0, 1, specs.len())
            .with_sweeps(self.sweeps.clone());
        let journal = match &self.journal {
            Some(spec) => Some(self.open_journal(spec, &header, specs)?),
            None => None,
        };
        let cache = match &self.cache {
            Some(dir) => Some(crate::cache::Cache::open(dir).map_err(|e| {
                ExecutorError::io(format!("cannot open cache {}", dir.display()), e)
            })?),
            None => None,
        };

        let mut children: Vec<std::process::Child> = Vec::new();
        if let Some(sp) = &self.self_spawn {
            for _ in 0..sp.count {
                let child = Command::new(&sp.worker)
                    .arg("work")
                    .arg("--connect")
                    .arg(addr.to_string())
                    .arg("--jobs")
                    .arg(sp.jobs.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    // stderr inherits: worker diagnostics surface directly.
                    .spawn()
                    .map_err(|e| {
                        ExecutorError::io(format!("cannot spawn {}", sp.worker.display()), e)
                    });
                match child {
                    Ok(child) => children.push(child),
                    Err(e) => {
                        for mut c in children.drain(..) {
                            let _ = c.kill();
                            let _ = c.wait();
                        }
                        return Err(e);
                    }
                }
            }
        }

        let signals = crate::transport::ServeSignals::new();
        let result = {
            // Supervision runs inside the serve loop (no watcher thread):
            // a campaign whose whole self-spawned pool died must abort,
            // not wait forever for workers that will never reconnect.
            let count = children.len();
            let mut watch_pool;
            let supervise: Option<&mut dyn FnMut() -> Option<String>> = if count > 0 {
                watch_pool = || {
                    let all_gone = children.iter_mut().all(|c| matches!(c.try_wait(), Ok(Some(_))));
                    all_gone.then(|| {
                        format!(
                            "all {count} self-spawned worker(s) exited before the campaign \
                             completed"
                        )
                    })
                };
                Some(&mut watch_pool)
            } else {
                None
            };
            crate::transport::serve_with(crate::transport::ServeConfig {
                listener: &listener,
                http: http_listener.as_ref(),
                header: &header,
                specs,
                opts: &self.serve_opts,
                signals: &signals,
                journal,
                cache: cache.as_ref(),
                supervise,
            })
        };

        // The campaign is over either way: reap the worker pool. On
        // success workers have been sent `done` and are exiting; on
        // failure they would block on a dead coordinator.
        for mut child in children.drain(..) {
            let _ = child.kill();
            let _ = child.wait();
        }
        result
    }
}

/// Runs the worker half of a sharded campaign: executes the plan indices
/// `i % header.of == header.shard` on `jobs` threads (0 = one per
/// available core) and writes the header plus one record per completed
/// spec, in ascending index order, to `out`.
///
/// # Errors
///
/// Propagates write failures.
///
/// # Panics
///
/// Panics if `header.runs` does not match `specs.len()` (the caller
/// built the header from the same plan).
pub fn run_shard<W: Write>(
    header: &CampaignHeader,
    specs: &[&RunSpec],
    jobs: usize,
    out: &mut W,
) -> io::Result<()> {
    run_shard_cached(header, specs, jobs, None, out)
}

/// [`run_shard`] with an optional result cache: this shard's indices
/// are looked up first, only the misses are simulated, and fresh
/// results are stored back — the emitted shard file is byte-identical
/// either way. Records one cache session (`shard I/N`) per invocation.
///
/// # Errors
///
/// Propagates write failures.
///
/// # Panics
///
/// Panics if `header.runs` does not match `specs.len()` (the caller
/// built the header from the same plan).
pub fn run_shard_cached<W: Write>(
    header: &CampaignHeader,
    specs: &[&RunSpec],
    jobs: usize,
    cache: Option<&crate::cache::Cache>,
    out: &mut W,
) -> io::Result<()> {
    assert_eq!(header.runs, specs.len(), "header must describe this plan");
    let mine: Vec<usize> = (0..specs.len()).filter(|i| i % header.of == header.shard).collect();
    let mut slots: Vec<Option<RunResult>> = match cache {
        Some(cache) => mine.iter().map(|&i| cache.lookup(specs[i])).collect(),
        None => mine.iter().map(|_| None).collect(),
    };
    let hits = slots.iter().filter(|s| s.is_some()).count();
    let misses: Vec<usize> =
        slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(k, _)| k).collect();
    let fresh = par_indexed(misses.len(), jobs, |j| specs[mine[misses[j]]].run());
    let mut stores = 0u64;
    for (&k, result) in misses.iter().zip(&fresh) {
        if let Some(cache) = cache {
            match cache.store(specs[mine[k]], result) {
                Ok(()) => stores += 1,
                Err(e) => eprintln!("[cache: warning: cannot store result {}: {e}]", mine[k]),
            }
        }
        slots[k] = Some(result.clone());
    }
    if let Some(cache) = cache {
        let session = crate::cache::CacheSession::now(
            format!("shard {}/{}", header.shard, header.of),
            mine.len() as u64,
            hits as u64,
            stores,
        );
        if let Err(e) = cache.record_session(&session) {
            eprintln!("[cache: warning: cannot record the session: {e}]");
        }
        if hits > 0 {
            eprintln!(
                "[cache: {hits} of {} run(s) served from {}]",
                mine.len(),
                cache.dir().display()
            );
        }
    }
    writeln!(out, "{}", header.to_line())?;
    for (&index, slot) in mine.iter().zip(&slots) {
        let result = slot.as_ref().expect("miss slots were filled above");
        let record = ShardRecord::from_result(index, specs[index].fingerprint(), result);
        writeln!(out, "{}", record.to_line())?;
    }
    Ok(())
}

/// Reads one shard file: the campaign header line plus the records.
///
/// Shard files are written complete or not at all, so an unterminated
/// final line is corruption here — the coordinator journal, which *can*
/// legitimately end mid-line after a crash, goes through
/// [`crate::transport::JournalReader`] instead.
///
/// # Errors
///
/// Returns [`ExecutorError::Io`] on filesystem errors and
/// [`ExecutorError::Corrupt`] on malformed content.
pub fn read_shard_file(path: &Path) -> Result<(CampaignHeader, Vec<ShardRecord>), ExecutorError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ExecutorError::io(format!("cannot open {}", path.display()), e))?;
    let parsed = RecordFile::parse(&bytes, TailPolicy::Reject)
        .map_err(|e| ExecutorError::Corrupt { file: path.to_path_buf(), detail: e.to_string() })?;
    Ok((parsed.header, parsed.records))
}

/// Folds shard records into a complete result vector in plan order,
/// verifying that every record's fingerprint matches the plan and that
/// every plan index is covered exactly once.
///
/// # Errors
///
/// Returns [`ExecutorError::PlanDrift`] on a fingerprint mismatch or
/// unknown benchmark, [`ExecutorError::Coverage`] on missing, duplicate
/// or out-of-range indices. A coverage failure names *every* missing
/// and duplicated index (range-compressed), not just the first — which
/// shard to re-run is then obvious from the index arithmetic.
pub fn assemble_shard_results(
    specs: &[&RunSpec],
    records: Vec<ShardRecord>,
) -> Result<Vec<RunResult>, ExecutorError> {
    let mut slots: Vec<Option<RunResult>> = (0..specs.len()).map(|_| None).collect();
    let mut duplicated: Vec<usize> = Vec::new();
    for record in records {
        let index = record.index;
        if index >= specs.len() {
            return Err(ExecutorError::Coverage {
                detail: format!("record index {index} exceeds the {}-spec plan", specs.len()),
            });
        }
        let expected = specs[index].fingerprint();
        if record.fingerprint != expected {
            return Err(ExecutorError::PlanDrift {
                index,
                detail: format!(
                    "expected spec fingerprint {expected:016x}, record carries {:016x} \
                     (coordinator and worker planned different campaigns)",
                    record.fingerprint
                ),
            });
        }
        if slots[index].is_some() {
            duplicated.push(index);
            continue;
        }
        let result = record
            .into_run_result(specs[index])
            .map_err(|e| ExecutorError::PlanDrift { index, detail: e.to_string() })?;
        slots[index] = Some(result);
    }
    let missing: Vec<usize> =
        slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(i, _)| i).collect();
    if !missing.is_empty() || !duplicated.is_empty() {
        duplicated.sort_unstable();
        duplicated.dedup();
        let mut parts = Vec::new();
        if !missing.is_empty() {
            parts.push(format!(
                "missing {} of {} campaign index(es): {}",
                missing.len(),
                specs.len(),
                format_index_ranges(&missing)
            ));
        }
        if !duplicated.is_empty() {
            parts.push(format!(
                "duplicated campaign index(es): {}",
                format_index_ranges(&duplicated)
            ));
        }
        return Err(ExecutorError::Coverage { detail: parts.join("; ") });
    }
    Ok(slots.into_iter().map(|slot| slot.expect("gaps were reported above")).collect())
}

/// Renders sorted indices as compact ranges: `[0-3, 7, 9-12]`. Long
/// lists are truncated after 16 ranges with an elision count.
fn format_index_ranges(sorted: &[usize]) -> String {
    const MAX_RANGES: usize = 16;
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for &i in sorted {
        match ranges.last_mut() {
            Some((_, end)) if *end + 1 == i => *end = i,
            _ => ranges.push((i, i)),
        }
    }
    let shown = ranges.len().min(MAX_RANGES);
    let mut parts: Vec<String> = ranges[..shown]
        .iter()
        .map(|&(a, b)| if a == b { a.to_string() } else { format!("{a}-{b}") })
        .collect();
    if ranges.len() > MAX_RANGES {
        parts.push(format!("… ({} more range(s))", ranges.len() - MAX_RANGES));
    }
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentOpts;
    use crate::run::run_suite_jobs;
    use rfcache_core::{RegFileConfig, SingleBankConfig};

    fn specs() -> Vec<RunSpec> {
        ["li", "go", "swim"]
            .iter()
            .map(|b| {
                RunSpec::known(b, RegFileConfig::Single(SingleBankConfig::one_cycle()))
                    .insts(1_500)
                    .warmup(300)
            })
            .collect()
    }

    #[test]
    fn in_process_executor_matches_run_suite() {
        let specs = specs();
        let refs: Vec<&RunSpec> = specs.iter().collect();
        let via_executor = InProcess::new(2).execute(&refs).unwrap();
        let direct = run_suite_jobs(&specs, 1);
        assert_eq!(via_executor.len(), direct.len());
        for (a, b) in via_executor.iter().zip(&direct) {
            assert_eq!(a.bench, b.bench);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn shard_round_trip_covers_the_plan() {
        let specs = specs();
        let refs: Vec<&RunSpec> = specs.iter().collect();
        let opts = ExperimentOpts::smoke();
        let mut records = Vec::new();
        for shard in 0..2 {
            let header = CampaignHeader::new(vec!["x".into()], &opts, shard, 2, refs.len());
            let mut buf = Vec::new();
            run_shard(&header, &refs, 1, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            let parsed_header = CampaignHeader::parse(text.lines().next().unwrap()).unwrap();
            assert_eq!(parsed_header.shard, shard);
            for line in text.lines().skip(1) {
                records.push(ShardRecord::parse(line).unwrap());
            }
        }
        let merged = assemble_shard_results(&refs, records).unwrap();
        let direct = run_suite_jobs(&specs, 1);
        for (a, b) in merged.iter().zip(&direct) {
            assert_eq!(a.bench, b.bench);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn assemble_rejects_drift_duplicates_and_gaps() {
        let specs = specs();
        let refs: Vec<&RunSpec> = specs.iter().collect();
        let results = run_suite_jobs(&specs, 1);
        let record = |i: usize| ShardRecord::from_result(i, refs[i].fingerprint(), &results[i]);

        // Fingerprint mismatch.
        let mut drifted = record(0);
        drifted.fingerprint ^= 1;
        let err = assemble_shard_results(&refs, vec![drifted, record(1), record(2)]).unwrap_err();
        assert!(matches!(err, ExecutorError::PlanDrift { index: 0, .. }), "{err}");

        // Duplicate index: named, not just counted.
        let err = assemble_shard_results(&refs, vec![record(0), record(0), record(1), record(2)])
            .unwrap_err();
        assert!(matches!(err, ExecutorError::Coverage { .. }), "{err}");
        assert!(err.to_string().contains("duplicated campaign index(es): [0]"), "{err}");

        // Missing index: named, with the plan size for context.
        let err = assemble_shard_results(&refs, vec![record(0), record(2)]).unwrap_err();
        assert!(err.to_string().contains("missing 1 of 3 campaign index(es): [1]"), "{err}");

        // Both at once: one error reports the full coverage picture.
        let err = assemble_shard_results(&refs, vec![record(0), record(0)]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing 2 of 3 campaign index(es): [1-2]"), "{msg}");
        assert!(msg.contains("duplicated campaign index(es): [0]"), "{msg}");

        // Out of range.
        let mut wild = record(2);
        wild.index = 9;
        let err = assemble_shard_results(&refs, vec![record(0), record(1), wild]).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");

        // And the happy path still assembles in order.
        let ok = assemble_shard_results(&refs, vec![record(2), record(0), record(1)]).unwrap();
        assert_eq!(ok[0].bench, "li");
        assert_eq!(ok[2].bench, "swim");
    }

    #[test]
    fn index_ranges_compress_and_truncate() {
        assert_eq!(format_index_ranges(&[1]), "[1]");
        assert_eq!(format_index_ranges(&[0, 1, 2, 3, 7, 9, 10, 11, 12]), "[0-3, 7, 9-12]");
        // 20 isolated indices → 16 ranges shown, 4 elided.
        let sparse: Vec<usize> = (0..20).map(|i| i * 2).collect();
        let rendered = format_index_ranges(&sparse);
        assert!(rendered.contains("30"), "{rendered}");
        assert!(!rendered.contains("38"), "{rendered}");
        assert!(rendered.contains("(4 more range(s))"), "{rendered}");
    }

    #[test]
    fn read_shard_file_reports_corruption_with_the_path() {
        let dir = std::env::temp_dir().join(format!("rfcache_shardfile_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "not a header\n").unwrap();
        let err = read_shard_file(&path).unwrap_err();
        assert!(matches!(err, ExecutorError::Corrupt { .. }));
        assert!(err.to_string().contains("bad.jsonl"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
