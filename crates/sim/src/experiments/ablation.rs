//! Ablation study (beyond the paper): sensitivity of the register file
//! cache to the design choices DESIGN.md calls out — upper-bank size,
//! replacement policy, lower-bank latency, and bus count.
//!
//! Each variant perturbs one parameter of the best configuration
//! (non-bypass caching + prefetch-first-pair, 16 entries, pseudo-LRU,
//! 2-cycle lower bank, unlimited bandwidth except where noted).

use super::ExperimentOpts;
use crate::scenario::{Scenario, ScenarioReport};
use crate::{harmonic_mean, run_suite_jobs, RunResult, RunSpec, TextTable};
use rfcache_core::{RegFileCacheConfig, RegFileConfig, Replacement};
use std::fmt;

/// One ablation variant and its result.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant description.
    pub label: String,
    /// SpecInt95 harmonic-mean IPC.
    pub int_hmean: f64,
    /// SpecFP95 harmonic-mean IPC.
    pub fp_hmean: f64,
}

/// Results of the ablation sweep.
#[derive(Debug, Clone)]
pub struct AblationData {
    /// First row is the baseline; the rest are single-parameter variants.
    pub rows: Vec<AblationRow>,
}

fn variants() -> Vec<(String, RegFileCacheConfig)> {
    let base = RegFileCacheConfig::paper_default();
    let mut out = vec![("baseline (16e, PLRU, L2, ∞buses)".to_string(), base)];
    for entries in [8usize, 32] {
        out.push((
            format!("upper entries = {entries}"),
            RegFileCacheConfig { upper_entries: entries, ..base },
        ));
    }
    for repl in [Replacement::Fifo, Replacement::Random] {
        out.push((
            format!("replacement = {repl}"),
            RegFileCacheConfig { replacement: repl, ..base },
        ));
    }
    out.push(("lower latency = 3".to_string(), RegFileCacheConfig { lower_latency: 3, ..base }));
    for buses in [1u32, 2, 4] {
        out.push((format!("buses = {buses}"), RegFileCacheConfig { buses: Some(buses), ..base }));
    }
    out
}

/// Plans the ablation simulation specs: every variant on both suites
/// (variant-major, benchmark-minor).
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    let mut specs = Vec::new();
    for (_, cfg) in &variants() {
        for b in int.iter().chain(fp.iter()) {
            specs.push(
                RunSpec::known(b, RegFileConfig::Cache(*cfg))
                    .insts(opts.insts)
                    .warmup(opts.warmup)
                    .seed(opts.seed),
            );
        }
    }
    specs
}

/// Assembles the results of [`plan`] into the per-variant means.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> AblationData {
    let (int, fp) = super::sweep_suites(opts);
    let per_variant = int.len() + fp.len();
    let variants = variants();
    assert_eq!(results.len(), variants.len() * per_variant, "result count must match the plan");

    let mut rows = Vec::new();
    for (vi, (label, _)) in variants.iter().enumerate() {
        let slice = &results[vi * per_variant..(vi + 1) * per_variant];
        let hmean = |fp_suite: bool| {
            let vals: Vec<f64> =
                slice.iter().filter(|r| r.fp == fp_suite).map(|r| r.ipc()).collect();
            harmonic_mean(&vals).unwrap_or(0.0)
        };
        rows.push(AblationRow {
            label: label.clone(),
            int_hmean: hmean(false),
            fp_hmean: hmean(true),
        });
    }
    AblationData { rows }
}

/// Runs the ablation sweep.
pub fn run(opts: &ExperimentOpts) -> AblationData {
    let results = run_suite_jobs(&plan(opts), opts.jobs);
    assemble(opts, results)
}

impl AblationData {
    /// The baseline row.
    pub fn baseline(&self) -> &AblationRow {
        &self.rows[0]
    }

    /// The row whose label contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.label.contains(needle))
    }
}

impl fmt::Display for AblationData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: register file cache design choices (IPC, Δ vs baseline)")?;
        let base = self.baseline();
        let mut t = TextTable::new(vec![
            "variant".into(),
            "Int hmean".into(),
            "Int Δ%".into(),
            "FP hmean".into(),
            "FP Δ%".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                format!("{:.3}", row.int_hmean),
                format!("{:+.1}", (row.int_hmean / base.int_hmean - 1.0) * 100.0),
                format!("{:.3}", row.fp_hmean),
                format!("{:+.1}", (row.fp_hmean / base.fp_hmean - 1.0) * 100.0),
            ]);
        }
        t.fmt(f)
    }
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "ablation",
        "beyond the paper: upper-bank size, replacement, buses",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

impl ScenarioReport for AblationData {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["variant".into(), "int_hmean".into(), "fp_hmean".into()]);
        for row in &self.rows {
            t.row_f64(&row.label, &[row.int_hmean, row.fp_hmean]);
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        vec![
            ("int_hmean".into(), self.rows.iter().map(|r| r.int_hmean).collect()),
            ("fp_hmean".into(), self.rows.iter().map(|r| r.fp_hmean).collect()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matters_most() {
        let data = run(&ExperimentOpts::smoke());
        let base = data.baseline().clone();
        let small = data.find("= 8").unwrap();
        let big = data.find("= 32").unwrap();
        assert!(small.int_hmean < base.int_hmean, "8 entries must hurt");
        assert!(big.int_hmean >= base.int_hmean * 0.99, "32 entries must not hurt");
        // One bus throttles transfers.
        let one_bus = data.find("buses = 1").unwrap();
        assert!(one_bus.int_hmean <= base.int_hmean * 1.01);
        assert!(data.to_string().contains("baseline"));
    }
}
