//! Shared machinery for the per-benchmark architecture comparisons
//! (Figures 2, 5, 6 and 7 all print the same shape: one row per SPEC95
//! program, one column per register file configuration, plus per-suite
//! harmonic means).

use super::ExperimentOpts;
use crate::scenario::ScenarioReport;
use crate::{harmonic_mean, run_suite_jobs, RunResult, RunSpec, TextTable};
use rfcache_core::RegFileConfig;
use std::fmt;

/// IPC matrix of benchmarks × architectures.
#[derive(Debug, Clone)]
pub struct CompareData {
    /// Column labels (architecture names).
    pub labels: Vec<String>,
    /// `(benchmark, is_fp, ipc per architecture)` rows, suite order.
    pub rows: Vec<(String, bool, Vec<f64>)>,
    /// SpecInt95 harmonic mean per architecture.
    pub int_hmean: Vec<f64>,
    /// SpecFP95 harmonic mean per architecture.
    pub fp_hmean: Vec<f64>,
    /// Title printed above the table.
    pub title: String,
}

/// Specs for every benchmark of both suites on every architecture — one
/// flat list (benchmark-major, architecture-minor) so every simulation
/// can run in parallel, in the order [`assemble_archs`] expects back.
pub fn plan_archs(opts: &ExperimentOpts, archs: &[(&str, RegFileConfig)]) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    let mut specs = Vec::with_capacity((int.len() + fp.len()) * archs.len());
    for bench in int.iter().chain(fp.iter()) {
        for &(_, rf) in archs {
            specs.push(
                RunSpec::known(bench, rf).insts(opts.insts).warmup(opts.warmup).seed(opts.seed),
            );
        }
    }
    specs
}

/// Folds the results of [`plan_archs`] (same `opts`, same `archs`,
/// results in spec order) into the IPC matrix.
pub fn assemble_archs(
    opts: &ExperimentOpts,
    title: &str,
    archs: &[(&str, RegFileConfig)],
    results: Vec<RunResult>,
) -> CompareData {
    let (int, fp) = super::sweep_suites(opts);
    let benches: Vec<(&str, bool)> =
        int.iter().map(|b| (*b, false)).chain(fp.iter().map(|b| (*b, true))).collect();
    assert_eq!(results.len(), benches.len() * archs.len(), "result count must match the plan");

    let mut rows = Vec::with_capacity(benches.len());
    for (bi, &(bench, is_fp)) in benches.iter().enumerate() {
        let ipcs: Vec<f64> =
            (0..archs.len()).map(|ai| results[bi * archs.len() + ai].ipc()).collect();
        rows.push((bench.to_string(), is_fp, ipcs));
    }

    let hmean_of = |fp: bool| -> Vec<f64> {
        (0..archs.len())
            .map(|ai| {
                let vals: Vec<f64> = rows
                    .iter()
                    .filter(|(_, is_fp, _)| *is_fp == fp)
                    .map(|(_, _, ipcs)| ipcs[ai])
                    .collect();
                harmonic_mean(&vals).unwrap_or(0.0)
            })
            .collect()
    };

    CompareData {
        labels: archs.iter().map(|(l, _)| l.to_string()).collect(),
        int_hmean: hmean_of(false),
        fp_hmean: hmean_of(true),
        rows,
        title: title.to_string(),
    }
}

/// Runs every benchmark of both suites on every architecture
/// ([`plan_archs`] + [`assemble_archs`] in one call).
pub fn compare_archs(
    opts: &ExperimentOpts,
    title: &str,
    archs: &[(&str, RegFileConfig)],
) -> CompareData {
    let specs = plan_archs(opts, archs);
    let results = run_suite_jobs(&specs, opts.jobs);
    assemble_archs(opts, title, archs, results)
}

impl CompareData {
    /// IPC column for the architecture labelled `label`.
    pub fn column(&self, label: &str) -> Option<Vec<f64>> {
        let idx = self.labels.iter().position(|l| l == label)?;
        Some(self.rows.iter().map(|(_, _, ipcs)| ipcs[idx]).collect())
    }

    /// Ratio of the two labelled columns' suite harmonic means
    /// (`a / b`), for (int, fp).
    pub fn hmean_ratio(&self, a: &str, b: &str) -> Option<(f64, f64)> {
        let ia = self.labels.iter().position(|l| l == a)?;
        let ib = self.labels.iter().position(|l| l == b)?;
        Some((self.int_hmean[ia] / self.int_hmean[ib], self.fp_hmean[ia] / self.fp_hmean[ib]))
    }
}

impl CompareData {
    /// Renders the comparison as a [`TextTable`] (also the CSV shape via
    /// [`TextTable::to_csv`]).
    pub fn to_table(&self) -> TextTable {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.labels.iter().cloned());
        let mut t = TextTable::new(header);
        let mut int_done = false;
        for (bench, is_fp, ipcs) in &self.rows {
            if *is_fp && !int_done {
                t.row_f64("Hmean(Int)", &self.int_hmean);
                int_done = true;
            }
            t.row_f64(bench, ipcs);
        }
        if !int_done {
            t.row_f64("Hmean(Int)", &self.int_hmean);
        }
        t.row_f64("Hmean(FP)", &self.fp_hmean);
        t
    }
}

impl fmt::Display for CompareData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        self.to_table().fmt(f)
    }
}

impl ScenarioReport for CompareData {
    fn to_table(&self) -> TextTable {
        CompareData::to_table(self)
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        let mut out: Vec<(String, Vec<f64>)> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, label)| {
                (format!("ipc[{label}]"), self.rows.iter().map(|(_, _, ipcs)| ipcs[i]).collect())
            })
            .collect();
        out.push(("int_hmean".into(), self.int_hmean.clone()));
        out.push(("fp_hmean".into(), self.fp_hmean.clone()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{one_cycle, two_cycle_single_bypass};

    #[test]
    fn matrix_shape_and_accessors() {
        let opts = ExperimentOpts::smoke();
        let data = compare_archs(
            &opts,
            "test",
            &[("1-cycle", one_cycle()), ("2-cycle", two_cycle_single_bypass())],
        );
        assert_eq!(data.labels.len(), 2);
        assert_eq!(data.rows.len(), 4); // 2 int + 2 fp in quick mode
        let col = data.column("1-cycle").unwrap();
        assert_eq!(col.len(), 4);
        assert!(col.iter().all(|&v| v > 0.0));
        let (int_ratio, fp_ratio) = data.hmean_ratio("1-cycle", "2-cycle").unwrap();
        assert!(int_ratio > 1.0, "1-cycle must beat 2-cycle/1-bypass: {int_ratio}");
        assert!(fp_ratio > 1.0);
        assert!(data.column("bogus").is_none());
        let rendered = data.to_string();
        assert!(rendered.contains("Hmean(Int)"));
        assert!(rendered.contains("Hmean(FP)"));
        let csv = data.to_table().to_csv();
        assert!(csv.starts_with("benchmark,"));
        assert_eq!(csv.lines().count(), 1 + 4 + 2, "header + rows + hmeans");
    }
}
