//! Figure 1: IPC for a varying number of physical registers.
//!
//! The paper enlarges the reorder buffer and instruction window to 256
//! entries and sweeps the per-class physical register count from 48 to
//! 256 on a 1-cycle register file, showing that the curves flatten beyond
//! ~128 registers — the machine that the rest of the evaluation assumes.

use super::{one_cycle, ExperimentOpts};
use crate::scenario::{Scenario, ScenarioReport};
use crate::{harmonic_mean, run_suite_jobs, RunResult, RunSpec, TextTable};
use rfcache_pipeline::PipelineConfig;
use std::fmt;

/// The register-count sweep of Figure 1.
pub const SIZES: [usize; 8] = [48, 64, 96, 128, 160, 192, 224, 256];

/// The sizes actually swept under the given options.
fn sizes(opts: &ExperimentOpts) -> Vec<usize> {
    if opts.quick {
        vec![48, 128, 256]
    } else {
        SIZES.to_vec()
    }
}

/// Results of the Figure 1 sweep.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Physical register counts evaluated.
    pub sizes: Vec<usize>,
    /// Harmonic-mean IPC of SpecInt95 per size.
    pub int_hmean: Vec<f64>,
    /// Harmonic-mean IPC of SpecFP95 per size.
    pub fp_hmean: Vec<f64>,
}

/// Plans the Figure 1 simulation specs: both suites at every swept
/// register count (size-major, benchmark-minor).
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    let sizes = sizes(opts);
    let mut specs = Vec::with_capacity(sizes.len() * (int.len() + fp.len()));
    for &size in &sizes {
        let pipeline = PipelineConfig::default().with_window(256).with_phys_regs(size);
        for b in int.iter().chain(fp.iter()) {
            specs.push(
                RunSpec::known(b, one_cycle())
                    .pipeline(pipeline)
                    .insts(opts.insts)
                    .warmup(opts.warmup)
                    .seed(opts.seed),
            );
        }
    }
    specs
}

/// Assembles the results of [`plan`] into the per-size suite means.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> Fig1Data {
    let (int, fp) = super::sweep_suites(opts);
    let per_size = int.len() + fp.len();
    let sizes = sizes(opts);
    assert_eq!(results.len(), sizes.len() * per_size, "result count must match the plan");
    let mut int_hmean = Vec::with_capacity(sizes.len());
    let mut fp_hmean = Vec::with_capacity(sizes.len());
    for chunk in results.chunks_exact(per_size) {
        let (ints, fps): (Vec<_>, Vec<_>) = chunk.iter().partition(|r| !r.fp);
        int_hmean
            .push(harmonic_mean(&ints.iter().map(|r| r.ipc()).collect::<Vec<_>>()).unwrap_or(0.0));
        fp_hmean
            .push(harmonic_mean(&fps.iter().map(|r| r.ipc()).collect::<Vec<_>>()).unwrap_or(0.0));
    }
    Fig1Data { sizes, int_hmean, fp_hmean }
}

/// Runs the Figure 1 experiment.
pub fn run(opts: &ExperimentOpts) -> Fig1Data {
    let results = run_suite_jobs(&plan(opts), opts.jobs);
    assemble(opts, results)
}

impl Fig1Data {
    /// IPC gain of the largest configuration over the smallest, per suite.
    pub fn saturation_gain(&self) -> (f64, f64) {
        let last = self.sizes.len() - 1;
        (self.int_hmean[last] / self.int_hmean[0], self.fp_hmean[last] / self.fp_hmean[0])
    }
}

impl fmt::Display for Fig1Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1: IPC vs physical registers (window/ROB = 256, 1-cycle RF)")?;
        let mut t = TextTable::new(vec![
            "registers".into(),
            "SpecInt95 hmean".into(),
            "SpecFP95 hmean".into(),
        ]);
        for (i, &size) in self.sizes.iter().enumerate() {
            t.row_f64(&size.to_string(), &[self.int_hmean[i], self.fp_hmean[i]]);
        }
        t.fmt(f)
    }
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new("fig1", "IPC vs number of physical registers (48-256)", plan, |opts, results| {
        Box::new(assemble(opts, results))
    })
}

impl ScenarioReport for Fig1Data {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["registers".into(), "int_hmean".into(), "fp_hmean".into()]);
        for (i, &size) in self.sizes.iter().enumerate() {
            t.row_f64(&size.to_string(), &[self.int_hmean[i], self.fp_hmean[i]]);
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        vec![
            ("registers".into(), self.sizes.iter().map(|&s| s as f64).collect()),
            ("int_hmean".into(), self.int_hmean.clone()),
            ("fp_hmean".into(), self.fp_hmean.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_registers_do_not_hurt_and_curve_flattens() {
        let data = run(&ExperimentOpts::smoke());
        assert_eq!(data.sizes, vec![48, 128, 256]);
        // 48 → 128 must help noticeably; 128 → 256 must help much less.
        let low = data.int_hmean[0].min(data.fp_hmean[0]);
        assert!(low > 0.0);
        let gain_mid = data.int_hmean[1] / data.int_hmean[0];
        let gain_top = data.int_hmean[2] / data.int_hmean[1];
        assert!(gain_mid > 1.02, "48→128 gain {gain_mid}");
        assert!(gain_top < gain_mid, "flattening expected: {gain_mid} then {gain_top}");
        let s = data.to_string();
        assert!(s.contains("Figure 1"));
    }
}
