//! Figure 2: the motivation experiment — IPC of a 1-cycle register file,
//! a 2-cycle file with full (two-level) bypass, and a 2-cycle file with a
//! single bypass level, per benchmark.
//!
//! The paper's findings to reproduce: the extra register file cycle costs
//! little when full bypass is present, but a lot with a single bypass
//! level (≈20% IPC for SpecInt95), and integer codes suffer more than FP.

use super::compare::{assemble_archs, compare_archs, plan_archs, CompareData};
use super::{one_cycle, two_cycle_full_bypass, two_cycle_single_bypass, ExperimentOpts};
use crate::scenario::Scenario;
use crate::{RunResult, RunSpec};
use rfcache_core::RegFileConfig;

/// Column labels of the Figure 2 table.
pub const LABELS: [&str; 3] = ["1cyc-1byp", "2cyc-2byp", "2cyc-1byp"];

const TITLE: &str = "Figure 2: register file latency and bypass levels (IPC)";

fn archs() -> [(&'static str, RegFileConfig); 3] {
    [
        (LABELS[0], one_cycle()),
        (LABELS[1], two_cycle_full_bypass()),
        (LABELS[2], two_cycle_single_bypass()),
    ]
}

/// Plans the Figure 2 simulation specs.
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    plan_archs(opts, &archs())
}

/// Assembles the results of [`plan`] into the Figure 2 matrix.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> CompareData {
    assemble_archs(opts, TITLE, &archs(), results)
}

/// Runs the Figure 2 experiment.
pub fn run(opts: &ExperimentOpts) -> CompareData {
    compare_archs(opts, TITLE, &archs())
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "fig2",
        "1-cycle vs 2-cycle register files, bypass levels",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let data = run(&ExperimentOpts::smoke());
        // 1-cycle >= 2-cycle full bypass >= 2-cycle single bypass, and the
        // single-bypass penalty is the largest gap (the paper's point).
        let (i_full, f_full) = data.hmean_ratio(LABELS[0], LABELS[1]).unwrap();
        let (i_single, f_single) = data.hmean_ratio(LABELS[0], LABELS[2]).unwrap();
        assert!(i_full >= 0.99, "{i_full}");
        assert!(f_full >= 0.99, "{f_full}");
        assert!(i_single > i_full, "single bypass must cost more (int)");
        assert!(f_single > f_full, "single bypass must cost more (fp)");
        // Integer codes are more sensitive than FP codes.
        assert!(i_single > f_single * 0.95, "int {i_single} vs fp {f_single}");
    }
}
