//! Figure 3: cumulative distribution of the number of registers holding a
//! value that is a source operand of (a) any unexecuted instruction in
//! the window and (b) an unexecuted instruction whose operands are all
//! ready.
//!
//! The paper's observation: ~90% of the time, no more than 4–5 registers
//! hold such "needed" values — the justification for a 16-entry upper
//! bank.

use super::{one_cycle, ExperimentOpts};
use crate::scenario::{Scenario, ScenarioReport};
use crate::{run_suite_jobs, RunResult, RunSpec, TextTable};
use rfcache_pipeline::{OccupancyHistogram, PipelineConfig};
use std::fmt;

/// Register counts tabulated by `Display` and [`ScenarioReport::to_table`].
const TABLE_POINTS: [usize; 14] = [0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32];

/// Aggregated occupancy distributions per suite.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// SpecInt95, "value & instruction" (solid line).
    pub int_value: OccupancyHistogram,
    /// SpecInt95, "value & ready instruction" (dashed line).
    pub int_ready: OccupancyHistogram,
    /// SpecFP95, "value & instruction".
    pub fp_value: OccupancyHistogram,
    /// SpecFP95, "value & ready instruction".
    pub fp_ready: OccupancyHistogram,
}

/// Plans the Figure 3 simulation specs (both suites with occupancy
/// sampling enabled).
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    let pipeline = PipelineConfig::default().with_occupancy_sampling();
    int.iter()
        .chain(fp.iter())
        .map(|b| {
            RunSpec::known(b, one_cycle())
                .pipeline(pipeline)
                .insts(opts.insts)
                .warmup(opts.warmup)
                .seed(opts.seed)
        })
        .collect()
}

/// Assembles the results of [`plan`] into the per-suite histograms.
pub fn assemble(_opts: &ExperimentOpts, results: Vec<RunResult>) -> Fig3Data {
    let mut data = Fig3Data {
        int_value: OccupancyHistogram::default(),
        int_ready: OccupancyHistogram::default(),
        fp_value: OccupancyHistogram::default(),
        fp_ready: OccupancyHistogram::default(),
    };
    for r in &results {
        if r.fp {
            data.fp_value.merge(&r.metrics.occupancy_value);
            data.fp_ready.merge(&r.metrics.occupancy_ready);
        } else {
            data.int_value.merge(&r.metrics.occupancy_value);
            data.int_ready.merge(&r.metrics.occupancy_ready);
        }
    }
    data
}

/// Runs the Figure 3 experiment.
pub fn run(opts: &ExperimentOpts) -> Fig3Data {
    let results = run_suite_jobs(&plan(opts), opts.jobs);
    assemble(opts, results)
}

impl fmt::Display for Fig3Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: cumulative distribution of registers with live needed values (% of cycles)"
        )?;
        let mut t = TextTable::new(vec![
            "#registers".into(),
            "Int value&inst".into(),
            "Int value&ready".into(),
            "FP value&inst".into(),
            "FP value&ready".into(),
        ]);
        for n in TABLE_POINTS {
            t.row(vec![
                n.to_string(),
                format!("{:.1}", self.int_value.cumulative_at(n) * 100.0),
                format!("{:.1}", self.int_ready.cumulative_at(n) * 100.0),
                format!("{:.1}", self.fp_value.cumulative_at(n) * 100.0),
                format!("{:.1}", self.fp_ready.cumulative_at(n) * 100.0),
            ]);
        }
        t.fmt(f)?;
        writeln!(
            f,
            "90th percentile: int value {} / ready {}, fp value {} / ready {} registers",
            self.int_value.percentile(0.9),
            self.int_ready.percentile(0.9),
            self.fp_value.percentile(0.9),
            self.fp_ready.percentile(0.9),
        )
    }
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "fig3",
        "cumulative distribution of live/needed register values",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

impl ScenarioReport for Fig3Data {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "registers".into(),
            "int_value_cum".into(),
            "int_ready_cum".into(),
            "fp_value_cum".into(),
            "fp_ready_cum".into(),
        ]);
        for n in TABLE_POINTS {
            t.row_f64(
                &n.to_string(),
                &[
                    self.int_value.cumulative_at(n),
                    self.int_ready.cumulative_at(n),
                    self.fp_value.cumulative_at(n),
                    self.fp_ready.cumulative_at(n),
                ],
            );
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        let pcts =
            |h: &OccupancyHistogram| vec![h.percentile(0.5) as f64, h.percentile(0.9) as f64];
        vec![
            ("int_value_p50_p90".into(), pcts(&self.int_value)),
            ("int_ready_p50_p90".into(), pcts(&self.int_ready)),
            ("fp_value_p50_p90".into(), pcts(&self.fp_value)),
            ("fp_ready_p50_p90".into(), pcts(&self.fp_ready)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_values_are_fewer_and_distribution_is_tight() {
        let data = run(&ExperimentOpts::smoke());
        assert!(data.int_value.samples() > 0);
        // Ready values are a subset of live values.
        assert!(data.int_ready.percentile(0.9) <= data.int_value.percentile(0.9));
        assert!(data.fp_ready.percentile(0.9) <= data.fp_value.percentile(0.9));
        // The paper's point: a small number of registers suffices 90% of
        // the time (far fewer than the 128 physical registers).
        assert!(data.int_ready.percentile(0.9) <= 24);
        let s = data.to_string();
        assert!(s.contains("90th percentile"));
    }
}
