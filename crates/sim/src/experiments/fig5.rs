//! Figure 5: the four register-file-cache configurations — {ready,
//! non-bypass} caching × {fetch-on-demand, prefetch-first-pair} — at
//! unlimited bandwidth.
//!
//! Paper findings: non-bypass caching beats ready caching by ~3% (int) /
//! ~2% (fp); prefetching helps a few programs at unlimited bandwidth and
//! more under port limits.

use super::compare::{assemble_archs, compare_archs, plan_archs, CompareData};
use super::{rfc, ExperimentOpts};
use crate::scenario::Scenario;
use crate::{RunResult, RunSpec};
use rfcache_core::{CachingPolicy, FetchPolicy, RegFileConfig};

/// Column labels of the Figure 5 table.
pub const LABELS: [&str; 4] =
    ["ready+demand", "nonbyp+demand", "ready+prefetch", "nonbyp+prefetch"];

const TITLE: &str = "Figure 5: register file cache caching and fetch policies (IPC)";

fn archs() -> [(&'static str, RegFileConfig); 4] {
    [
        (LABELS[0], rfc(CachingPolicy::Ready, FetchPolicy::OnDemand)),
        (LABELS[1], rfc(CachingPolicy::NonBypass, FetchPolicy::OnDemand)),
        (LABELS[2], rfc(CachingPolicy::Ready, FetchPolicy::PrefetchFirstPair)),
        (LABELS[3], rfc(CachingPolicy::NonBypass, FetchPolicy::PrefetchFirstPair)),
    ]
}

/// Plans the Figure 5 simulation specs.
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    plan_archs(opts, &archs())
}

/// Assembles the results of [`plan`] into the Figure 5 matrix.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> CompareData {
    assemble_archs(opts, TITLE, &archs(), results)
}

/// Runs the Figure 5 experiment.
pub fn run(opts: &ExperimentOpts) -> CompareData {
    compare_archs(opts, TITLE, &archs())
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new("fig5", "register-file-cache caching x fetch policies", plan, |opts, results| {
        Box::new(assemble(opts, results))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_bypass_caching_wins() {
        let data = run(&ExperimentOpts::smoke());
        let (int_ratio, fp_ratio) = data.hmean_ratio(LABELS[3], LABELS[2]).unwrap();
        assert!(int_ratio > 0.99, "non-bypass vs ready (int): {int_ratio}");
        assert!(fp_ratio > 0.99, "non-bypass vs ready (fp): {fp_ratio}");
        // Prefetching must not hurt meaningfully at unlimited bandwidth.
        let (i, _f) = data.hmean_ratio(LABELS[3], LABELS[1]).unwrap();
        assert!(i > 0.97, "prefetch-first-pair must not cost IPC: {i}");
    }
}
