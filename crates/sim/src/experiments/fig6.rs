//! Figure 6: the register file cache against single-banked files with the
//! same (single-level) bypass complexity.
//!
//! Paper findings: the register file cache gains ~10% (int) / ~4% (fp)
//! over the 2-cycle file and stays within ~10% (int) / ~2% (fp) of the
//! 1-cycle file.

use super::compare::{assemble_archs, compare_archs, plan_archs, CompareData};
use super::{one_cycle, rfc_best, two_cycle_single_bypass, ExperimentOpts};
use crate::scenario::Scenario;
use crate::{RunResult, RunSpec};
use rfcache_core::RegFileConfig;

/// Column labels of the Figure 6 table.
pub const LABELS: [&str; 3] = ["1-cycle", "rfc", "2-cycle"];

const TITLE: &str = "Figure 6: register file cache vs single bank, one bypass level (IPC)";

fn archs() -> [(&'static str, RegFileConfig); 3] {
    [(LABELS[0], one_cycle()), (LABELS[1], rfc_best()), (LABELS[2], two_cycle_single_bypass())]
}

/// Plans the Figure 6 simulation specs.
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    plan_archs(opts, &archs())
}

/// Assembles the results of [`plan`] into the Figure 6 matrix.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> CompareData {
    assemble_archs(opts, TITLE, &archs(), results)
}

/// Runs the Figure 6 experiment.
pub fn run(opts: &ExperimentOpts) -> CompareData {
    compare_archs(opts, TITLE, &archs())
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "fig6",
        "register file cache vs single bank, one bypass level",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_sits_between_the_single_banked_files() {
        let data = run(&ExperimentOpts::smoke());
        let (int_vs_two, fp_vs_two) = data.hmean_ratio(LABELS[1], LABELS[2]).unwrap();
        assert!(int_vs_two > 1.03, "rfc must clearly beat the 2-cycle file (int): {int_vs_two}");
        assert!(fp_vs_two > 1.0, "rfc must beat the 2-cycle file (fp): {fp_vs_two}");
        let (int_vs_one, fp_vs_one) = data.hmean_ratio(LABELS[1], LABELS[0]).unwrap();
        assert!(int_vs_one < 1.02, "rfc must not beat the 1-cycle file (int): {int_vs_one}");
        assert!(int_vs_one > 0.80, "rfc must stay close to the 1-cycle file: {int_vs_one}");
        assert!(fp_vs_one > 0.80, "{fp_vs_one}");
    }
}
