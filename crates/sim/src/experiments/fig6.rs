//! Figure 6: the register file cache against single-banked files with the
//! same (single-level) bypass complexity.
//!
//! Paper findings: the register file cache gains ~10% (int) / ~4% (fp)
//! over the 2-cycle file and stays within ~10% (int) / ~2% (fp) of the
//! 1-cycle file.

use super::compare::{compare_archs, CompareData};
use super::{one_cycle, rfc_best, two_cycle_single_bypass, ExperimentOpts};
use crate::scenario::Scenario;

/// Column labels of the Figure 6 table.
pub const LABELS: [&str; 3] = ["1-cycle", "rfc", "2-cycle"];

/// Runs the Figure 6 experiment.
pub fn run(opts: &ExperimentOpts) -> CompareData {
    compare_archs(
        opts,
        "Figure 6: register file cache vs single bank, one bypass level (IPC)",
        &[
            (LABELS[0], one_cycle()),
            (LABELS[1], rfc_best()),
            (LABELS[2], two_cycle_single_bypass()),
        ],
    )
}

/// Registry entry for the scenario engine.
pub const SCENARIO: Scenario =
    Scenario::new("fig6", "register file cache vs single bank, one bypass level", |opts| {
        Box::new(run(opts))
    });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_sits_between_the_single_banked_files() {
        let data = run(&ExperimentOpts::smoke());
        let (int_vs_two, fp_vs_two) = data.hmean_ratio(LABELS[1], LABELS[2]).unwrap();
        assert!(int_vs_two > 1.03, "rfc must clearly beat the 2-cycle file (int): {int_vs_two}");
        assert!(fp_vs_two > 1.0, "rfc must beat the 2-cycle file (fp): {fp_vs_two}");
        let (int_vs_one, fp_vs_one) = data.hmean_ratio(LABELS[1], LABELS[0]).unwrap();
        assert!(int_vs_one < 1.02, "rfc must not beat the 1-cycle file (int): {int_vs_one}");
        assert!(int_vs_one > 0.80, "rfc must stay close to the 1-cycle file: {int_vs_one}");
        assert!(fp_vs_one > 0.80, "{fp_vs_one}");
    }
}
