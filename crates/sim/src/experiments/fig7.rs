//! Figure 7: the register file cache against a 2-cycle single bank with a
//! *full* bypass network.
//!
//! Paper finding: the conventional file wins by ~8% (int) / ~2% (fp), but
//! needs a much more complex (two-level) bypass network.

use super::compare::{compare_archs, CompareData};
use super::{rfc_best, two_cycle_full_bypass, ExperimentOpts};
use crate::scenario::Scenario;

/// Column labels of the Figure 7 table.
pub const LABELS: [&str; 2] = ["rfc", "2cyc-full-bypass"];

/// Runs the Figure 7 experiment.
pub fn run(opts: &ExperimentOpts) -> CompareData {
    compare_archs(
        opts,
        "Figure 7: register file cache vs 2-cycle single bank with full bypass (IPC)",
        &[(LABELS[0], rfc_best()), (LABELS[1], two_cycle_full_bypass())],
    )
}

/// Registry entry for the scenario engine.
pub const SCENARIO: Scenario =
    Scenario::new("fig7", "register file cache vs two-cycle full bypass", |opts| {
        Box::new(run(opts))
    });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bypass_file_wins_modestly() {
        let data = run(&ExperimentOpts::smoke());
        let (int_ratio, fp_ratio) = data.hmean_ratio(LABELS[0], LABELS[1]).unwrap();
        // The rfc is at most slightly ahead and at worst moderately
        // behind — its selling point is the single-level bypass at equal
        // or better IPC than the full-bypass file's.
        assert!(int_ratio < 1.12, "{int_ratio}");
        assert!(int_ratio > 0.85, "{int_ratio}");
        assert!(fp_ratio > 0.85, "{fp_ratio}");
    }
}
