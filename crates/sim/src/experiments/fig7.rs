//! Figure 7: the register file cache against a 2-cycle single bank with a
//! *full* bypass network.
//!
//! Paper finding: the conventional file wins by ~8% (int) / ~2% (fp), but
//! needs a much more complex (two-level) bypass network.

use super::compare::{assemble_archs, compare_archs, plan_archs, CompareData};
use super::{rfc_best, two_cycle_full_bypass, ExperimentOpts};
use crate::scenario::Scenario;
use crate::{RunResult, RunSpec};
use rfcache_core::RegFileConfig;

/// Column labels of the Figure 7 table.
pub const LABELS: [&str; 2] = ["rfc", "2cyc-full-bypass"];

const TITLE: &str = "Figure 7: register file cache vs 2-cycle single bank with full bypass (IPC)";

fn archs() -> [(&'static str, RegFileConfig); 2] {
    [(LABELS[0], rfc_best()), (LABELS[1], two_cycle_full_bypass())]
}

/// Plans the Figure 7 simulation specs.
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    plan_archs(opts, &archs())
}

/// Assembles the results of [`plan`] into the Figure 7 matrix.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> CompareData {
    assemble_archs(opts, TITLE, &archs(), results)
}

/// Runs the Figure 7 experiment.
pub fn run(opts: &ExperimentOpts) -> CompareData {
    compare_archs(opts, TITLE, &archs())
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new("fig7", "register file cache vs two-cycle full bypass", plan, |opts, results| {
        Box::new(assemble(opts, results))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bypass_file_wins_modestly() {
        let data = run(&ExperimentOpts::smoke());
        let (int_ratio, fp_ratio) = data.hmean_ratio(LABELS[0], LABELS[1]).unwrap();
        // The rfc is at most slightly ahead and at worst moderately
        // behind — its selling point is the single-level bypass at equal
        // or better IPC than the full-bypass file's.
        assert!(int_ratio < 1.12, "{int_ratio}");
        assert!(int_ratio > 0.85, "{int_ratio}");
        assert!(fp_ratio > 0.85, "{fp_ratio}");
    }
}
