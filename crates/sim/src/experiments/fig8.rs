//! Figure 8: relative performance as a function of register file area.
//!
//! For each architecture (1-cycle single-banked, 2-cycle single-banked,
//! register file cache) the number of read/write ports (and buses) is
//! swept; configurations dominated by a cheaper, faster sibling are
//! discarded (Pareto frontier); performance is IPC relative to the
//! 1-cycle single-banked file with unlimited ports.
//!
//! Paper finding: the register file cache dominates the 2-cycle file over
//! the whole area range and tracks the 1-cycle file closely, occasionally
//! beating it at equal area (more upper-level ports for the same silicon).

use super::{one_cycle, ExperimentOpts};
use crate::scenario::{Scenario, ScenarioReport};
use crate::{
    harmonic_mean, pareto_frontier, run_suite_jobs, ParetoPoint, RunResult, RunSpec, TextTable,
};
use rfcache_area::{SingleBankDesign, TwoLevelDesign};
use rfcache_core::{PortLimits, RegFileCacheConfig, RegFileConfig, SingleBankConfig};
use std::fmt;

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Human-readable port configuration.
    pub label: String,
    /// Register file area, in the paper's 10K λ² units.
    pub area_10k: f64,
    /// Suite harmonic-mean IPC relative to the unlimited-port 1-cycle
    /// baseline.
    pub rel_perf: f64,
}

/// Pareto frontiers per architecture and suite.
#[derive(Debug, Clone)]
pub struct Fig8Data {
    /// Architecture labels (fixed order: 1-cycle, 2-cycle, rfc).
    pub archs: Vec<String>,
    /// `frontiers[arch][suite]` with suite 0 = SpecInt95, 1 = SpecFP95.
    pub frontiers: Vec<[Vec<Fig8Point>; 2]>,
}

struct Candidate {
    label: String,
    area_10k: f64,
    rf: RegFileConfig,
}

fn single_bank_candidates(stages: u32, quick: bool) -> Vec<Candidate> {
    let reads: &[u32] = if quick { &[3, 8] } else { &[2, 3, 4, 6, 8] };
    let writes: &[u32] = if quick { &[2] } else { &[1, 2, 3, 4] };
    let mut out = Vec::new();
    for &r in reads {
        for &w in writes {
            let design = SingleBankDesign::new(128, 64, r, w, stages);
            let base = if stages == 1 {
                SingleBankConfig::one_cycle()
            } else {
                SingleBankConfig::two_cycle_single_bypass()
            };
            out.push(Candidate {
                label: format!("{r}R/{w}W"),
                area_10k: design.area_lambda2() / 1e4,
                rf: RegFileConfig::Single(base.with_ports(PortLimits::limited(r, w))),
            });
        }
    }
    out
}

fn rfc_candidates(quick: bool) -> Vec<Candidate> {
    let upper_reads: &[u32] = if quick { &[4] } else { &[3, 4, 6] };
    let upper_writes: &[u32] = if quick { &[2] } else { &[2, 3, 4] };
    let buses: &[u32] = if quick { &[2] } else { &[1, 2, 3] };
    let lower_writes: &[u32] = &[2];
    let mut out = Vec::new();
    for &r in upper_reads {
        for &w in upper_writes {
            for &b in buses {
                for &lw in lower_writes {
                    let design = TwoLevelDesign::new(128, 16, 64, r, w, lw, b);
                    out.push(Candidate {
                        label: format!("{r}R/{w}W/{b}B"),
                        area_10k: design.area_lambda2() / 1e4,
                        rf: RegFileConfig::Cache(
                            RegFileCacheConfig::paper_default().with_ports(r, w, lw, b),
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The three candidate sets, in [`Fig8Data::archs`] order.
fn arch_candidates(quick: bool) -> [(&'static str, Vec<Candidate>); 3] {
    [
        ("1-cycle", single_bank_candidates(1, quick)),
        ("2-cycle", single_bank_candidates(2, quick)),
        ("rfc", rfc_candidates(quick)),
    ]
}

/// Plans the Figure 8 simulation specs: the unlimited-port 1-cycle
/// baseline first, then every candidate of every architecture on both
/// suites (candidate-major, benchmark-minor).
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    let mut specs: Vec<RunSpec> = int
        .iter()
        .chain(fp.iter())
        .map(|b| {
            RunSpec::known(b, one_cycle()).insts(opts.insts).warmup(opts.warmup).seed(opts.seed)
        })
        .collect();
    for (_, candidates) in arch_candidates(opts.quick) {
        for cand in &candidates {
            for b in int.iter().chain(fp.iter()) {
                specs.push(
                    RunSpec::known(b, cand.rf)
                        .insts(opts.insts)
                        .warmup(opts.warmup)
                        .seed(opts.seed),
                );
            }
        }
    }
    specs
}

/// Assembles the results of [`plan`] into the per-architecture Pareto
/// frontiers.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> Fig8Data {
    let (int, fp) = super::sweep_suites(opts);
    let per_bench = int.len() + fp.len();

    let base_results = &results[..per_bench];
    let base_hmean = |fp_suite: bool| {
        let vals: Vec<f64> =
            base_results.iter().filter(|r| r.fp == fp_suite).map(|r| r.ipc()).collect();
        harmonic_mean(&vals).unwrap_or(1.0)
    };
    let base = [base_hmean(false), base_hmean(true)];

    let mut archs = Vec::new();
    let mut frontiers = Vec::new();
    let mut offset = per_bench;
    for (name, candidates) in arch_candidates(opts.quick) {
        let results = &results[offset..offset + candidates.len() * per_bench];
        offset += candidates.len() * per_bench;

        let mut suite_points: [Vec<ParetoPoint<String>>; 2] = [Vec::new(), Vec::new()];
        for (ci, cand) in candidates.iter().enumerate() {
            let slice = &results[ci * per_bench..(ci + 1) * per_bench];
            for (si, fp_suite) in [(0usize, false), (1usize, true)] {
                let vals: Vec<f64> =
                    slice.iter().filter(|r| r.fp == fp_suite).map(|r| r.ipc()).collect();
                let hmean = harmonic_mean(&vals).unwrap_or(0.0);
                suite_points[si].push(ParetoPoint {
                    area: cand.area_10k,
                    perf: hmean / base[si],
                    payload: cand.label.clone(),
                });
            }
        }
        let fronts = suite_points.map(|pts| {
            pareto_frontier(pts)
                .into_iter()
                .map(|p| Fig8Point { label: p.payload, area_10k: p.area, rel_perf: p.perf })
                .collect::<Vec<_>>()
        });
        archs.push(name.to_string());
        frontiers.push(fronts);
    }
    assert_eq!(offset, results.len(), "result count must match the plan");
    Fig8Data { archs, frontiers }
}

/// Runs the Figure 8 experiment.
pub fn run(opts: &ExperimentOpts) -> Fig8Data {
    let results = run_suite_jobs(&plan(opts), opts.jobs);
    assemble(opts, results)
}

impl Fig8Data {
    /// The frontier of `arch` for the given suite (0 = int, 1 = fp).
    pub fn frontier(&self, arch: &str, suite: usize) -> Option<&[Fig8Point]> {
        let idx = self.archs.iter().position(|a| a == arch)?;
        Some(&self.frontiers[idx][suite])
    }

    /// Best relative performance achieved by `arch` on the suite.
    pub fn best_perf(&self, arch: &str, suite: usize) -> Option<f64> {
        self.frontier(arch, suite)?
            .iter()
            .map(|p| p.rel_perf)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

impl fmt::Display for Fig8Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: Pareto frontiers of relative performance vs area (10K λ²)")?;
        for (si, suite) in ["SpecInt95", "SpecFP95"].iter().enumerate() {
            writeln!(f, "\n[{suite}] (performance relative to 1-cycle, unlimited ports)")?;
            let mut t = TextTable::new(vec![
                "architecture".into(),
                "ports".into(),
                "area".into(),
                "rel perf".into(),
            ]);
            for (ai, arch) in self.archs.iter().enumerate() {
                for p in &self.frontiers[ai][si] {
                    t.row(vec![
                        arch.clone(),
                        p.label.clone(),
                        format!("{:.0}", p.area_10k),
                        format!("{:.3}", p.rel_perf),
                    ]);
                }
            }
            t.fmt(f)?;
        }
        Ok(())
    }
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "fig8",
        "relative performance vs area (Pareto frontiers)",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

impl ScenarioReport for Fig8Data {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "architecture".into(),
            "suite".into(),
            "ports".into(),
            "area_10k".into(),
            "rel_perf".into(),
        ]);
        for (arch, frontier) in self.archs.iter().zip(&self.frontiers) {
            for (suite, points) in ["int", "fp"].iter().zip(frontier.iter()) {
                for p in points {
                    t.row(vec![
                        arch.clone(),
                        (*suite).into(),
                        p.label.clone(),
                        format!("{:.1}", p.area_10k),
                        format!("{:.3}", p.rel_perf),
                    ]);
                }
            }
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        let mut out = Vec::new();
        for (arch, frontier) in self.archs.iter().zip(&self.frontiers) {
            for (suite, points) in ["int", "fp"].iter().zip(frontier.iter()) {
                out.push((
                    format!("area[{arch}][{suite}]"),
                    points.iter().map(|p| p.area_10k).collect(),
                ));
                out.push((
                    format!("rel_perf[{arch}][{suite}]"),
                    points.iter().map(|p| p.rel_perf).collect(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontiers_are_monotone_and_rfc_beats_two_cycle() {
        let data = run(&ExperimentOpts::smoke());
        assert_eq!(data.archs, vec!["1-cycle", "2-cycle", "rfc"]);
        for ai in 0..data.archs.len() {
            for si in 0..2 {
                let front = &data.frontiers[ai][si];
                assert!(!front.is_empty());
                for w in front.windows(2) {
                    assert!(w[0].area_10k <= w[1].area_10k);
                    assert!(w[0].rel_perf < w[1].rel_perf);
                }
            }
        }
        // The rfc reaches higher relative performance than the 2-cycle
        // file on the integer suite (the paper's headline for Figure 8).
        let rfc_best = data.best_perf("rfc", 0).unwrap();
        let two_best = data.best_perf("2-cycle", 0).unwrap();
        assert!(rfc_best > two_best, "rfc {rfc_best} vs 2-cycle {two_best}");
    }
}
