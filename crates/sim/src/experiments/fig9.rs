//! Figure 9: instruction throughput with the register file access time
//! factored into the processor cycle time.
//!
//! For each Table 2 configuration (C1–C4), each architecture is simulated
//! with its port limits; throughput is `IPC / cycle_time_ns`, normalized
//! to the non-pipelined single-banked file at C1.
//!
//! Paper finding: choosing the best configuration per architecture, the
//! register file cache outperforms the non-pipelined single bank by ~87%
//! (int) / ~92% (fp) and the (optimistically) pipelined two-cycle bank by
//! ~9% (int).

use super::ExperimentOpts;
use crate::scenario::{Scenario, ScenarioReport};
use crate::{harmonic_mean, run_suite_jobs, RunResult, RunSpec, TextTable};
use rfcache_area::table2_configs;
use rfcache_core::{PortLimits, RegFileCacheConfig, RegFileConfig, SingleBankConfig};
use std::fmt;

/// Architecture labels, fixed order.
pub const ARCHS: [&str; 3] = ["1-cycle", "rfc", "2-cycle-1byp"];

/// Relative throughput of one architecture at one configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Cell {
    /// Suite harmonic-mean IPC.
    pub ipc: f64,
    /// Cycle time in ns from the analytical model.
    pub cycle_ns: f64,
    /// Throughput relative to the 1-cycle architecture at C1.
    pub relative: f64,
}

/// Results of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Data {
    /// Configuration names (C1..C4).
    pub configs: Vec<String>,
    /// `cells[suite][config][arch]`, suite 0 = SpecInt95, 1 = SpecFP95.
    pub cells: Vec<Vec<Vec<Fig9Cell>>>,
}

/// All (config, arch) register file configs plus cycle times, in plan
/// order.
fn setups() -> Vec<(String, &'static str, RegFileConfig, f64)> {
    let table = table2_configs();
    let mut setups: Vec<(String, &'static str, RegFileConfig, f64)> = Vec::new();
    for cfg in table {
        let s1 = cfg.single_bank_1stage(128);
        let s2 = cfg.single_bank_2stage(128);
        let rfc = cfg.register_file_cache(128, 16);
        setups.push((
            cfg.name.to_string(),
            ARCHS[0],
            RegFileConfig::Single(
                SingleBankConfig::one_cycle()
                    .with_ports(PortLimits::limited(cfg.single_read, cfg.single_write)),
            ),
            s1.cycle_time_ns(),
        ));
        setups.push((
            cfg.name.to_string(),
            ARCHS[1],
            RegFileConfig::Cache(RegFileCacheConfig::paper_default().with_ports(
                cfg.rfc_upper_read,
                cfg.rfc_upper_write,
                cfg.rfc_lower_write,
                cfg.rfc_buses,
            )),
            rfc.cycle_time_ns(),
        ));
        setups.push((
            cfg.name.to_string(),
            ARCHS[2],
            RegFileConfig::Single(
                SingleBankConfig::two_cycle_single_bypass()
                    .with_ports(PortLimits::limited(cfg.single_read, cfg.single_write)),
            ),
            s2.cycle_time_ns(),
        ));
    }
    setups
}

/// Plans the Figure 9 simulation specs: every (config, arch) setup on
/// both suites (setup-major, benchmark-minor).
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    let mut specs = Vec::new();
    for (_, _, rf, _) in &setups() {
        for b in int.iter().chain(fp.iter()) {
            specs
                .push(RunSpec::known(b, *rf).insts(opts.insts).warmup(opts.warmup).seed(opts.seed));
        }
    }
    specs
}

/// Assembles the results of [`plan`] into the throughput cells.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> Fig9Data {
    let (int, fp) = super::sweep_suites(opts);
    let table = table2_configs();
    let setups = setups();
    let per_setup = int.len() + fp.len();
    assert_eq!(results.len(), setups.len() * per_setup, "result count must match the plan");

    let mut cells = vec![vec![Vec::new(); table.len()]; 2];
    let mut baseline = [0.0f64; 2];
    for (si_setup, (_, _, _, cycle_ns)) in setups.iter().enumerate() {
        let slice = &results[si_setup * per_setup..(si_setup + 1) * per_setup];
        let config_idx = si_setup / ARCHS.len();
        for (suite, fp_suite) in [(0usize, false), (1usize, true)] {
            let vals: Vec<f64> =
                slice.iter().filter(|r| r.fp == fp_suite).map(|r| r.ipc()).collect();
            let ipc = harmonic_mean(&vals).unwrap_or(0.0);
            let throughput = ipc / cycle_ns;
            // The first setup of each suite is "1-cycle at C1": the
            // normalization baseline.
            if si_setup == 0 {
                baseline[suite] = throughput;
            }
            cells[suite][config_idx].push(Fig9Cell {
                ipc,
                cycle_ns: *cycle_ns,
                relative: throughput / baseline[suite],
            });
        }
    }

    Fig9Data { configs: table.iter().map(|c| c.name.to_string()).collect(), cells }
}

/// Runs the Figure 9 experiment.
pub fn run(opts: &ExperimentOpts) -> Fig9Data {
    let results = run_suite_jobs(&plan(opts), opts.jobs);
    assemble(opts, results)
}

impl Fig9Data {
    /// Best relative throughput per architecture on a suite
    /// (0 = int, 1 = fp), in [`ARCHS`] order.
    pub fn best_per_arch(&self, suite: usize) -> Vec<f64> {
        (0..ARCHS.len())
            .map(|ai| {
                self.cells[suite]
                    .iter()
                    .map(|cfg| cfg[ai].relative)
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Speedup of the register file cache's best configuration over the
    /// non-pipelined single bank's best, per suite.
    pub fn rfc_speedup(&self, suite: usize) -> f64 {
        let best = self.best_per_arch(suite);
        best[1] / best[0]
    }
}

impl fmt::Display for Fig9Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: relative instruction throughput with cycle time factored in")?;
        for (suite, name) in ["SpecInt95", "SpecFP95"].iter().enumerate() {
            writeln!(f, "\n[{name}] (normalized to 1-cycle @ C1)")?;
            let mut t = TextTable::new(vec![
                "config".into(),
                "1-cycle".into(),
                "rfc".into(),
                "2-cycle-1byp".into(),
            ]);
            for (ci, cfg) in self.configs.iter().enumerate() {
                let row: Vec<f64> = self.cells[suite][ci].iter().map(|c| c.relative).collect();
                t.row_f64(cfg, &row);
            }
            t.fmt(f)?;
            let best = self.best_per_arch(suite);
            writeln!(
                f,
                "best: 1-cycle {:.2}, rfc {:.2}, 2-cycle {:.2} → rfc speedup over 1-cycle: {:.0}%",
                best[0],
                best[1],
                best[2],
                (self.rfc_speedup(suite) - 1.0) * 100.0
            )?;
        }
        Ok(())
    }
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "fig9",
        "instruction throughput with cycle time factored in",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

impl ScenarioReport for Fig9Data {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "config".into(),
            "suite".into(),
            "arch".into(),
            "ipc".into(),
            "cycle_ns".into(),
            "relative".into(),
        ]);
        for (si, suite) in ["int", "fp"].iter().enumerate() {
            for (ci, config) in self.configs.iter().enumerate() {
                for (ai, cell) in self.cells[si][ci].iter().enumerate() {
                    t.row(vec![
                        config.clone(),
                        (*suite).into(),
                        ARCHS[ai].into(),
                        format!("{:.3}", cell.ipc),
                        format!("{:.2}", cell.cycle_ns),
                        format!("{:.3}", cell.relative),
                    ]);
                }
            }
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        let mut out = Vec::new();
        for (si, suite) in ["int", "fp"].iter().enumerate() {
            for (ci, config) in self.configs.iter().enumerate() {
                out.push((
                    format!("relative[{suite}][{config}]"),
                    self.cells[si][ci].iter().map(|c| c.relative).collect(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_dominates_when_cycle_time_counts() {
        let data = run(&ExperimentOpts::smoke());
        assert_eq!(data.configs, vec!["C1", "C2", "C3", "C4"]);
        for suite in 0..2 {
            let best = data.best_per_arch(suite);
            // The rfc must crush the non-pipelined file once the clock is
            // set by the register file (paper: +87% int / +92% fp).
            assert!(
                data.rfc_speedup(suite) > 1.3,
                "suite {suite}: rfc {} vs 1-cycle {}",
                best[1],
                best[0]
            );
            // And be at least competitive with the optimistic 2-cycle file.
            assert!(best[1] > 0.85 * best[2], "suite {suite}: {best:?}");
        }
    }
}
