//! One module per figure and table of the paper's evaluation (§2 and §4).
//!
//! Every experiment exposes `run(&ExperimentOpts) -> <FigureData>`; the
//! returned structs carry the raw series (for the integration tests) and
//! render the paper's rows via `Display`. The `experiments` binary in
//! `rfcache-bench` wraps these with a command-line interface.
//!
//! | Module | Paper content |
//! |---|---|
//! | [`fig1`] | IPC vs number of physical registers (48–256) |
//! | [`fig2`] | 1-cycle vs 2-cycle register files, bypass levels |
//! | [`fig3`] | cumulative distribution of live/needed register values |
//! | [`readstats`] | §3: fraction of values read at most once |
//! | [`fig5`] | register-file-cache caching × fetch policies |
//! | [`fig6`] | register file cache vs single bank, one bypass level |
//! | [`fig7`] | register file cache vs two-cycle full bypass |
//! | [`fig8`] | relative performance vs area (Pareto frontiers) |
//! | [`table2`] | C1–C4 port configurations: area and cycle time |
//! | [`fig9`] | instruction throughput with cycle time factored in |
//! | [`ablation`] | beyond the paper: upper-bank size, replacement, buses |
//! | [`onelevel`] | beyond the paper (§6 future work): one-level banked organization |
//! | [`sources`] | beyond the paper: operand-source and transfer-traffic breakdown |

pub mod ablation;
pub mod compare;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod onelevel;
pub mod readstats;
pub mod sources;
pub mod table2;

use rfcache_core::{
    CachingPolicy, FetchPolicy, RegFileCacheConfig, RegFileConfig, SingleBankConfig,
};

/// Common experiment options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOpts {
    /// Measured instructions per benchmark.
    pub insts: u64,
    /// Warmup instructions per benchmark (excluded from the counters).
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
    /// Reduced sweeps for smoke tests (affects fig8's port grid and the
    /// per-suite benchmark subsets of the heavyweight experiments).
    pub quick: bool,
    /// Worker threads for the benchmark sweeps (0 = one per available
    /// core); every experiment routes its specs through
    /// [`crate::run_suite_jobs`] with this count.
    pub jobs: usize,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            insts: crate::run::DEFAULT_INSTS,
            warmup: crate::run::DEFAULT_WARMUP,
            seed: 42,
            quick: false,
            jobs: 0,
        }
    }
}

impl ExperimentOpts {
    /// Small configuration for tests: two orders of magnitude fewer
    /// instructions and reduced sweeps.
    pub fn smoke() -> Self {
        ExperimentOpts { insts: 3_000, warmup: 500, seed: 42, quick: true, jobs: 0 }
    }

    /// Sets the worker-thread count (builder-style).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// The non-pipelined 1-cycle single-banked baseline (unlimited ports).
pub fn one_cycle() -> RegFileConfig {
    RegFileConfig::Single(SingleBankConfig::one_cycle())
}

/// The 2-cycle single-banked file with a single bypass level.
pub fn two_cycle_single_bypass() -> RegFileConfig {
    RegFileConfig::Single(SingleBankConfig::two_cycle_single_bypass())
}

/// The 2-cycle single-banked file with a full bypass network.
pub fn two_cycle_full_bypass() -> RegFileConfig {
    RegFileConfig::Single(SingleBankConfig::two_cycle_full_bypass())
}

/// A register file cache with the given policies (unlimited bandwidth).
pub fn rfc(caching: CachingPolicy, fetch: FetchPolicy) -> RegFileConfig {
    RegFileConfig::Cache(RegFileCacheConfig::paper_default().with_policies(caching, fetch))
}

/// The paper's best register-file-cache configuration: non-bypass caching
/// with prefetch-first-pair.
pub fn rfc_best() -> RegFileConfig {
    rfc(CachingPolicy::NonBypass, FetchPolicy::PrefetchFirstPair)
}

/// Benchmarks used by the heavyweight sweeps: the full suites normally, a
/// representative subset in quick mode.
pub(crate) fn sweep_suites(opts: &ExperimentOpts) -> (Vec<&'static str>, Vec<&'static str>) {
    if opts.quick {
        (vec!["gcc", "li"], vec!["mgrid", "swim"])
    } else {
        (
            vec!["compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"],
            vec![
                "applu", "apsi", "fpppp", "hydro2d", "mgrid", "su2cor", "swim", "tomcatv",
                "turb3d", "wave5",
            ],
        )
    }
}
