//! Extension experiment (the paper's §6 future work): the *one-level*
//! multiple-banked organization against the two-level register file
//! cache.
//!
//! A one-level organization splits the 128 physical registers over `N`
//! cheap banks (few ports each, no replication, no transfers); its cycle
//! time is set by one small bank, like the register file cache's upper
//! level, but reads that collide on a bank's ports must wait. This
//! experiment sweeps the bank count and per-bank ports and compares IPC
//! and area against the register file cache and the single-banked
//! baselines.

use super::{one_cycle, rfc_best, two_cycle_single_bypass, ExperimentOpts};
use crate::scenario::{Scenario, ScenarioReport};
use crate::{harmonic_mean, run_suite_jobs, RunResult, RunSpec, TextTable};
use rfcache_area::{BankGeometry, TwoLevelDesign};
use rfcache_core::{OneLevelBankedConfig, RegFileConfig};
use std::fmt;

/// One evaluated organization.
#[derive(Debug, Clone)]
pub struct OneLevelRow {
    /// Description of the organization.
    pub label: String,
    /// Register file area in 10K λ² (analytical model).
    pub area_10k: f64,
    /// Model cycle time in ns.
    pub cycle_ns: f64,
    /// SpecInt95 harmonic-mean IPC.
    pub int_hmean: f64,
    /// SpecFP95 harmonic-mean IPC.
    pub fp_hmean: f64,
}

/// Results of the one-level comparison.
#[derive(Debug, Clone)]
pub struct OneLevelData {
    /// Rows: baselines first, then the bank sweep.
    pub rows: Vec<OneLevelRow>,
}

/// Area and cycle time of an `N`-bank one-level file: `N` banks of
/// `128/N` registers, each with the given ports.
fn one_level_geometry(banks: u32, reads: u32, writes: u32) -> (f64, f64) {
    let per_bank = BankGeometry::new(128 / banks, 64, reads, writes);
    (f64::from(banks) * per_bank.area_lambda2() / 1e4, per_bank.access_time_ns())
}

/// All evaluated organizations — baselines then the bank sweep — as
/// `(label, config, area_10k, cycle_ns)`, in plan order.
fn setups(quick: bool) -> Vec<(String, RegFileConfig, f64, f64)> {
    let rfc_design = TwoLevelDesign::new(128, 16, 64, 4, 3, 2, 3);
    let single_design = rfcache_area::SingleBankDesign::new(128, 64, 16, 8, 1);
    let mut setups: Vec<(String, RegFileConfig, f64, f64)> = vec![
        (
            "single 1-cycle (16R/8W)".into(),
            one_cycle(),
            single_design.area_lambda2() / 1e4,
            single_design.cycle_time_ns(),
        ),
        (
            "single 2-cycle (16R/8W)".into(),
            two_cycle_single_bypass(),
            single_design.area_lambda2() / 1e4,
            single_design.cycle_time_ns() / 2.0,
        ),
        (
            "rfc 16e (4R/3W/3B)".into(),
            rfc_best(),
            rfc_design.area_lambda2() / 1e4,
            rfc_design.cycle_time_ns(),
        ),
    ];
    let bank_sweep: &[(u32, u32, u32)] =
        if quick { &[(8, 2, 1)] } else { &[(4, 2, 1), (8, 2, 1), (8, 3, 2), (16, 2, 1)] };
    for &(banks, r, w) in bank_sweep {
        let (area, cycle) = one_level_geometry(banks, r, w);
        setups.push((
            format!("one-level {banks}x({r}R/{w}W)"),
            RegFileConfig::OneLevel(OneLevelBankedConfig {
                banks,
                read_ports_per_bank: Some(r),
                write_ports_per_bank: Some(w),
            }),
            area,
            cycle,
        ));
    }
    setups
}

/// Plans the one-level comparison specs: every organization on both
/// suites (organization-major, benchmark-minor).
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    let mut specs = Vec::new();
    for (_, rf, _, _) in &setups(opts.quick) {
        for b in int.iter().chain(fp.iter()) {
            specs
                .push(RunSpec::known(b, *rf).insts(opts.insts).warmup(opts.warmup).seed(opts.seed));
        }
    }
    specs
}

/// Assembles the results of [`plan`] into the per-organization rows.
pub fn assemble(opts: &ExperimentOpts, results: Vec<RunResult>) -> OneLevelData {
    let (int, fp) = super::sweep_suites(opts);
    let per_setup = int.len() + fp.len();
    let setups = setups(opts.quick);
    assert_eq!(results.len(), setups.len() * per_setup, "result count must match the plan");

    let mut rows = Vec::new();
    for (si, (label, _, area, cycle)) in setups.iter().enumerate() {
        let slice = &results[si * per_setup..(si + 1) * per_setup];
        let hmean = |fp_suite: bool| {
            let vals: Vec<f64> =
                slice.iter().filter(|r| r.fp == fp_suite).map(|r| r.ipc()).collect();
            harmonic_mean(&vals).unwrap_or(0.0)
        };
        rows.push(OneLevelRow {
            label: label.clone(),
            area_10k: *area,
            cycle_ns: *cycle,
            int_hmean: hmean(false),
            fp_hmean: hmean(true),
        });
    }
    OneLevelData { rows }
}

/// Runs the one-level comparison.
pub fn run(opts: &ExperimentOpts) -> OneLevelData {
    let results = run_suite_jobs(&plan(opts), opts.jobs);
    assemble(opts, results)
}

impl OneLevelData {
    /// The row whose label contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&OneLevelRow> {
        self.rows.iter().find(|r| r.label.contains(needle))
    }
}

impl fmt::Display for OneLevelData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: one-level banked organization vs register file cache\n\
             (throughput = Int hmean IPC / cycle time, relative to the rfc row)"
        )?;
        let rfc_row = self.find("rfc").expect("rfc row present");
        let rfc_tp = rfc_row.int_hmean / rfc_row.cycle_ns;
        let mut t = TextTable::new(vec![
            "organization".into(),
            "area 10Kλ²".into(),
            "cycle ns".into(),
            "Int IPC".into(),
            "FP IPC".into(),
            "rel throughput".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                format!("{:.0}", r.area_10k),
                format!("{:.2}", r.cycle_ns),
                format!("{:.3}", r.int_hmean),
                format!("{:.3}", r.fp_hmean),
                format!("{:.2}", (r.int_hmean / r.cycle_ns) / rfc_tp),
            ]);
        }
        t.fmt(f)
    }
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "onelevel",
        "beyond the paper: one-level banked organization",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

impl ScenarioReport for OneLevelData {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "organization".into(),
            "area_10k".into(),
            "cycle_ns".into(),
            "int_hmean".into(),
            "fp_hmean".into(),
        ]);
        for r in &self.rows {
            t.row_f64(&r.label, &[r.area_10k, r.cycle_ns, r.int_hmean, r.fp_hmean]);
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        vec![
            ("cycle_ns".into(), self.rows.iter().map(|r| r.cycle_ns).collect()),
            ("int_hmean".into(), self.rows.iter().map(|r| r.int_hmean).collect()),
            ("fp_hmean".into(), self.rows.iter().map(|r| r.fp_hmean).collect()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_level_banks_trade_conflicts_for_area() {
        let data = run(&ExperimentOpts::smoke());
        let rfc = data.find("rfc").unwrap();
        let one_level = data.find("one-level 8x").unwrap();
        // The banked file is much smaller...
        assert!(one_level.area_10k < rfc.area_10k);
        // IPC-wise the banked file can even beat the rfc (it has no
        // inter-level transfers; conflicts are its only cost)...
        assert!(one_level.int_hmean > 0.0);
        assert!(rfc.int_hmean > 0.0);
        // The unlimited-port single bank bounds everyone's IPC.
        let single = data.find("single 1-cycle").unwrap();
        assert!(single.int_hmean >= one_level.int_hmean * 0.95);
    }
}
