//! Operand-source breakdown (the statistics behind §3's caching-policy
//! design): for the best register file cache, where does each source
//! operand actually come from — the bypass network or the upper bank —
//! and how much inter-level traffic does each benchmark generate?

use super::{rfc_best, ExperimentOpts};
use crate::scenario::{Scenario, ScenarioReport};
use crate::{run_suite_jobs, RunResult, RunSpec, TextTable};
use std::fmt;

/// Per-benchmark operand-source statistics.
#[derive(Debug, Clone)]
pub struct SourcesRow {
    /// Benchmark name.
    pub bench: String,
    /// SpecFP95 member.
    pub fp: bool,
    /// Fraction of operands caught on the bypass network.
    pub bypass_frac: f64,
    /// Fraction of produced results written to the upper bank.
    pub cached_frac: f64,
    /// Demand transfers per 1000 committed instructions.
    pub demands_per_kilo: f64,
    /// Prefetch transfers per 1000 committed instructions.
    pub prefetches_per_kilo: f64,
    /// Upper-bank evictions per 1000 committed instructions.
    pub evictions_per_kilo: f64,
}

/// Results of the operand-source experiment.
#[derive(Debug, Clone)]
pub struct SourcesData {
    /// One row per benchmark, suite order.
    pub rows: Vec<SourcesRow>,
}

/// Plans the operand-source specs (both suites on the best register
/// file cache).
pub fn plan(opts: &ExperimentOpts) -> Vec<RunSpec> {
    let (int, fp) = super::sweep_suites(opts);
    int.iter()
        .chain(fp.iter())
        .map(|b| {
            RunSpec::known(b, rfc_best()).insts(opts.insts).warmup(opts.warmup).seed(opts.seed)
        })
        .collect()
}

/// Assembles the results of [`plan`] into the per-benchmark breakdown.
pub fn assemble(_opts: &ExperimentOpts, results: Vec<RunResult>) -> SourcesData {
    let rows = results
        .iter()
        .map(|r| {
            let s = r.metrics.rf_combined();
            let kilo = r.metrics.committed as f64 / 1000.0;
            SourcesRow {
                bench: r.bench.to_string(),
                fp: r.fp,
                bypass_frac: s.bypass_fraction().unwrap_or(0.0),
                cached_frac: if s.writebacks > 0 {
                    s.cached_results as f64 / s.writebacks as f64
                } else {
                    0.0
                },
                demands_per_kilo: s.demand_transfers as f64 / kilo,
                prefetches_per_kilo: s.prefetch_transfers as f64 / kilo,
                evictions_per_kilo: s.evictions as f64 / kilo,
            }
        })
        .collect();
    SourcesData { rows }
}

/// Runs the operand-source breakdown on the best register file cache.
pub fn run(opts: &ExperimentOpts) -> SourcesData {
    let results = run_suite_jobs(&plan(opts), opts.jobs);
    assemble(opts, results)
}

impl SourcesData {
    /// Suite-average bypass fraction (int, fp).
    pub fn bypass_averages(&self) -> (f64, f64) {
        let avg = |fp: bool| {
            let v: Vec<f64> =
                self.rows.iter().filter(|r| r.fp == fp).map(|r| r.bypass_frac).collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        (avg(false), avg(true))
    }
}

impl fmt::Display for SourcesData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Operand sources on the register file cache (non-bypass caching + prefetch-first-pair)"
        )?;
        let mut t = TextTable::new(vec![
            "benchmark".into(),
            "bypass".into(),
            "cached".into(),
            "demand/1k".into(),
            "prefetch/1k".into(),
            "evict/1k".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                format!("{:.0}%", r.bypass_frac * 100.0),
                format!("{:.0}%", r.cached_frac * 100.0),
                format!("{:.1}", r.demands_per_kilo),
                format!("{:.1}", r.prefetches_per_kilo),
                format!("{:.1}", r.evictions_per_kilo),
            ]);
        }
        t.fmt(f)?;
        let (i, p) = self.bypass_averages();
        writeln!(f, "bypass fraction averages: int {:.0}%, fp {:.0}%", i * 100.0, p * 100.0)
    }
}

/// Registry entry for the scenario engine.
pub fn scenario() -> Scenario {
    Scenario::new(
        "sources",
        "beyond the paper: operand sources and transfer traffic",
        plan,
        |opts, results| Box::new(assemble(opts, results)),
    )
}

impl ScenarioReport for SourcesData {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "benchmark".into(),
            "suite".into(),
            "bypass_frac".into(),
            "cached_frac".into(),
            "demands_per_kilo".into(),
            "prefetches_per_kilo".into(),
            "evictions_per_kilo".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                if r.fp { "fp" } else { "int" }.into(),
                format!("{:.3}", r.bypass_frac),
                format!("{:.3}", r.cached_frac),
                format!("{:.2}", r.demands_per_kilo),
                format!("{:.2}", r.prefetches_per_kilo),
                format!("{:.2}", r.evictions_per_kilo),
            ]);
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        vec![
            ("bypass_frac".into(), self.rows.iter().map(|r| r.bypass_frac).collect()),
            ("cached_frac".into(), self.rows.iter().map(|r| r.cached_frac).collect()),
            ("demands_per_kilo".into(), self.rows.iter().map(|r| r.demands_per_kilo).collect()),
            (
                "prefetches_per_kilo".into(),
                self.rows.iter().map(|r| r.prefetches_per_kilo).collect(),
            ),
            ("evictions_per_kilo".into(), self.rows.iter().map(|r| r.evictions_per_kilo).collect()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_is_consistent() {
        let data = run(&ExperimentOpts::smoke());
        assert_eq!(data.rows.len(), 4);
        for r in &data.rows {
            assert!((0.0..=1.0).contains(&r.bypass_frac), "{}: {}", r.bench, r.bypass_frac);
            assert!((0.0..=1.0).contains(&r.cached_frac));
            assert!(r.demands_per_kilo >= 0.0);
        }
        let (int_avg, fp_avg) = data.bypass_averages();
        assert!(int_avg > 0.05 && fp_avg > 0.05, "some operands must ride the bypass");
        assert!(data.to_string().contains("bypass fraction averages"));
    }
}
