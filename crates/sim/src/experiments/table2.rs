//! Table 2: the four cost-equivalent port configurations (C1–C4) of each
//! architecture, with the area and cycle time our calibrated model
//! produces next to the paper's reported values.

use super::ExperimentOpts;
use crate::scenario::{Scenario, ScenarioReport};
use crate::{RunSpec, TextTable};
use rfcache_area::{table2_configs, Table2Row};
use std::fmt;

/// All four evaluated rows.
#[derive(Debug, Clone)]
pub struct Table2Data {
    /// One row per configuration C1..C4.
    pub rows: Vec<Table2Row>,
}

/// Evaluates Table 2 with the analytical model (no simulation involved).
pub fn run() -> Table2Data {
    Table2Data { rows: table2_configs().map(Table2Row::evaluate).to_vec() }
}

/// Plans the Table 2 "simulations": none — the area model is purely
/// analytical, so the campaign scheduler has nothing to queue.
pub fn plan(_opts: &ExperimentOpts) -> Vec<RunSpec> {
    Vec::new()
}

impl Table2Data {
    /// Largest relative error of any model value against the paper.
    pub fn max_relative_error(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| {
                let c = r.config;
                [
                    (r.model_single_area, c.paper_single_area),
                    (r.model_single_cycle_1s, c.paper_single_cycle_1s),
                    (r.model_single_cycle_2s, c.paper_single_cycle_2s),
                    (r.model_rfc_area, c.paper_rfc_area),
                    (r.model_rfc_cycle, c.paper_rfc_cycle),
                ]
            })
            .map(|(model, paper)| (model - paper).abs() / paper)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Table2Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: port configurations (model vs paper values in parentheses)")?;
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        writeln!(f, "max relative error: {:.1}%", self.max_relative_error() * 100.0)
    }
}

/// Registry entry for the scenario engine (the assembler ignores the
/// options and results: the area model has no simulation inputs).
pub fn scenario() -> Scenario {
    Scenario::new(
        "table2",
        "C1-C4 port configurations: area and cycle time vs the paper",
        plan,
        |_opts, _results| Box::new(run()),
    )
}

impl ScenarioReport for Table2Data {
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "config".into(),
            "single_area_10k".into(),
            "single_cycle_1s_ns".into(),
            "single_cycle_2s_ns".into(),
            "rfc_area_10k".into(),
            "rfc_cycle_ns".into(),
        ]);
        for r in &self.rows {
            t.row_f64(
                r.config.name,
                &[
                    r.model_single_area,
                    r.model_single_cycle_1s,
                    r.model_single_cycle_2s,
                    r.model_rfc_area,
                    r.model_rfc_cycle,
                ],
            );
        }
        t
    }

    fn series(&self) -> Vec<(String, Vec<f64>)> {
        vec![
            ("single_area_10k".into(), self.rows.iter().map(|r| r.model_single_area).collect()),
            (
                "single_cycle_1s_ns".into(),
                self.rows.iter().map(|r| r.model_single_cycle_1s).collect(),
            ),
            (
                "single_cycle_2s_ns".into(),
                self.rows.iter().map(|r| r.model_single_cycle_2s).collect(),
            ),
            ("rfc_area_10k".into(), self.rows.iter().map(|r| r.model_rfc_area).collect()),
            ("rfc_cycle_ns".into(), self.rows.iter().map(|r| r.model_rfc_cycle).collect()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_paper_within_six_percent() {
        let data = run();
        assert_eq!(data.rows.len(), 4);
        assert!(data.max_relative_error() < 0.06, "{}", data.max_relative_error());
        assert!(data.to_string().contains("C4"));
    }
}
