//! A minimal hand-rolled HTTP/1.1 surface for the coordinator's control
//! plane (the build environment is offline, so no hyper — and the
//! coordinator's readiness loop wants byte-level control anyway).
//!
//! The server half is deliberately tiny: [`parse_request`] recognises a
//! request head — and, when a `Content-Length` header announces one, a
//! request body — fed to it in arbitrary byte chunks (TCP reads stop at
//! packet boundaries, not header boundaries — property-tested in
//! `tests/http_codec.rs`), and [`respond`] renders a complete
//! `Connection: close` response, so every exchange is one request, one
//! response, one connection. The client half ([`get`] / [`post`]) is
//! just enough for `experiments status`/`submit`/`fetch` and the tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The most bytes a request head may occupy before the connection is
/// rejected as malformed (nothing the control plane serves needs long
/// headers).
pub const MAX_HEAD: usize = 8 * 1024;

/// The most body bytes a request may declare before it is rejected as
/// oversized (`413`): a campaign description is a page of JSON, so this
/// bounds buffering per control-plane connection without crowding any
/// legitimate submission.
pub const MAX_BODY: usize = 64 * 1024;

/// One parsed HTTP request: the request line plus any `Content-Length`
/// body (all other headers are accepted and ignored — the control
/// plane's routing needs nothing from them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// The request target, query string included (`/status?x=1`).
    pub target: String,
    /// The request body, exactly `Content-Length` bytes (empty when the
    /// header is absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The target with any query string stripped: the routing key.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// What [`parse_request`] made of the bytes so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// No complete request yet — read more and call again. Any prefix
    /// of a valid request within [`MAX_HEAD`]/[`MAX_BODY`] parses as
    /// `Incomplete`, never as `Invalid`.
    Incomplete,
    /// A complete, well-formed request (head plus any declared body).
    Ready(Request),
    /// The bytes can never become a valid request (the connection
    /// should get a `400` and close).
    Invalid(String),
    /// The head is well-formed but declares a body beyond [`MAX_BODY`]
    /// (the connection should get a `413` and close — distinct from
    /// `Invalid` so the server never buffers toward a bound it already
    /// knows is unreachable).
    TooLarge(String),
}

/// Finds the end of the request head: the byte index just past the
/// first blank line (`\r\n\r\n`, or bare `\n\n` from lenient clients).
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some(i + 2),
                (Some(b'\r'), Some(b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Extracts the declared body length from the head's header lines.
///
/// `Ok(None)` = no `Content-Length` header (no body); duplicate or
/// unparsable declarations are malformed.
fn content_length(head: &str) -> Result<Option<usize>, String> {
    let mut declared = None;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else { continue };
        if !name.trim().eq_ignore_ascii_case("content-length") {
            continue;
        }
        let value = value.trim();
        let n: usize = value.parse().map_err(|_| format!("unparsable Content-Length {value:?}"))?;
        if declared.replace(n).is_some() {
            return Err("duplicate Content-Length headers".to_string());
        }
    }
    Ok(declared)
}

/// Incrementally parses an HTTP/1.1 request (head plus any
/// `Content-Length` body) from however many bytes have arrived so far.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(end) = head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Parse::Invalid(format!("request head exceeds {MAX_HEAD} bytes"));
        }
        return Parse::Incomplete;
    };
    if end > MAX_HEAD {
        return Parse::Invalid(format!("request head exceeds {MAX_HEAD} bytes"));
    }
    let head = String::from_utf8_lossy(&buf[..end]);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Parse::Invalid(format!("malformed request line {line:?}")),
    };
    if !version.starts_with("HTTP/") {
        return Parse::Invalid(format!("unsupported protocol {version:?}"));
    }
    let body_len = match content_length(&head) {
        Ok(n) => n.unwrap_or(0),
        Err(reason) => return Parse::Invalid(reason),
    };
    if body_len > MAX_BODY {
        return Parse::TooLarge(format!("request body of {body_len} bytes exceeds {MAX_BODY}"));
    }
    if buf.len() < end + body_len {
        return Parse::Incomplete;
    }
    Parse::Ready(Request {
        method: method.to_string(),
        target: target.to_string(),
        body: buf[end..end + body_len].to_vec(),
    })
}

/// Renders a complete `Connection: close` response.
pub fn respond(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Renders a `200 OK` JSON response.
pub fn json_ok(body: &str) -> Vec<u8> {
    respond(200, "OK", "application/json", body)
}

/// A one-shot HTTP GET against a coordinator control plane: connects,
/// sends the request, reads to EOF (the server always closes), and
/// returns the status code plus body.
///
/// # Errors
///
/// Returns a human-readable message when the server is unreachable, the
/// exchange times out, or the response is malformed.
pub fn get(addr: &str, target: &str, timeout: Duration) -> Result<(u16, String), String> {
    let request = format!("GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    roundtrip(addr, request.as_bytes(), timeout)
}

/// A one-shot HTTP POST: like [`get`], but ships a request body (the
/// `submit` subcommand and the service tests use it to file campaign
/// descriptions).
///
/// # Errors
///
/// Returns a human-readable message when the server is unreachable, the
/// exchange times out, or the response is malformed.
pub fn post(
    addr: &str,
    target: &str,
    content_type: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let request = format!(
        "POST {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    roundtrip(addr, request.as_bytes(), timeout)
}

/// Sends one rendered request and reads the one response the server
/// will send before closing.
fn roundtrip(addr: &str, request: &[u8], timeout: Duration) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("{addr}: {e}"))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| format!("{addr}: {e}"))?;
    stream.write_all(request).map_err(|e| format!("{addr}: cannot send: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("{addr}: cannot read response: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let head_end = text
        .find("\r\n\r\n")
        .map(|at| (at, at + 4))
        .or_else(|| text.find("\n\n").map(|at| (at, at + 2)))
        .ok_or_else(|| format!("{addr}: response has no header/body separator"))?;
    let status_line = text[..head_end.0].lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("{addr}: malformed status line {status_line:?}"))?;
    Ok((status, text[head_end.1..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_get() {
        let raw = b"GET /status HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let Parse::Ready(req) = parse_request(raw) else {
            panic!("expected ready, got {:?}", parse_request(raw));
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/status");
        assert_eq!(req.path(), "/status");
    }

    #[test]
    fn query_strings_are_kept_in_target_but_stripped_from_path() {
        let Parse::Ready(req) = parse_request(b"GET /status?pretty=1 HTTP/1.0\n\n") else {
            panic!("bare-LF heads are accepted");
        };
        assert_eq!(req.target, "/status?pretty=1");
        assert_eq!(req.path(), "/status");
    }

    #[test]
    fn every_prefix_of_a_valid_request_is_incomplete() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: coordinator\r\n\r\n";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut]),
                Parse::Incomplete,
                "prefix of {cut} bytes must not resolve early"
            );
        }
        assert!(matches!(parse_request(raw), Parse::Ready(_)));
    }

    #[test]
    fn rejects_garbage_and_oversized_heads() {
        assert!(matches!(parse_request(b"\r\n\r\n"), Parse::Invalid(_)), "empty request line");
        assert!(matches!(parse_request(b"GET /x\r\n\r\n"), Parse::Invalid(_)), "no version");
        assert!(
            matches!(parse_request(b"GET /x SMTP/1.0\r\n\r\n"), Parse::Invalid(_)),
            "non-HTTP version"
        );
        assert!(
            matches!(parse_request(b"GET /a /b HTTP/1.1 extra\r\n\r\n"), Parse::Invalid(_)),
            "too many request-line parts"
        );
        let oversized = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(parse_request(&oversized), Parse::Invalid(_)));
        let mut huge_but_terminated = vec![b'a'; MAX_HEAD];
        huge_but_terminated.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse_request(&huge_but_terminated), Parse::Invalid(_)));
    }

    #[test]
    fn bodies_are_collected_exactly_to_content_length() {
        let raw = b"POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"a\": true}";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut]),
                Parse::Incomplete,
                "prefix of {cut} bytes must not resolve early"
            );
        }
        let Parse::Ready(req) = parse_request(raw) else {
            panic!("expected ready, got {:?}", parse_request(raw));
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\": true}");
        // Case-insensitive header name, tolerated whitespace.
        let lenient = b"POST /c HTTP/1.1\ncontent-length:  2 \n\nok";
        let Parse::Ready(req) = parse_request(lenient) else {
            panic!("expected ready, got {:?}", parse_request(lenient));
        };
        assert_eq!(req.body, b"ok");
        // No Content-Length: empty body, ready at head end.
        let Parse::Ready(req) = parse_request(b"GET /status HTTP/1.1\r\n\r\n") else {
            panic!("headless GET stays ready");
        };
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_and_oversized_bodies_are_distinct_rejections() {
        assert!(matches!(
            parse_request(b"POST /c HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Parse::Invalid(_)
        ));
        assert!(matches!(
            parse_request(b"POST /c HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n"),
            Parse::Invalid(_)
        ));
        // An oversized declaration is rejected from the head alone — no
        // body bytes need ever arrive.
        let huge = format!("POST /c HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_request(huge.as_bytes()), Parse::TooLarge(_)));
        let exact = format!("POST /c HTTP/1.1\r\nContent-Length: {MAX_BODY}\r\n\r\n");
        assert_eq!(parse_request(exact.as_bytes()), Parse::Incomplete, "at-cap bodies are legal");
    }

    #[test]
    fn respond_renders_content_length_and_close() {
        let bytes = respond(200, "OK", "application/json", "{\"ok\": true}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"), "{text}");
    }
}
