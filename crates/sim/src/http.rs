//! A minimal hand-rolled HTTP/1.1 surface for the coordinator's control
//! plane (the build environment is offline, so no hyper — and the
//! coordinator's readiness loop wants byte-level control anyway).
//!
//! The server half is deliberately tiny: [`parse_request`] recognises a
//! request head fed to it in arbitrary byte chunks (TCP reads stop at
//! packet boundaries, not header boundaries — property-tested in
//! `tests/http_codec.rs`), and [`respond`] renders a complete
//! `Connection: close` response, so every exchange is one request, one
//! response, one connection. The client half ([`get`]) is just enough
//! for `experiments status` and the tests to fetch `/status`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The most bytes a request head may occupy before the connection is
/// rejected as malformed (nothing the control plane serves needs long
/// headers).
pub const MAX_HEAD: usize = 8 * 1024;

/// One parsed HTTP request line (headers are accepted and ignored — the
/// control plane's routing needs nothing from them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `HEAD`, ...), as sent.
    pub method: String,
    /// The request target, query string included (`/status?x=1`).
    pub target: String,
}

impl Request {
    /// The target with any query string stripped: the routing key.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// What [`parse_request`] made of the bytes so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// No complete head yet — read more and call again. Any prefix of a
    /// valid request within [`MAX_HEAD`] parses as `Incomplete`, never
    /// as `Invalid`.
    Incomplete,
    /// A complete, well-formed request head.
    Ready(Request),
    /// The bytes can never become a valid request (the connection
    /// should get a `400` and close).
    Invalid(String),
}

/// Finds the end of the request head: the byte index just past the
/// first blank line (`\r\n\r\n`, or bare `\n\n` from lenient clients).
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some(i + 2),
                (Some(b'\r'), Some(b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Incrementally parses an HTTP/1.1 request head from however many
/// bytes have arrived so far.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(end) = head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Parse::Invalid(format!("request head exceeds {MAX_HEAD} bytes"));
        }
        return Parse::Incomplete;
    };
    if end > MAX_HEAD {
        return Parse::Invalid(format!("request head exceeds {MAX_HEAD} bytes"));
    }
    let head = String::from_utf8_lossy(&buf[..end]);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Parse::Invalid(format!("malformed request line {line:?}")),
    };
    if !version.starts_with("HTTP/") {
        return Parse::Invalid(format!("unsupported protocol {version:?}"));
    }
    Parse::Ready(Request { method: method.to_string(), target: target.to_string() })
}

/// Renders a complete `Connection: close` response.
pub fn respond(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Renders a `200 OK` JSON response.
pub fn json_ok(body: &str) -> Vec<u8> {
    respond(200, "OK", "application/json", body)
}

/// A one-shot HTTP GET against a coordinator control plane: connects,
/// sends the request, reads to EOF (the server always closes), and
/// returns the status code plus body.
///
/// # Errors
///
/// Returns a human-readable message when the server is unreachable, the
/// exchange times out, or the response is malformed.
pub fn get(addr: &str, target: &str, timeout: Duration) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("{addr}: {e}"))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| format!("{addr}: {e}"))?;
    let request = format!("GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("{addr}: cannot send: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("{addr}: cannot read response: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let head_end = text
        .find("\r\n\r\n")
        .map(|at| (at, at + 4))
        .or_else(|| text.find("\n\n").map(|at| (at, at + 2)))
        .ok_or_else(|| format!("{addr}: response has no header/body separator"))?;
    let status_line = text[..head_end.0].lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("{addr}: malformed status line {status_line:?}"))?;
    Ok((status, text[head_end.1..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_get() {
        let raw = b"GET /status HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let Parse::Ready(req) = parse_request(raw) else {
            panic!("expected ready, got {:?}", parse_request(raw));
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/status");
        assert_eq!(req.path(), "/status");
    }

    #[test]
    fn query_strings_are_kept_in_target_but_stripped_from_path() {
        let Parse::Ready(req) = parse_request(b"GET /status?pretty=1 HTTP/1.0\n\n") else {
            panic!("bare-LF heads are accepted");
        };
        assert_eq!(req.target, "/status?pretty=1");
        assert_eq!(req.path(), "/status");
    }

    #[test]
    fn every_prefix_of_a_valid_request_is_incomplete() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: coordinator\r\n\r\n";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut]),
                Parse::Incomplete,
                "prefix of {cut} bytes must not resolve early"
            );
        }
        assert!(matches!(parse_request(raw), Parse::Ready(_)));
    }

    #[test]
    fn rejects_garbage_and_oversized_heads() {
        assert!(matches!(parse_request(b"\r\n\r\n"), Parse::Invalid(_)), "empty request line");
        assert!(matches!(parse_request(b"GET /x\r\n\r\n"), Parse::Invalid(_)), "no version");
        assert!(
            matches!(parse_request(b"GET /x SMTP/1.0\r\n\r\n"), Parse::Invalid(_)),
            "non-HTTP version"
        );
        assert!(
            matches!(parse_request(b"GET /a /b HTTP/1.1 extra\r\n\r\n"), Parse::Invalid(_)),
            "too many request-line parts"
        );
        let oversized = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(parse_request(&oversized), Parse::Invalid(_)));
        let mut huge_but_terminated = vec![b'a'; MAX_HEAD];
        huge_but_terminated.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse_request(&huge_but_terminated), Parse::Invalid(_)));
    }

    #[test]
    fn respond_renders_content_length_and_close() {
        let bytes = respond(200, "OK", "application/json", "{\"ok\": true}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"), "{text}");
    }
}
