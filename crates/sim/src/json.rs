//! JSON export for experiment data, the machine-readable sibling of the
//! CSV writer in [`crate::write_csv`].
//!
//! Every [`TextTable`](crate::TextTable) renders to a small JSON object
//! (`{"header": [...], "rows": [[...], ...]}`); the experiment binaries
//! use [`write_json`] to drop one file per scenario when `--json DIR` is
//! passed. The encoder is hand-rolled (the build environment is offline,
//! so no serde) but emits strictly valid JSON: every cell is a JSON
//! string with full escaping.

use crate::table::TextTable;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(cells: &[String]) -> String {
    let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", escape(c))).collect();
    format!("[{}]", quoted.join(", "))
}

impl TextTable {
    /// Renders the table as a JSON object with a `header` string array
    /// and a `rows` array of string arrays (cells keep the formatting
    /// the table was built with).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"header\": {},", string_array(self.header_cells()));
        out.push_str("  \"rows\": [");
        for (i, row) in self.data_rows().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&string_array(row));
        }
        if !self.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Writes `table` as `<dir>/<name>.json`, creating `dir` if necessary.
///
/// # Errors
///
/// Propagates filesystem errors.
///
/// # Examples
///
/// ```no_run
/// use rfcache_sim::{write_json, TextTable};
///
/// let mut t = TextTable::new(vec!["bench".into(), "ipc".into()]);
/// t.row_f64("li", &[2.5]);
/// write_json("results", "fig6", &t)?;
/// # std::io::Result::Ok(())
/// ```
pub fn write_json<P: AsRef<Path>>(dir: P, name: &str, table: &TextTable) -> io::Result<()> {
    std::fs::create_dir_all(&dir)?;
    let path = dir.as_ref().join(format!("{name}.json"));
    let mut file = std::fs::File::create(path)?;
    file.write_all(table.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows_with_escaping() {
        let mut t = TextTable::new(vec!["k".into(), "v".into()]);
        t.row(vec!["quote\"back\\slash".into(), "line\nbreak\r\ttab".into()]);
        t.row(vec!["plain".into(), "1.25".into()]);
        let json = t.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"header\": [\"k\", \"v\"],"));
        assert!(json.contains("[\"quote\\\"back\\\\slash\", \"line\\nbreak\\r\\ttab\"]"));
        assert!(json.contains("[\"plain\", \"1.25\"]"));
    }

    #[test]
    fn empty_table_renders_empty_rows_array() {
        let t = TextTable::new(vec!["only".into()]);
        assert_eq!(t.to_json(), "{\n  \"header\": [\"only\"],\n  \"rows\": []\n}\n");
    }

    #[test]
    fn control_characters_use_unicode_escapes() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("rfcache_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = TextTable::new(vec!["k".into()]);
        t.row(vec!["v".into()]);
        write_json(&dir, "t", &t).unwrap();
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(content.contains("\"rows\": [\n    [\"v\"]\n  ]"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
