//! JSON support for experiment data: the writer half is the
//! machine-readable sibling of the CSV writer in [`crate::write_csv`],
//! the reader half ([`parse_json`]) backs the shard-file metrics codec
//! ([`crate::metrics_codec`]).
//!
//! Every [`TextTable`](crate::TextTable) renders to a small JSON object
//! (`{"header": [...], "rows": [[...], ...]}`); the experiment binaries
//! use [`write_json`] to drop one file per scenario when `--json DIR` is
//! passed. Both halves are hand-rolled (the build environment is
//! offline, so no serde) but strict: the writer emits fully escaped
//! valid JSON, and the reader rejects malformed input with a byte
//! offset.

use crate::table::TextTable;
use std::fmt::{self, Write as _};
use std::io::{self, Write};
use std::path::Path;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(cells: &[String]) -> String {
    let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", escape(c))).collect();
    format!("[{}]", quoted.join(", "))
}

impl TextTable {
    /// Renders the table as a JSON object with a `header` string array
    /// and a `rows` array of string arrays (cells keep the formatting
    /// the table was built with).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"header\": {},", string_array(self.header_cells()));
        out.push_str("  \"rows\": [");
        for (i, row) in self.data_rows().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&string_array(row));
        }
        if !self.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Writes `table` as `<dir>/<name>.json`, creating `dir` if necessary.
///
/// # Errors
///
/// Propagates filesystem errors.
///
/// # Examples
///
/// ```no_run
/// use rfcache_sim::{write_json, TextTable};
///
/// let mut t = TextTable::new(vec!["bench".into(), "ipc".into()]);
/// t.row_f64("li", &[2.5]);
/// write_json("results", "fig6", &t)?;
/// # std::io::Result::Ok(())
/// ```
pub fn write_json<P: AsRef<Path>>(dir: P, name: &str, table: &TextTable) -> io::Result<()> {
    std::fs::create_dir_all(&dir)?;
    let path = dir.as_ref().join(format!("{name}.json"));
    let mut file = std::fs::File::create(path)?;
    file.write_all(table.to_json().as_bytes())
}

/// A parsed JSON value.
///
/// Numbers keep their literal text instead of an `f64` intermediate, so
/// integer counters up to `u64::MAX` survive parsing exactly — the
/// metrics codec depends on that.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its literal token (convert via
    /// [`as_u64`](Self::as_u64) / [`as_f64`](Self::as_f64)).
    Number(String),
    /// A string (escapes already decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key of an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64` (numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice (strings only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool (booleans only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements (arrays only).
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders a parsed value back to canonical one-line JSON text: object
/// keys in source order, `", "` between elements, `": "` after keys,
/// number literals preserved verbatim.
///
/// Canonical rendering gives every process the *same* text for the same
/// document, so a sweep definition embedded in a `POST /campaigns` body
/// and the same definition read from a file on another machine produce
/// identical [`crate::CampaignHeader`] sweep texts — which is what the
/// campaign fingerprint machinery compares.
pub fn render_json(value: &JsonValue) -> String {
    match value {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(n) => n.clone(),
        JsonValue::String(s) => format!("\"{}\"", escape(s)),
        JsonValue::Array(items) => {
            let parts: Vec<String> = items.iter().map(render_json).collect();
            format!("[{}]", parts.join(", "))
        }
        JsonValue::Object(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", escape(k), render_json(v)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
    }
}

/// A JSON parse failure: what went wrong and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`JsonParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// use rfcache_sim::parse_json;
///
/// let v = parse_json(r#"{"cycles": 18446744073709551615}"#).unwrap();
/// assert_eq!(v.get("cycles").unwrap().as_u64(), Some(u64::MAX));
/// ```
pub fn parse_json(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Deeper nesting than any real document needs, but shallow enough that
/// a corrupt `[[[[…` line yields a parse error instead of blowing the
/// stack in the recursive-descent parser.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<JsonValue, JsonParseError>,
    ) -> Result<JsonValue, JsonParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("bad escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path (the overwhelmingly common case).
                    if b < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 character. Validating at
                    // most 4 bytes keeps string parsing linear (the input
                    // is a &str, so decoding cannot fail).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let s = match std::str::from_utf8(&self.bytes[self.pos..end]) {
                        Ok(s) => s,
                        // The 4-byte window may split a trailing character;
                        // the valid prefix still holds the one we need.
                        Err(e) => {
                            std::str::from_utf8(&self.bytes[self.pos..self.pos + e.valid_up_to()])
                                .expect("valid prefix")
                        }
                    };
                    let c = s.chars().next().expect("peeked a non-empty char");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| self.err("non-hex digits in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let high = self.hex4()?;
        let code = if (0xd800..0xdc00).contains(&high) {
            // Surrogate pair: a second \uXXXX must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xdc00..0xe000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
            } else {
                return Err(self.err("lone high surrogate"));
            }
        } else if (0xdc00..0xe000).contains(&high) {
            return Err(self.err("lone low surrogate"));
        } else {
            high
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        // RFC 8259: no leading zeros ("01" is not a JSON number).
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let literal = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(JsonValue::Number(literal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows_with_escaping() {
        let mut t = TextTable::new(vec!["k".into(), "v".into()]);
        t.row(vec!["quote\"back\\slash".into(), "line\nbreak\r\ttab".into()]);
        t.row(vec!["plain".into(), "1.25".into()]);
        let json = t.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"header\": [\"k\", \"v\"],"));
        assert!(json.contains("[\"quote\\\"back\\\\slash\", \"line\\nbreak\\r\\ttab\"]"));
        assert!(json.contains("[\"plain\", \"1.25\"]"));
    }

    #[test]
    fn empty_table_renders_empty_rows_array() {
        let t = TextTable::new(vec!["only".into()]);
        assert_eq!(t.to_json(), "{\n  \"header\": [\"only\"],\n  \"rows\": []\n}\n");
    }

    #[test]
    fn control_characters_use_unicode_escapes() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn parses_scalars_containers_and_escapes() {
        let v = parse_json(r#"{"a": [1, -2.5, 1e3], "s": "q\"\\\nA😀", "t": true, "n": null}"#)
            .unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\\\nA😀"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(100_000);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.message.contains("nesting deeper"), "{err}");
        // Nesting under the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn u64_max_survives_parsing_exactly() {
        let v = parse_json("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "01", "-007", "- 1"]
        {
            assert!(parse_json(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse_json("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn reads_back_what_the_table_writer_emits() {
        let mut t = TextTable::new(vec!["k".into(), "v".into()]);
        t.row(vec!["quote\"back\\slash".into(), "line\nbreak\r\ttab".into()]);
        let v = parse_json(&t.to_json()).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_str(), Some("quote\"back\\slash"));
        assert_eq!(rows[0].as_array().unwrap()[1].as_str(), Some("line\nbreak\r\ttab"));
    }

    #[test]
    fn render_json_is_canonical_and_round_trips() {
        let text = "{\"b\":  1,\n \"a\": [true, null, \"x\\\"y\", 1.5, 18446744073709551615]}";
        let v = parse_json(text).unwrap();
        let canon = render_json(&v);
        assert_eq!(canon, "{\"b\": 1, \"a\": [true, null, \"x\\\"y\", 1.5, 18446744073709551615]}");
        // A canonical text is a fixed point.
        assert_eq!(render_json(&parse_json(&canon).unwrap()), canon);
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("rfcache_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = TextTable::new(vec!["k".into()]);
        t.row(vec!["v".into()]);
        write_json(&dir, "t", &t).unwrap();
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(content.contains("\"rows\": [\n    [\"v\"]\n  ]"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
