//! Simulator facade and experiment harness.
//!
//! This crate ties the substrates together — workloads, front end, memory,
//! register file architectures, and the out-of-order core — behind a small
//! API ([`RunSpec`] → [`RunResult`]), and implements one module per figure
//! and table of the paper's evaluation under [`experiments`].
//!
//! # Examples
//!
//! ```
//! use rfcache_core::{RegFileConfig, SingleBankConfig};
//! use rfcache_sim::RunSpec;
//!
//! let spec = RunSpec::new("li", RegFileConfig::Single(SingleBankConfig::one_cycle()))
//!     .expect("li is a known benchmark")
//!     .insts(5_000)
//!     .warmup(1_000);
//! let result = spec.run();
//! assert!(result.metrics.ipc() > 0.5);
//! ```

#![warn(missing_docs)]

pub mod cache;
mod conn;
mod csv;
pub mod executor;
pub mod experiments;
pub mod http;
mod json;
mod means;
pub mod metrics_codec;
mod readiness;
mod run;
pub mod scenario;
pub mod service;
pub mod sweep;
mod table;
pub mod transport;

pub use cache::{Cache, CacheSession, CacheStats};
pub use csv::write_csv;
pub use executor::{Distributed, Executor, ExecutorError, InProcess, JournalSpec, Subprocess};
pub use json::{parse_json, write_json, JsonParseError, JsonValue};
pub use means::{geometric_mean, harmonic_mean};
pub use rfcache_area::{pareto_frontier, ParetoPoint};
pub use run::{
    campaign_fingerprint, flatten_plans, fnv1a_64, par_indexed, run_suite, run_suite_jobs,
    RunResult, RunSpec, TraceWorkload, WorkloadSource, DEFAULT_INSTS, DEFAULT_WARMUP,
};
pub use scenario::{
    run_campaign, run_campaign_from_parts, run_campaign_planned, run_campaign_planned_with,
    CampaignRequest, Registry, Scenario, ScenarioReport,
};
pub use service::{ServiceConfig, ServiceSummary};
pub use sweep::{SweepDef, SweepReport};
pub use table::TextTable;

pub use rfcache_area as area;
pub use rfcache_core as core;
pub use rfcache_frontend as frontend;
pub use rfcache_isa as isa;
pub use rfcache_mem as mem;
pub use rfcache_pipeline as pipeline;
pub use rfcache_workload as workload;
