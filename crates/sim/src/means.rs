//! Aggregate means. The paper reports harmonic means of IPC across each
//! benchmark suite ("Hmean" in every figure).

/// Harmonic mean of `values`.
///
/// Returns `None` for an empty slice or when any value is non-positive
/// (the harmonic mean is undefined there).
///
/// # Examples
///
/// ```
/// use rfcache_sim::harmonic_mean;
/// let h = harmonic_mean(&[1.0, 4.0, 4.0]).unwrap();
/// assert!((h - 2.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / sum)
}

/// Geometric mean of `values` (used for speedup summaries).
///
/// Returns `None` for an empty slice or when any value is non-positive.
///
/// # Examples
///
/// ```
/// use rfcache_sim::geometric_mean;
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_is_below_arithmetic() {
        let vals = [2.0, 3.0, 7.0];
        let h = harmonic_mean(&vals).unwrap();
        let a = vals.iter().sum::<f64>() / 3.0;
        assert!(h < a);
    }

    #[test]
    fn single_value_is_its_own_mean() {
        assert_eq!(harmonic_mean(&[3.5]), Some(3.5));
        assert_eq!(geometric_mean(&[3.5]), Some(3.5));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[-1.0]), None);
    }
}
