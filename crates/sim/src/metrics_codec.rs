//! JSON-lines codec for shard files: full [`SimMetrics`] round-tripping
//! plus the campaign header and per-run records a `--shard I/N` worker
//! emits.
//!
//! A shard file is one [`CampaignHeader`] line followed by one
//! [`ShardRecord`] line per executed spec. Every counter is encoded as a
//! bare JSON integer and parsed back through the literal-preserving
//! reader in [`crate::parse_json`], so the round trip is exact for the
//! whole `u64` range; `f64` values use Rust's shortest round-trip
//! `Display` form. The merge path (CLI `merge`, the `Subprocess`
//! executor) decodes these files and verifies each record's spec
//! fingerprint against its own campaign plan before assembling reports.

use crate::experiments::ExperimentOpts;
use crate::json::{escape, parse_json, JsonValue};
use crate::run::{RunResult, RunSpec};
use rfcache_core::RegFileStats;
use rfcache_frontend::FetchStats;
use rfcache_pipeline::{OccupancyHistogram, SimMetrics};
use std::fmt;
use std::fmt::Write as _;

/// A decode failure: which part of the input was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    fn new(message: impl Into<String>) -> Self {
        CodecError(message.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for CodecError {}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, CodecError> {
    v.get(key).ok_or_else(|| CodecError::new(format!("missing field `{key}`")))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, CodecError> {
    field(v, key)?.as_u64().ok_or_else(|| CodecError::new(format!("field `{key}` is not a u64")))
}

fn usize_field(v: &JsonValue, key: &str) -> Result<usize, CodecError> {
    usize::try_from(u64_field(v, key)?)
        .map_err(|_| CodecError::new(format!("field `{key}` exceeds usize")))
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, CodecError> {
    field(v, key)?.as_bool().ok_or_else(|| CodecError::new(format!("field `{key}` is not a bool")))
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, CodecError> {
    field(v, key)?.as_str().ok_or_else(|| CodecError::new(format!("field `{key}` is not a string")))
}

/// Generates the `encode_*`/`decode_*` pair for a struct of `u64`
/// counters from a single field list, so the two sides cannot drift
/// apart. The encoder reads the borrowed struct directly (no clone);
/// the decoder fills a `&mut` in place.
macro_rules! counter_codec {
    ($encode:ident, $decode:ident, $ty:ty, { $($key:ident),* $(,)? }) => {
        fn $encode(out: &mut String, s: &$ty) {
            let fields: &[(&str, u64)] = &[$((stringify!($key), s.$key)),*];
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{key}\": {value}");
            }
        }

        fn $decode(v: &JsonValue, s: &mut $ty) -> Result<(), CodecError> {
            $(s.$key = u64_field(v, stringify!($key))?;)*
            Ok(())
        }
    };
}

counter_codec!(encode_rf_stats, decode_rf_stats, RegFileStats, {
    bypass_reads, regfile_reads, writebacks, cached_results, policy_skipped,
    port_skipped, evictions, demand_transfers, prefetch_transfers, prefetch_dropped,
    read_port_stalls, upper_miss_stalls, write_port_stalls, values_never_read,
    values_read_once, values_read_many,
});

counter_codec!(encode_fetch_stats, decode_fetch_stats, FetchStats, {
    fetched, blocks, taken_breaks, icache_stalls, btb_bubbles, branches,
    mispredicted_branches,
});

counter_codec!(encode_metric_scalars, decode_metric_scalars, SimMetrics, {
    cycles, committed, branches, mispredicted, squashed, commit_idle_cycles,
    stall_rob_full, stall_window_full, stall_no_phys_reg, stall_lsq_full,
    stall_branch_limit,
});

fn encode_histogram(out: &mut String, h: &OccupancyHistogram) {
    out.push_str("{\"counts\": [");
    for (i, c) in h.counts().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{c}");
    }
    let _ = write!(out, "], \"samples\": {}}}", h.samples());
}

fn decode_histogram(v: &JsonValue) -> Result<OccupancyHistogram, CodecError> {
    let counts = field(v, "counts")?
        .as_array()
        .ok_or_else(|| CodecError::new("field `counts` is not an array"))?
        .iter()
        .map(|c| c.as_u64().ok_or_else(|| CodecError::new("non-u64 entry in `counts`")))
        .collect::<Result<Vec<u64>, _>>()?;
    Ok(OccupancyHistogram::from_parts(counts, u64_field(v, "samples")?))
}

/// Encodes the full metrics set as one compact JSON object.
pub fn encode_metrics(m: &SimMetrics) -> String {
    let mut out = String::from("{");
    encode_metric_scalars(&mut out, m);
    out.push_str(", \"rf_int\": {");
    encode_rf_stats(&mut out, &m.rf_int);
    out.push_str("}, \"rf_fp\": {");
    encode_rf_stats(&mut out, &m.rf_fp);
    out.push_str("}, \"fetch\": {");
    encode_fetch_stats(&mut out, &m.fetch);
    out.push_str("}, \"dcache_hit_rate\": ");
    match m.dcache_hit_rate {
        // `{}` on f64 is the shortest form that parses back exactly.
        Some(rate) => {
            let _ = write!(out, "{rate}");
        }
        None => out.push_str("null"),
    }
    out.push_str(", \"occupancy_value\": ");
    encode_histogram(&mut out, &m.occupancy_value);
    out.push_str(", \"occupancy_ready\": ");
    encode_histogram(&mut out, &m.occupancy_ready);
    out.push('}');
    out
}

/// Decodes a parsed [`encode_metrics`] object.
///
/// # Errors
///
/// Returns [`CodecError`] when a field is missing or has the wrong type.
pub fn decode_metrics(v: &JsonValue) -> Result<SimMetrics, CodecError> {
    let mut m = SimMetrics::default();
    decode_metric_scalars(v, &mut m)?;
    decode_rf_stats(field(v, "rf_int")?, &mut m.rf_int)?;
    decode_rf_stats(field(v, "rf_fp")?, &mut m.rf_fp)?;
    decode_fetch_stats(field(v, "fetch")?, &mut m.fetch)?;
    m.dcache_hit_rate = match field(v, "dcache_hit_rate")? {
        JsonValue::Null => None,
        rate => Some(
            rate.as_f64()
                .ok_or_else(|| CodecError::new("field `dcache_hit_rate` is not a number"))?,
        ),
    };
    m.occupancy_value = decode_histogram(field(v, "occupancy_value")?)?;
    m.occupancy_ready = decode_histogram(field(v, "occupancy_ready")?)?;
    Ok(m)
}

/// [`decode_metrics`] from JSON text.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed JSON or a malformed object.
pub fn decode_metrics_str(json: &str) -> Result<SimMetrics, CodecError> {
    decode_metrics(&parse_json(json).map_err(|e| CodecError::new(e.to_string()))?)
}

/// One completed simulation, as a shard worker reports it: the campaign
/// index the spec had in the flat plan, the spec's fingerprint (drift
/// detection), and the full result.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Position of the spec in the flattened campaign plan.
    pub index: usize,
    /// [`RunSpec::fingerprint`](crate::RunSpec::fingerprint) of the spec
    /// that produced the result.
    pub fingerprint: u64,
    /// Workload label (a benchmark name, trace label, or family member
    /// label — whatever the spec's workload reports).
    pub bench: String,
    /// Whether the benchmark belongs to SpecFP95.
    pub fp: bool,
    /// The measured metrics.
    pub metrics: SimMetrics,
}

impl ShardRecord {
    /// Builds the record for one completed campaign spec.
    pub fn from_result(index: usize, fingerprint: u64, result: &RunResult) -> Self {
        ShardRecord {
            index,
            fingerprint,
            bench: result.bench.to_string(),
            fp: result.fp,
            metrics: result.metrics.clone(),
        }
    }

    /// Encodes the record as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"index\": {}, \"fingerprint\": \"{:016x}\", \"bench\": \"{}\", \"fp\": {}, \"metrics\": {}}}",
            self.index,
            self.fingerprint,
            escape(&self.bench),
            self.fp,
            encode_metrics(&self.metrics),
        )
    }

    /// Decodes one record line.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed JSON or a malformed record.
    pub fn parse(line: &str) -> Result<Self, CodecError> {
        Self::from_value(&parse_json(line).map_err(|e| CodecError::new(e.to_string()))?)
    }

    /// Decodes an already parsed record object (also used for `record`
    /// frames of the distributed transport, which carry the same fields).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a malformed record.
    pub fn from_value(v: &JsonValue) -> Result<Self, CodecError> {
        let fingerprint = u64::from_str_radix(str_field(v, "fingerprint")?, 16)
            .map_err(|_| CodecError::new("field `fingerprint` is not a hex u64"))?;
        Ok(ShardRecord {
            index: usize_field(v, "index")?,
            fingerprint,
            bench: str_field(v, "bench")?.to_string(),
            fp: bool_field(v, "fp")?,
            metrics: decode_metrics(field(v, "metrics")?)?,
        })
    }

    /// Converts the record back into the [`RunResult`] the worker
    /// observed, verifying the recorded workload identity against the
    /// campaign spec the record claims to answer.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when the recorded workload label or `fp`
    /// flag contradicts the spec (both indicate a record from an
    /// incompatible binary or a drifted plan).
    pub fn into_run_result(self, spec: &RunSpec) -> Result<RunResult, CodecError> {
        if self.bench != spec.workload.label() {
            return Err(CodecError::new(format!(
                "record is for workload `{}` but the spec is `{}`",
                self.bench,
                spec.workload.label()
            )));
        }
        if self.fp != spec.workload.fp() {
            return Err(CodecError::new(format!(
                "workload `{}` has fp={} but the record says fp={}",
                self.bench,
                spec.workload.fp(),
                self.fp
            )));
        }
        Ok(RunResult { bench: self.bench, fp: self.fp, metrics: self.metrics })
    }
}

/// The first line of a shard file: which campaign the shard belongs to
/// (enough to re-derive the plan deterministically) and which slice of
/// it the worker executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignHeader {
    /// Scenario names, in campaign order (`all` already expanded).
    pub scenarios: Vec<String>,
    /// Canonical JSON texts of runtime-loaded sweep definitions
    /// (empty for campaigns built purely from built-in scenarios).
    ///
    /// Runtime sweeps have no registry entry another process could
    /// resolve their names against, so the definitions themselves travel
    /// in the header: workers, `merge` and `resume` rebuild a
    /// [`Registry`](crate::scenario::Registry) from these texts before
    /// resolving `scenarios`.
    pub sweeps: Vec<String>,
    /// Measured instructions per benchmark.
    pub insts: u64,
    /// Warmup instructions per benchmark.
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
    /// Whether the reduced `--quick` sweeps were planned.
    pub quick: bool,
    /// This worker's shard index (`I` of `I/N`).
    pub shard: usize,
    /// Total shard count (`N` of `I/N`).
    pub of: usize,
    /// Total number of specs in the flattened campaign plan (sanity
    /// check against the re-derived plan).
    pub runs: usize,
}

impl CampaignHeader {
    /// Builds the header for one shard of a campaign planned under
    /// `opts` (`jobs` is intra-process and deliberately not recorded).
    pub fn new(
        scenarios: Vec<String>,
        opts: &ExperimentOpts,
        shard: usize,
        of: usize,
        runs: usize,
    ) -> Self {
        CampaignHeader {
            scenarios,
            sweeps: Vec::new(),
            insts: opts.insts,
            warmup: opts.warmup,
            seed: opts.seed,
            quick: opts.quick,
            shard,
            of,
            runs,
        }
    }

    /// Attaches runtime sweep definitions (canonical JSON texts) to the
    /// header (builder-style).
    #[must_use]
    pub fn with_sweeps(mut self, sweeps: Vec<String>) -> Self {
        self.sweeps = sweeps;
        self
    }

    /// The options the campaign was planned under (worker threads reset
    /// to the default).
    pub fn opts(&self) -> ExperimentOpts {
        ExperimentOpts {
            insts: self.insts,
            warmup: self.warmup,
            seed: self.seed,
            quick: self.quick,
            ..ExperimentOpts::default()
        }
    }

    /// Whether two headers describe the same campaign (everything but
    /// the shard index must agree for their files to be mergeable).
    pub fn same_campaign(&self, other: &CampaignHeader) -> bool {
        self.scenarios == other.scenarios
            && self.sweeps == other.sweeps
            && self.insts == other.insts
            && self.warmup == other.warmup
            && self.seed == other.seed
            && self.quick == other.quick
            && self.of == other.of
            && self.runs == other.runs
    }

    /// [`to_line`](Self::to_line) with the campaign fingerprint stamped
    /// in as an extra field. A journaling coordinator writes this as the
    /// journal's first line; [`RecordFile::parse`] surfaces the stamp so
    /// `resume` can verify its re-derived plan against it. The line still
    /// parses as a plain [`CampaignHeader`] (unknown fields are ignored),
    /// so a completed journal doubles as a valid one-shard shard file.
    pub fn to_journal_line(&self, fingerprint: u64) -> String {
        let line = self.to_line();
        format!("{}, \"campaign_fingerprint\": \"{fingerprint:016x}\"}}", &line[..line.len() - 1])
    }

    /// Encodes the header as one JSON line (no trailing newline).
    ///
    /// The `sweeps` field is only emitted when non-empty, so headers of
    /// campaigns without runtime sweeps render exactly as they did
    /// before the field existed (and old binaries, which ignore unknown
    /// fields, still parse headers that do carry sweeps).
    pub fn to_line(&self) -> String {
        let names: Vec<String> =
            self.scenarios.iter().map(|s| format!("\"{}\"", escape(s))).collect();
        let sweeps = if self.sweeps.is_empty() {
            String::new()
        } else {
            let texts: Vec<String> =
                self.sweeps.iter().map(|s| format!("\"{}\"", escape(s))).collect();
            format!("\"sweeps\": [{}], ", texts.join(", "))
        };
        format!(
            "{{\"scenarios\": [{}], {sweeps}\"insts\": {}, \"warmup\": {}, \"seed\": {}, \"quick\": {}, \"shard\": {}, \"of\": {}, \"runs\": {}}}",
            names.join(", "),
            self.insts,
            self.warmup,
            self.seed,
            self.quick,
            self.shard,
            self.of,
            self.runs,
        )
    }

    /// Decodes one header line.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed JSON, a malformed header, or
    /// an inconsistent shard slice (`of` = 0 or `shard` ≥ `of`).
    pub fn parse(line: &str) -> Result<Self, CodecError> {
        Self::from_value(&parse_json(line).map_err(|e| CodecError::new(e.to_string()))?)
    }

    /// Decodes an already parsed header object (also used for the
    /// campaign description inside a `hello` frame).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a malformed header or an inconsistent
    /// shard slice.
    pub fn from_value(v: &JsonValue) -> Result<Self, CodecError> {
        let scenarios = field(v, "scenarios")?
            .as_array()
            .ok_or_else(|| CodecError::new("field `scenarios` is not an array"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| CodecError::new("non-string entry in `scenarios`"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let sweeps = match v.get("sweeps") {
            None => Vec::new(),
            Some(s) => s
                .as_array()
                .ok_or_else(|| CodecError::new("field `sweeps` is not an array"))?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| CodecError::new("non-string entry in `sweeps`"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let header = CampaignHeader {
            scenarios,
            sweeps,
            insts: u64_field(v, "insts")?,
            warmup: u64_field(v, "warmup")?,
            seed: u64_field(v, "seed")?,
            quick: bool_field(v, "quick")?,
            shard: usize_field(v, "shard")?,
            of: usize_field(v, "of")?,
            runs: usize_field(v, "runs")?,
        };
        if header.of == 0 {
            return Err(CodecError::new("shard count 0/0 is invalid"));
        }
        if header.shard >= header.of {
            return Err(CodecError::new(format!(
                "shard index {} must be less than shard count {}",
                header.shard, header.of
            )));
        }
        Ok(header)
    }
}

/// How [`RecordFile::parse`] treats a final line with no trailing
/// newline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailPolicy {
    /// An incomplete final line is corruption. Right for finished shard
    /// files: workers always terminate every record line.
    Reject,
    /// An incomplete final line is dropped and reported via
    /// [`RecordFile::torn`]. Right for the journal of a crashed
    /// coordinator, whose last `write` may have been cut mid-line.
    DropTorn,
}

/// A parsed header+records JSON-lines file: the shard files workers
/// emit and the write-ahead journal the distributed coordinator keeps
/// share this exact shape, so one reader serves `merge`, the
/// `Subprocess` executor, and `resume`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordFile {
    /// The campaign header from the first line.
    pub header: CampaignHeader,
    /// Campaign fingerprint stamped next to the header by a journaling
    /// coordinator ([`CampaignHeader::to_journal_line`]); `None` for
    /// plain shard files.
    pub campaign_fingerprint: Option<u64>,
    /// One record per complete record line, in file order.
    pub records: Vec<ShardRecord>,
    /// Byte length of the valid prefix: everything up to and including
    /// the last complete line. A resuming coordinator truncates the
    /// journal here before appending.
    pub valid_len: usize,
    /// Bytes of the torn final line dropped under
    /// [`TailPolicy::DropTorn`] (0 when the file ends cleanly).
    pub torn: usize,
}

impl RecordFile {
    /// Parses a header+records file from raw bytes.
    ///
    /// Only *complete* lines (terminated by `\n`) are parsed; a record
    /// is therefore never assembled from a partially written line. What
    /// happens to an unterminated tail is the `tail` policy's call.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] (naming the 1-based line) when the header
    /// or any complete record line is malformed, when no complete header
    /// line exists, or — under [`TailPolicy::Reject`] — when the final
    /// line is unterminated.
    pub fn parse(bytes: &[u8], tail: TailPolicy) -> Result<Self, CodecError> {
        let valid_len = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(last) => last + 1,
            None => 0,
        };
        let torn = bytes.len() - valid_len;
        if torn > 0 && tail == TailPolicy::Reject {
            return Err(CodecError::new(format!(
                "truncated final line ({torn} byte(s) with no trailing newline)"
            )));
        }
        // Strict UTF-8: these files are machine-written, so a bad byte
        // in a *complete* line is disk corruption and must not be
        // smoothed over into a "valid" record. A multi-byte character
        // torn by a crash lives past the last newline, outside this
        // slice, so journal recovery is unaffected.
        let text = std::str::from_utf8(&bytes[..valid_len])
            .map_err(|e| CodecError::new(format!("invalid UTF-8 at byte {}", e.valid_up_to())))?;
        let mut lines = text.lines().enumerate();
        let (_, first) =
            lines.next().ok_or_else(|| CodecError::new("empty file (missing campaign header)"))?;
        let at_line = |n: usize, e: CodecError| CodecError::new(format!("line {}: {e}", n + 1));
        let v = parse_json(first).map_err(|e| at_line(0, CodecError::new(e.to_string())))?;
        let header = CampaignHeader::from_value(&v).map_err(|e| at_line(0, e))?;
        let campaign_fingerprint = match v.get("campaign_fingerprint") {
            Some(fp) => {
                Some(fp.as_str().and_then(|s| u64::from_str_radix(s, 16).ok()).ok_or_else(
                    || at_line(0, CodecError::new("field `campaign_fingerprint` is not a hex u64")),
                )?)
            }
            None => None,
        };
        let mut records = Vec::new();
        for (n, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            records.push(ShardRecord::parse(line).map_err(|e| at_line(n, e))?);
        }
        Ok(RecordFile { header, campaign_fingerprint, records, valid_len, torn })
    }
}

/// One frame of the distributed campaign protocol
/// ([`crate::transport`]): newline-delimited JSON over TCP, reusing the
/// shard-file codec for the payload types.
///
/// The conversation is:
///
/// 1. coordinator → worker: [`Hello`](Frame::Hello) carrying the
///    [`CampaignHeader`] (enough to re-derive the plan) and the
///    coordinator's campaign fingerprint;
/// 2. worker → coordinator: `Hello` with the fingerprint of the plan
///    the *worker* derived (no campaign — drift check);
/// 3. coordinator → worker: [`Lease`](Frame::Lease) with the plan
///    indices to simulate;
/// 4. worker → coordinator: one [`Record`](Frame::Record) per completed
///    index, then [`Done`](Frame::Done) to acknowledge the lease;
/// 5. steps 3–4 repeat until the coordinator answers with `Done`
///    instead of a new lease: the campaign is complete.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake. The coordinator's hello carries the campaign; the
    /// worker's reply omits it and echoes the fingerprint it computed
    /// from its own re-derived plan.
    Hello {
        /// The campaign description (coordinator → worker only).
        campaign: Option<CampaignHeader>,
        /// [`crate::run::campaign_fingerprint`] of the flattened plan.
        fingerprint: u64,
    },
    /// A work-item lease: plan indices for the worker to simulate.
    Lease {
        /// Coordinator-assigned lease id (diagnostics; re-issued leases
        /// get fresh ids).
        id: u64,
        /// The campaign plan indices to simulate.
        indices: Vec<usize>,
    },
    /// One completed simulation (worker → coordinator). Boxed: the
    /// full metrics set dwarfs the other variants.
    Record(Box<ShardRecord>),
    /// Worker → coordinator: the current lease's records are all sent.
    /// Coordinator → worker: no work remains, disconnect cleanly.
    Done,
    /// Coordinator → worker, instead of a hello: no campaign is being
    /// served right now — disconnect and try again after `after_ms`
    /// milliseconds (the multi-campaign service sends this to workers
    /// that arrive between campaigns, so they never sit in a handshake
    /// that cannot progress).
    Retry {
        /// Suggested reconnect delay, in milliseconds.
        after_ms: u64,
    },
}

impl Frame {
    /// Encodes the frame as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Frame::Hello { campaign, fingerprint } => match campaign {
                Some(header) => format!(
                    "{{\"type\": \"hello\", \"fingerprint\": \"{fingerprint:016x}\", \
                     \"campaign\": {}}}",
                    header.to_line()
                ),
                None => format!("{{\"type\": \"hello\", \"fingerprint\": \"{fingerprint:016x}\"}}"),
            },
            Frame::Lease { id, indices } => {
                let list: Vec<String> = indices.iter().map(usize::to_string).collect();
                format!("{{\"type\": \"lease\", \"id\": {id}, \"indices\": [{}]}}", list.join(", "))
            }
            // A record frame is a shard record plus the `type` tag, so
            // the two codecs cannot drift apart.
            Frame::Record(record) => format!("{{\"type\": \"record\", {}", &record.to_line()[1..]),
            Frame::Done => "{\"type\": \"done\"}".to_string(),
            Frame::Retry { after_ms } => {
                format!("{{\"type\": \"retry\", \"after_ms\": {after_ms}}}")
            }
        }
    }

    /// Decodes one frame line.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed JSON, an unknown frame type,
    /// or a malformed payload.
    pub fn parse(line: &str) -> Result<Self, CodecError> {
        let v = parse_json(line).map_err(|e| CodecError::new(e.to_string()))?;
        match str_field(&v, "type")? {
            "hello" => {
                let fingerprint = u64::from_str_radix(str_field(&v, "fingerprint")?, 16)
                    .map_err(|_| CodecError::new("field `fingerprint` is not a hex u64"))?;
                let campaign = match v.get("campaign") {
                    Some(header) => Some(CampaignHeader::from_value(header)?),
                    None => None,
                };
                Ok(Frame::Hello { campaign, fingerprint })
            }
            "lease" => {
                let indices = field(&v, "indices")?
                    .as_array()
                    .ok_or_else(|| CodecError::new("field `indices` is not an array"))?
                    .iter()
                    .map(|i| {
                        i.as_u64()
                            .and_then(|i| usize::try_from(i).ok())
                            .ok_or_else(|| CodecError::new("non-usize entry in `indices`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Frame::Lease { id: u64_field(&v, "id")?, indices })
            }
            "record" => Ok(Frame::Record(Box::new(ShardRecord::from_value(&v)?))),
            "done" => Ok(Frame::Done),
            "retry" => Ok(Frame::Retry { after_ms: u64_field(&v, "after_ms")? }),
            other => Err(CodecError::new(format!("unknown frame type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunSpec;
    use rfcache_core::{RegFileConfig, SingleBankConfig};

    fn simulated_metrics() -> SimMetrics {
        let spec = RunSpec::known("li", RegFileConfig::Single(SingleBankConfig::one_cycle()))
            .insts(2_000)
            .warmup(400);
        spec.run().metrics
    }

    #[test]
    fn real_simulation_metrics_round_trip() {
        let m = simulated_metrics();
        let decoded = decode_metrics_str(&encode_metrics(&m)).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn extreme_counters_round_trip() {
        let m = SimMetrics {
            cycles: u64::MAX,
            committed: u64::MAX - 1,
            rf_int: RegFileStats { values_read_many: u64::MAX, ..Default::default() },
            rf_fp: RegFileStats { prefetch_dropped: u64::MAX, ..Default::default() },
            fetch: FetchStats { mispredicted_branches: u64::MAX, ..Default::default() },
            dcache_hit_rate: Some(0.1 + 0.2), // a value with no short decimal form
            occupancy_value: OccupancyHistogram::from_parts(vec![0, u64::MAX, 3], u64::MAX),
            ..Default::default()
        };
        let decoded = decode_metrics_str(&encode_metrics(&m)).unwrap();
        assert_eq!(m, decoded);
        assert_eq!(decoded.cycles, u64::MAX);
        assert_eq!(decoded.occupancy_value.counts(), &[0, u64::MAX, 3]);
    }

    #[test]
    fn default_metrics_round_trip() {
        let m = SimMetrics::default();
        assert_eq!(m, decode_metrics_str(&encode_metrics(&m)).unwrap());
    }

    #[test]
    fn decode_rejects_missing_and_mistyped_fields() {
        let good = encode_metrics(&SimMetrics::default());
        assert!(decode_metrics_str(&good.replace("\"cycles\"", "\"cycle\"")).is_err());
        assert!(
            decode_metrics_str(&good.replace("\"committed\": 0", "\"committed\": \"0\"")).is_err()
        );
        assert!(decode_metrics_str("not json").is_err());
    }

    #[test]
    fn shard_record_round_trips_and_resolves_the_profile() {
        let spec = RunSpec::known("swim", RegFileConfig::Single(SingleBankConfig::one_cycle()))
            .insts(1_500)
            .warmup(300);
        let result = spec.run();
        let record = ShardRecord::from_result(7, spec.fingerprint(), &result);
        let parsed = ShardRecord::parse(&record.to_line()).unwrap();
        assert_eq!(record, parsed);
        let back = parsed.into_run_result(&spec).unwrap();
        assert_eq!(back.bench, "swim");
        assert!(back.fp);
        assert_eq!(back.metrics, result.metrics);
    }

    #[test]
    fn shard_record_rejects_bench_and_fp_disagreeing_with_the_spec() {
        let spec = RunSpec::known("li", RegFileConfig::Single(SingleBankConfig::one_cycle()));
        let mut record = ShardRecord {
            index: 0,
            fingerprint: 1,
            bench: "quake".into(),
            fp: false,
            metrics: SimMetrics::default(),
        };
        assert!(record.clone().into_run_result(&spec).is_err());
        record.bench = "li".into();
        record.fp = true; // li is SpecInt95
        assert!(record.clone().into_run_result(&spec).is_err());
        record.fp = false;
        assert!(record.into_run_result(&spec).is_ok());
    }

    #[test]
    fn campaign_header_round_trips_and_validates_the_slice() {
        let opts = ExperimentOpts::smoke();
        let header = CampaignHeader::new(vec!["fig6".into(), "table2".into()], &opts, 1, 4, 36);
        let parsed = CampaignHeader::parse(&header.to_line()).unwrap();
        assert_eq!(header, parsed);
        assert!(header.same_campaign(&parsed));
        assert_eq!(parsed.opts().insts, opts.insts);
        assert_eq!(parsed.opts().quick, opts.quick);

        let mut other = header.clone();
        other.shard = 2;
        assert!(header.same_campaign(&other), "shard index is not campaign identity");
        other.insts += 1;
        assert!(!header.same_campaign(&other));

        let bad = header.to_line().replace("\"shard\": 1, \"of\": 4", "\"shard\": 4, \"of\": 4");
        assert!(CampaignHeader::parse(&bad).unwrap_err().to_string().contains("less than"));
        let zero = header.to_line().replace("\"of\": 4", "\"of\": 0");
        assert!(CampaignHeader::parse(&zero).is_err());
    }

    #[test]
    fn record_file_parses_shard_and_journal_shapes() {
        let opts = ExperimentOpts::smoke();
        let header = CampaignHeader::new(vec!["fig6".into()], &opts, 0, 1, 2);
        let spec = RunSpec::known("li", RegFileConfig::Single(SingleBankConfig::one_cycle()))
            .insts(1_500)
            .warmup(300);
        let record = ShardRecord::from_result(0, spec.fingerprint(), &spec.run());

        // Plain shard file: no fingerprint stamp.
        let shard = format!("{}\n{}\n", header.to_line(), record.to_line());
        let parsed = RecordFile::parse(shard.as_bytes(), TailPolicy::Reject).unwrap();
        assert_eq!(parsed.header, header);
        assert_eq!(parsed.campaign_fingerprint, None);
        assert_eq!(parsed.records, vec![record.clone()]);
        assert_eq!(parsed.valid_len, shard.len());
        assert_eq!(parsed.torn, 0);

        // Journal: fingerprint stamped, still a parseable plain header.
        let journal = format!("{}\n{}\n", header.to_journal_line(0xfeed), record.to_line());
        assert_eq!(CampaignHeader::parse(journal.lines().next().unwrap()).unwrap(), header);
        let parsed = RecordFile::parse(journal.as_bytes(), TailPolicy::Reject).unwrap();
        assert_eq!(parsed.campaign_fingerprint, Some(0xfeed));
        assert_eq!(parsed.records.len(), 1);

        // A torn tail is fatal for shard files, recovered for journals.
        let torn = format!("{journal}{{\"index\": 1, \"finge");
        let err = RecordFile::parse(torn.as_bytes(), TailPolicy::Reject).unwrap_err();
        assert!(err.to_string().contains("truncated final line"), "{err}");
        let parsed = RecordFile::parse(torn.as_bytes(), TailPolicy::DropTorn).unwrap();
        assert_eq!(parsed.records, vec![record]);
        assert_eq!(parsed.valid_len, journal.len());
        assert_eq!(parsed.torn, torn.len() - journal.len());

        // A malformed *complete* line is corruption under either policy,
        // and the error names the line.
        let corrupt = format!("{journal}not json\n");
        for policy in [TailPolicy::Reject, TailPolicy::DropTorn] {
            let err = RecordFile::parse(corrupt.as_bytes(), policy).unwrap_err();
            assert!(err.to_string().starts_with("line 3:"), "{err}");
        }

        // No complete header line: empty file or torn header.
        assert!(RecordFile::parse(b"", TailPolicy::DropTorn).is_err());
        let head = header.to_journal_line(1);
        let torn_header = &head.as_bytes()[..head.len() / 2];
        assert!(RecordFile::parse(torn_header, TailPolicy::DropTorn).is_err());

        // A corrupt byte inside a complete line is an error, not a
        // U+FFFD-mangled "valid" record.
        let mut mangled = journal.clone().into_bytes();
        mangled[journal.find("\"bench\"").unwrap() + 2] = 0xFF;
        let err = RecordFile::parse(&mangled, TailPolicy::DropTorn).unwrap_err();
        assert!(err.to_string().contains("invalid UTF-8"), "{err}");
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let opts = ExperimentOpts::smoke();
        let header = CampaignHeader::new(vec!["fig6".into()], &opts, 0, 1, 12);
        let spec = RunSpec::known("li", RegFileConfig::Single(SingleBankConfig::one_cycle()))
            .insts(1_500)
            .warmup(300);
        let record = ShardRecord::from_result(3, spec.fingerprint(), &spec.run());
        let frames = [
            Frame::Hello { campaign: Some(header), fingerprint: 0x00ab_cdef_0123_4567 },
            Frame::Hello { campaign: None, fingerprint: u64::MAX },
            Frame::Lease { id: 7, indices: vec![0, 5, 11] },
            Frame::Lease { id: 8, indices: vec![] },
            Frame::Record(Box::new(record)),
            Frame::Done,
            Frame::Retry { after_ms: 500 },
        ];
        for frame in &frames {
            let line = frame.to_line();
            assert!(!line.contains('\n'), "frames must be single lines: {line}");
            assert_eq!(&Frame::parse(&line).unwrap(), frame, "{line}");
        }
    }

    #[test]
    fn frame_parse_rejects_unknown_types_and_bad_payloads() {
        assert!(Frame::parse("{\"type\": \"nope\"}").unwrap_err().to_string().contains("nope"));
        assert!(Frame::parse("{\"id\": 1}").is_err(), "missing type field");
        assert!(Frame::parse("{\"type\": \"lease\", \"id\": 1}").is_err(), "missing indices");
        assert!(
            Frame::parse("{\"type\": \"lease\", \"id\": 1, \"indices\": [-1]}").is_err(),
            "negative index"
        );
        assert!(Frame::parse("{\"type\": \"hello\", \"fingerprint\": \"xyz\"}").is_err());
        assert!(Frame::parse("not json").is_err());
    }
}
