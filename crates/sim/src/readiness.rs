//! Socket readiness for the event-driven coordinator: a thin,
//! dependency-free wrapper over `poll(2)`.
//!
//! The distributed coordinator ([`crate::transport::serve`]) owns every
//! connection on one thread; instead of blocking per socket it asks the
//! OS which sockets are ready and only then reads/writes them. The
//! stdlib has no readiness API, so this module declares the `poll`
//! symbol directly (it lives in the C runtime the stdlib already links
//! against — no external crate involved) and wraps it in a small
//! registration set, [`PollSet`].
//!
//! Off Unix there is no `poll(2)`; the fallback implementation sleeps
//! briefly and reports every registered socket as ready, degrading the
//! event loop to a bounded-rate poller over nonblocking sockets —
//! slower, but observably identical (nonblocking reads/writes simply
//! return `WouldBlock` when the fallback guessed wrong).

use std::io;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// An OS-level socket handle a [`PollSet`] can wait on. On Unix this is
/// the raw file descriptor; elsewhere it is an opaque placeholder (the
/// fallback poller never dereferences it).
pub type SockFd = i32;

/// The pollable handle of a listener.
#[cfg(unix)]
pub fn listener_fd(listener: &TcpListener) -> SockFd {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

/// The pollable handle of a stream.
#[cfg(unix)]
pub fn stream_fd(stream: &TcpStream) -> SockFd {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

/// The pollable handle of a listener (placeholder off Unix).
#[cfg(not(unix))]
pub fn listener_fd(_listener: &TcpListener) -> SockFd {
    0
}

/// The pollable handle of a stream (placeholder off Unix).
#[cfg(not(unix))]
pub fn stream_fd(_stream: &TcpStream) -> SockFd {
    0
}

#[cfg(unix)]
mod sys {
    /// `struct pollfd` from `<poll.h>`: identical layout on every Unix.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "linux")]
    pub type Nfds = core::ffi::c_ulong;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub type Nfds = core::ffi::c_uint;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: Nfds, timeout: core::ffi::c_int) -> core::ffi::c_int;
    }
}

/// One registered socket: the interest declared before the wait and the
/// readiness reported after it.
struct Entry {
    fd: SockFd,
    want_read: bool,
    want_write: bool,
    readable: bool,
    writable: bool,
}

/// A reusable poll registration set.
///
/// Per loop iteration: [`clear`](Self::clear), [`register`](Self::register)
/// every socket of interest (the returned slot indexes the results),
/// [`poll`](Self::poll), then query [`readable`](Self::readable) /
/// [`writable`](Self::writable) per slot. Error/hangup conditions are
/// folded into readability: the subsequent read observes the actual
/// error or EOF, which is the single place those are handled anyway.
#[derive(Default)]
pub struct PollSet {
    entries: Vec<Entry>,
}

impl PollSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every registration (readiness results included).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Registers a socket with the given interest; the returned slot is
    /// valid until the next [`clear`](Self::clear).
    pub fn register(&mut self, fd: SockFd, want_read: bool, want_write: bool) -> usize {
        self.entries.push(Entry { fd, want_read, want_write, readable: false, writable: false });
        self.entries.len() - 1
    }

    /// Whether the slot's socket was readable (or in an error/hangup
    /// state) after the last [`poll`](Self::poll).
    pub fn readable(&self, slot: usize) -> bool {
        self.entries[slot].readable
    }

    /// Whether the slot's socket was writable after the last
    /// [`poll`](Self::poll).
    pub fn writable(&self, slot: usize) -> bool {
        self.entries[slot].writable
    }

    /// Blocks until at least one registered socket is ready or `timeout`
    /// passes, then records per-slot readiness.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (`EINTR` is retried internally).
    #[cfg(unix)]
    pub fn poll(&mut self, timeout: Duration) -> io::Result<()> {
        let mut fds: Vec<sys::PollFd> = self
            .entries
            .iter()
            .map(|e| sys::PollFd {
                fd: e.fd,
                events: if e.want_read { sys::POLLIN } else { 0 }
                    | if e.want_write { sys::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as core::ffi::c_int;
        loop {
            let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::Nfds, timeout_ms) };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        for (entry, fd) in self.entries.iter_mut().zip(&fds) {
            // Errors and hangups surface as readability so the owner's
            // next read reports the concrete failure.
            entry.readable =
                fd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            entry.writable = fd.revents & (sys::POLLOUT | sys::POLLERR) != 0;
        }
        Ok(())
    }

    /// Fallback for platforms without `poll(2)`: sleep briefly, then
    /// report every registered socket as ready per its interest. The
    /// nonblocking sockets behind the entries turn wrong guesses into
    /// harmless `WouldBlock` results.
    #[cfg(not(unix))]
    pub fn poll(&mut self, timeout: Duration) -> io::Result<()> {
        std::thread::sleep(timeout.min(Duration::from_millis(20)));
        for entry in &mut self.entries {
            entry.readable = entry.want_read;
            entry.writable = entry.want_write;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn listener_becomes_readable_on_pending_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut set = PollSet::new();

        set.clear();
        let slot = set.register(listener_fd(&listener), true, false);
        set.poll(Duration::from_millis(0)).unwrap();
        #[cfg(unix)]
        assert!(!set.readable(slot), "no connection is pending yet");

        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set.clear();
        let slot = set.register(listener_fd(&listener), true, false);
        set.poll(Duration::from_secs(5)).unwrap();
        assert!(set.readable(slot), "a pending connection must wake the poll");
        drop(client);
    }

    #[test]
    fn stream_reports_write_then_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();

        let mut set = PollSet::new();
        let slot = set.register(stream_fd(&client), true, true);
        set.poll(Duration::from_secs(5)).unwrap();
        assert!(set.writable(slot), "a fresh connection has send-buffer space");
        #[cfg(unix)]
        assert!(!set.readable(slot), "nothing has been sent yet");

        accepted.write_all(b"ping\n").unwrap();
        set.clear();
        let slot = set.register(stream_fd(&client), true, false);
        set.poll(Duration::from_secs(5)).unwrap();
        assert!(set.readable(slot), "delivered bytes must wake the poll");
    }

    #[test]
    fn peer_close_surfaces_as_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted);

        let mut set = PollSet::new();
        let slot = set.register(stream_fd(&client), true, false);
        set.poll(Duration::from_secs(5)).unwrap();
        assert!(set.readable(slot), "EOF must be observable through readiness");
    }
}
