//! Single-run and suite-run drivers.

use rfcache_core::RegFileConfig;
use rfcache_pipeline::{Cpu, PipelineConfig, SimMetrics};
use rfcache_workload::{BenchProfile, TraceGenerator};

/// Everything needed to simulate one benchmark on one register file
/// architecture.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The benchmark profile.
    pub profile: BenchProfile,
    /// The register file architecture under study.
    pub rf: RegFileConfig,
    /// Core configuration.
    pub pipeline: PipelineConfig,
    /// Instructions to measure after warmup.
    pub insts: u64,
    /// Warmup instructions (predictor/cache training, excluded from the
    /// measured counters — the paper's "skipping the initialization").
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
}

impl RunSpec {
    /// Creates a spec for the named benchmark with default pipeline,
    /// 200k measured instructions and 50k warmup.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not a SPEC95 program name.
    pub fn new(bench: &str, rf: RegFileConfig) -> Self {
        let profile = BenchProfile::by_name(bench)
            .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
        RunSpec {
            profile,
            rf,
            pipeline: PipelineConfig::default(),
            insts: 200_000,
            warmup: 50_000,
            seed: 42,
        }
    }

    /// Creates a spec from a profile value.
    pub fn from_profile(profile: BenchProfile, rf: RegFileConfig) -> Self {
        RunSpec {
            profile,
            rf,
            pipeline: PipelineConfig::default(),
            insts: 200_000,
            warmup: 50_000,
            seed: 42,
        }
    }

    /// Sets the measured instruction count (builder-style).
    #[must_use]
    pub fn insts(mut self, insts: u64) -> Self {
        self.insts = insts;
        self
    }

    /// Sets the warmup instruction count (builder-style).
    #[must_use]
    pub fn warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the workload seed (builder-style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the pipeline configuration (builder-style).
    #[must_use]
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Simulates the spec and returns the result.
    pub fn run(&self) -> RunResult {
        let trace = TraceGenerator::new(self.profile, self.seed);
        let mut cpu = Cpu::new(self.pipeline, self.rf, trace);
        if self.warmup > 0 {
            cpu.run(self.warmup);
            cpu.reset_metrics(); // counters restart at zero
        }
        let metrics = cpu.run(self.insts);
        RunResult { bench: self.profile.name, fp: self.profile.fp, metrics }
    }
}

/// Result of one simulation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub bench: &'static str,
    /// Whether the benchmark belongs to SpecFP95.
    pub fp: bool,
    /// The metrics of the measured phase.
    pub metrics: SimMetrics,
}

impl RunResult {
    /// Instructions per cycle of the measured phase.
    pub fn ipc(&self) -> f64 {
        self.metrics.ipc()
    }
}

/// Simulations in flight at once: the machine's available parallelism
/// (the simulations are CPU-bound, so more threads only add switching
/// overhead).
fn max_parallel() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1)
}

/// Runs a set of specs in parallel (the simulations are independent),
/// preserving input order in the output.
pub fn run_suite(specs: &[RunSpec]) -> Vec<RunResult> {
    let mut results = Vec::with_capacity(specs.len());
    for chunk in specs.chunks(max_parallel()) {
        let chunk_results: Vec<RunResult> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                chunk.iter().map(|spec| scope.spawn(move || spec.run())).collect();
            handles.into_iter().map(|h| h.join().expect("simulation thread panicked")).collect()
        });
        results.extend(chunk_results);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_core::SingleBankConfig;

    fn one_cycle() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::one_cycle())
    }

    #[test]
    fn run_with_warmup_measures_requested_instructions() {
        let r = RunSpec::new("li", one_cycle()).insts(4_000).warmup(2_000).run();
        assert!(r.metrics.committed >= 4_000);
        assert!(r.metrics.committed < 4_000 + 16);
    }

    #[test]
    fn suite_preserves_order_and_parallelism_is_deterministic() {
        let specs: Vec<_> = ["li", "go", "swim"]
            .iter()
            .map(|b| RunSpec::new(b, one_cycle()).insts(2_000).warmup(500))
            .collect();
        let a = run_suite(&specs);
        let b = run_suite(&specs);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].bench, "li");
        assert_eq!(a[2].bench, "swim");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metrics.cycles, y.metrics.cycles);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_bench_panics() {
        let _ = RunSpec::new("quake", one_cycle());
    }
}
