//! Single-run and suite-run drivers.

use rfcache_core::RegFileConfig;
use rfcache_isa::TraceInst;
use rfcache_pipeline::{Cpu, PipelineConfig, SimMetrics};
use rfcache_workload::{family_member, read_trace, BenchProfile, TraceGenerator};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default measured instructions per simulation (the paper simulates
/// 100M; the synthetic traces converge well before 200k).
pub const DEFAULT_INSTS: u64 = 200_000;

/// Default warmup instructions (predictor/cache training, excluded from
/// the measured counters — the paper's "skipping the initialization").
/// Shared by ad-hoc [`RunSpec`]s, the experiment sweeps
/// ([`ExperimentOpts`](crate::experiments::ExperimentOpts)) and the CLIs,
/// so every path warms up identically.
pub const DEFAULT_WARMUP: u64 = 60_000;

/// A recorded trace workload: the instructions of an RFCT trace file,
/// loaded once and replayed (cyclically) instead of generated.
///
/// The spec identity captures the file's *content* (a [`fnv1a_64`] of
/// the raw bytes), not just its path, so a fingerprint match between
/// processes means they really simulated the same instructions.
#[derive(Clone)]
pub struct TraceWorkload {
    /// Path the trace was loaded from (diagnostic only; identity is the
    /// content hash).
    pub path: String,
    /// Label the trace's results report as their benchmark name.
    pub label: String,
    /// Whether results should be grouped with the FP suite.
    pub fp: bool,
    /// [`fnv1a_64`] of the raw trace file bytes.
    pub content: u64,
    /// The decoded instruction stream (shared, never mutated).
    pub insts: Arc<Vec<TraceInst>>,
}

impl TraceWorkload {
    /// Loads an RFCT trace file as a replayable workload.
    ///
    /// `label` defaults to the file stem when `None`.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read, is not a valid
    /// RFCT trace, or contains no instructions.
    pub fn load(path: &str, label: Option<&str>, fp: bool) -> Result<Self, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read trace file {path}: {e}"))?;
        let content = fnv1a_64(bytes.iter().copied());
        let insts =
            read_trace(&mut bytes.as_slice()).map_err(|e| format!("bad trace file {path}: {e}"))?;
        if insts.is_empty() {
            return Err(format!("trace file {path} contains no instructions"));
        }
        let label = match label {
            Some(l) => l.to_string(),
            None => std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.to_string()),
        };
        Ok(TraceWorkload { path: path.to_string(), label, fp, content, insts: Arc::new(insts) })
    }
}

impl fmt::Debug for TraceWorkload {
    /// Renders identity (path, label, fp flag, content hash, length) and
    /// never the instruction data — the `Debug` text feeds
    /// [`RunSpec::fingerprint`] and the cache's exact-match key, which
    /// must stay cheap and stable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceWorkload")
            .field("path", &self.path)
            .field("label", &self.label)
            .field("fp", &self.fp)
            .field("content", &format_args!("{:016x}", self.content))
            .field("len", &self.insts.len())
            .finish()
    }
}

/// Where a run's instruction stream comes from.
///
/// The scenario layer plans over all three kinds interchangeably: the
/// synthetic generator (the 18 built-in SPEC95 profiles and ad-hoc
/// profiles), recorded RFCT traces, and seeded families of
/// near-neighbour profiles derived from a base
/// ([`family_member`]).
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// Generate instructions from a benchmark profile.
    Synthetic(BenchProfile),
    /// Replay a recorded trace (cyclically, to fill any budget).
    Trace(TraceWorkload),
    /// Member `member` of the seeded family rooted at `base`.
    Family {
        /// The base profile the family jitters.
        base: BenchProfile,
        /// Which family member to derive (0 is the base itself).
        member: u32,
    },
}

impl WorkloadSource {
    /// The name results report as their benchmark (`go`, `li-trace`,
    /// `go~3`, ...).
    pub fn label(&self) -> String {
        match self {
            WorkloadSource::Synthetic(p) => p.name.to_string(),
            WorkloadSource::Trace(t) => t.label.clone(),
            WorkloadSource::Family { base, member } => format!("{}~{member}", base.name),
        }
    }

    /// Whether results group with the FP suite.
    pub fn fp(&self) -> bool {
        match self {
            WorkloadSource::Synthetic(p) => p.fp,
            WorkloadSource::Trace(t) => t.fp,
            WorkloadSource::Family { base, .. } => base.fp,
        }
    }
}

/// Everything needed to simulate one workload on one register file
/// architecture.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Where the instruction stream comes from.
    pub workload: WorkloadSource,
    /// The register file architecture under study.
    pub rf: RegFileConfig,
    /// Core configuration.
    pub pipeline: PipelineConfig,
    /// Instructions to measure after warmup.
    pub insts: u64,
    /// Warmup instructions (predictor/cache training, excluded from the
    /// measured counters — the paper's "skipping the initialization").
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
}

impl RunSpec {
    /// Creates a spec for the named benchmark with default pipeline,
    /// [`DEFAULT_INSTS`] measured instructions and [`DEFAULT_WARMUP`]
    /// warmup.
    ///
    /// # Errors
    ///
    /// Returns a message naming the benchmark when it is not a SPEC95
    /// program name, so frontends can turn user input into a usage error
    /// (CLI exit 2, service 400) instead of a panic.
    pub fn new(bench: &str, rf: RegFileConfig) -> Result<Self, String> {
        let profile =
            BenchProfile::by_name(bench).ok_or_else(|| format!("unknown benchmark {bench}"))?;
        Ok(Self::from_profile(profile, rf))
    }

    /// [`RunSpec::new`] for compiled-in benchmark names: panics instead
    /// of returning an error, with the caller's location in the message.
    ///
    /// Experiment tables and tests use this for names that are string
    /// literals; anything user-supplied must go through [`RunSpec::new`].
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not a SPEC95 program name.
    #[track_caller]
    pub fn known(bench: &str, rf: RegFileConfig) -> Self {
        match Self::new(bench, rf) {
            Ok(spec) => spec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a spec from a profile value.
    pub fn from_profile(profile: BenchProfile, rf: RegFileConfig) -> Self {
        Self::from_workload(WorkloadSource::Synthetic(profile), rf)
    }

    /// Creates a spec from any workload source.
    pub fn from_workload(workload: WorkloadSource, rf: RegFileConfig) -> Self {
        RunSpec {
            workload,
            rf,
            pipeline: PipelineConfig::default(),
            insts: DEFAULT_INSTS,
            warmup: DEFAULT_WARMUP,
            seed: 42,
        }
    }

    /// Sets the measured instruction count (builder-style).
    #[must_use]
    pub fn insts(mut self, insts: u64) -> Self {
        self.insts = insts;
        self
    }

    /// Sets the warmup instruction count (builder-style).
    #[must_use]
    pub fn warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the workload seed (builder-style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the pipeline configuration (builder-style).
    #[must_use]
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// A stable 64-bit fingerprint over every field of the spec
    /// ([`fnv1a_64`] of the `Debug` rendering, which covers the workload
    /// source — profile parameters, trace content hash, or family
    /// base+member — architecture, pipeline, instruction budget, warmup
    /// and seed).
    ///
    /// Shard workers stamp each emitted result with the fingerprint of
    /// the spec that produced it, so the merge path can detect *plan
    /// drift* — a coordinator and a worker that derived different
    /// campaign plans (mismatched options, binary versions, or registry
    /// order) — before folding results into the wrong report. The result
    /// cache ([`crate::cache`]) uses the same value as its shard key, but
    /// pairs it with the full `Debug` rendering for exact-match
    /// verification, so a collision is never a correctness hazard. The
    /// value is only meaningful between processes built from the same
    /// sources: it is not a persistent format.
    pub fn fingerprint(&self) -> u64 {
        fnv1a_64(format!("{self:?}").bytes())
    }

    /// Simulates the spec and returns the result.
    pub fn run(&self) -> RunResult {
        let metrics = match &self.workload {
            WorkloadSource::Synthetic(p) => self.measure(TraceGenerator::new(*p, self.seed)),
            WorkloadSource::Family { base, member } => {
                // Fold the member into the seed so siblings decorrelate
                // even when the jitter leaves a parameter unchanged.
                let seed = self.seed ^ u64::from(*member).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                self.measure(TraceGenerator::new(family_member(base, *member), seed))
            }
            WorkloadSource::Trace(t) => self.measure(t.insts.iter().cycle().cloned()),
        };
        RunResult { bench: self.workload.label(), fp: self.workload.fp(), metrics }
    }

    fn measure<I: Iterator<Item = TraceInst>>(&self, trace: I) -> SimMetrics {
        let mut cpu = Cpu::new(self.pipeline, self.rf, trace);
        if self.warmup > 0 {
            cpu.run(self.warmup);
            cpu.reset_metrics(); // counters restart at zero
        }
        cpu.run(self.insts)
    }
}

/// The 64-bit FNV-1a hash of a byte stream: the repo's one content
/// fingerprint, shared by [`RunSpec::fingerprint`],
/// [`campaign_fingerprint`] and the result cache's entry checksums
/// ([`crate::cache`]), so every layer agrees on what a spec's identity
/// hashes to.
pub fn fnv1a_64<I: IntoIterator<Item = u8>>(bytes: I) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A stable fingerprint of an entire campaign plan: FNV-1a folded over
/// every spec's [`RunSpec::fingerprint`] in plan order.
///
/// The distributed transport's handshake compares the coordinator's and
/// each worker's campaign fingerprint, so a worker that derived a
/// different plan (mismatched options, binary versions, or registry
/// order) is rejected before any lease is issued. Like the per-spec
/// fingerprint, the value is only meaningful between processes built
/// from the same sources.
pub fn campaign_fingerprint(specs: &[&RunSpec]) -> u64 {
    fnv1a_64(specs.iter().flat_map(|spec| spec.fingerprint().to_le_bytes()))
}

/// Flattens per-scenario plans into the campaign's single spec list, in
/// plan order — the shape every executor, the lease table, and
/// [`campaign_fingerprint`] agree on. One helper instead of four
/// inlined `flatten().collect()` sites keeps "what order is the flat
/// plan in" defined exactly once.
pub fn flatten_plans(plans: &[Vec<RunSpec>]) -> Vec<&RunSpec> {
    plans.iter().flatten().collect()
}

/// Result of one simulation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name (a workload label for traces and family members).
    pub bench: String,
    /// Whether the benchmark belongs to SpecFP95.
    pub fp: bool,
    /// The metrics of the measured phase.
    pub metrics: SimMetrics,
}

impl RunResult {
    /// Instructions per cycle of the measured phase.
    pub fn ipc(&self) -> f64 {
        self.metrics.ipc()
    }
}

/// Default worker count: the machine's available parallelism (the
/// simulations are CPU-bound, so more threads only add switching
/// overhead).
fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1)
}

/// Runs `n` independent tasks on `jobs` worker threads (0 = one per
/// available core) through a shared work queue, returning the results in
/// task order.
///
/// Unlike fixed chunking, the queue keeps every worker busy until the
/// work runs out, so one slow task does not idle the rest of its batch.
///
/// # Panics
///
/// Propagates a panic from any task.
pub fn par_indexed<T, F>(n: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = if jobs == 0 { default_jobs() } else { jobs }.min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, task(i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("simulation worker panicked")).collect()
    });
    tagged.sort_unstable_by_key(|t| t.0);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Runs a set of specs in parallel (the simulations are independent) on
/// one worker per available core, preserving input order in the output.
pub fn run_suite(specs: &[RunSpec]) -> Vec<RunResult> {
    run_suite_jobs(specs, 0)
}

/// [`run_suite`] with an explicit worker count (0 = one per available
/// core), as selected by `ExperimentOpts::jobs` / `experiments --jobs N`.
pub fn run_suite_jobs(specs: &[RunSpec], jobs: usize) -> Vec<RunResult> {
    par_indexed(specs.len(), jobs, |i| specs[i].run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_core::SingleBankConfig;

    fn one_cycle() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::one_cycle())
    }

    #[test]
    fn run_with_warmup_measures_requested_instructions() {
        let r = RunSpec::known("li", one_cycle()).insts(4_000).warmup(2_000).run();
        assert!(r.metrics.committed >= 4_000);
        assert!(r.metrics.committed < 4_000 + 16);
    }

    #[test]
    fn suite_preserves_order_and_parallelism_is_deterministic() {
        let specs: Vec<_> = ["li", "go", "swim"]
            .iter()
            .map(|b| RunSpec::known(b, one_cycle()).insts(2_000).warmup(500))
            .collect();
        let a = run_suite(&specs);
        let b = run_suite(&specs);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].bench, "li");
        assert_eq!(a[2].bench, "swim");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metrics.cycles, y.metrics.cycles);
        }
    }

    #[test]
    fn default_warmup_and_insts_are_shared_with_experiment_opts() {
        // Regression: ad-hoc specs used to warm up 50k while the
        // experiment sweeps (and the CLI docs) said 60k.
        let spec = RunSpec::known("li", one_cycle());
        let opts = crate::experiments::ExperimentOpts::default();
        assert_eq!(spec.warmup, DEFAULT_WARMUP);
        assert_eq!(spec.warmup, opts.warmup);
        assert_eq!(spec.insts, DEFAULT_INSTS);
        assert_eq!(spec.insts, opts.insts);
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let spec = RunSpec::known("li", one_cycle());
        assert_eq!(spec.fingerprint(), spec.clone().fingerprint(), "clone must agree");
        // Every field participates: flipping any one changes the hash.
        let base = BenchProfile::by_name("li").unwrap();
        let variants = [
            RunSpec::known("go", one_cycle()),
            spec.clone().insts(spec.insts + 1),
            spec.clone().warmup(spec.warmup + 1),
            spec.clone().seed(spec.seed + 1),
            RunSpec::from_workload(WorkloadSource::Family { base, member: 1 }, one_cycle()),
            RunSpec::from_workload(WorkloadSource::Family { base, member: 2 }, one_cycle()),
        ];
        for v in &variants {
            assert_ne!(spec.fingerprint(), v.fingerprint(), "{v:?}");
        }
        for (i, a) in variants.iter().enumerate() {
            for b in &variants[i + 1..] {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn unknown_bench_is_an_error_not_a_panic() {
        let err = RunSpec::new("quake", one_cycle()).unwrap_err();
        assert!(err.contains("unknown benchmark quake"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark quake")]
    fn known_panics_on_unknown_bench() {
        let _ = RunSpec::known("quake", one_cycle());
    }

    #[test]
    fn trace_workload_replays_and_fingerprints_content() {
        let profile = BenchProfile::by_name("li").unwrap();
        let insts: Vec<_> = TraceGenerator::new(profile, 7).take(3_000).collect();
        let dir = std::env::temp_dir().join(format!("rfct-run-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("li.rfct");
        let mut buf = Vec::new();
        rfcache_workload::write_trace(&mut buf, &insts).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let path_str = path.to_str().unwrap();
        let t = TraceWorkload::load(path_str, Some("li-trace"), false).unwrap();
        assert_eq!(t.insts.len(), 3_000);
        assert!(!format!("{t:?}").contains("pc"), "debug must not dump instructions");

        let spec = RunSpec::from_workload(WorkloadSource::Trace(t.clone()), one_cycle())
            .insts(2_000)
            .warmup(500);
        let r = spec.run();
        assert_eq!(r.bench, "li-trace");
        assert!(r.metrics.committed >= 2_000);
        let fp_a = spec.fingerprint();

        // Same path, different bytes => different fingerprint.
        let insts2: Vec<_> = TraceGenerator::new(profile, 8).take(3_000).collect();
        let mut buf2 = Vec::new();
        rfcache_workload::write_trace(&mut buf2, &insts2).unwrap();
        std::fs::write(&path, &buf2).unwrap();
        let t2 = TraceWorkload::load(path_str, Some("li-trace"), false).unwrap();
        let spec2 =
            RunSpec::from_workload(WorkloadSource::Trace(t2), one_cycle()).insts(2_000).warmup(500);
        assert_ne!(fp_a, spec2.fingerprint(), "content hash must reach the fingerprint");

        // Default label falls back to the file stem; bad paths error.
        let t3 = TraceWorkload::load(path_str, None, true).unwrap();
        assert_eq!(t3.label, "li");
        assert!(t3.fp);
        assert!(TraceWorkload::load("/nonexistent/x.rfct", None, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn family_member_runs_use_the_derived_profile() {
        let base = BenchProfile::by_name("go").unwrap();
        let m0 = RunSpec::from_workload(WorkloadSource::Family { base, member: 0 }, one_cycle())
            .insts(2_000)
            .warmup(500);
        let m1 = RunSpec::from_workload(WorkloadSource::Family { base, member: 1 }, one_cycle())
            .insts(2_000)
            .warmup(500);
        let base_run = RunSpec::from_profile(base, one_cycle()).insts(2_000).warmup(500);
        let (r0, r1, rb) = (m0.run(), m1.run(), base_run.run());
        assert_eq!(r0.bench, "go~0");
        assert_eq!(r1.bench, "go~1");
        assert_ne!(r1.metrics.cycles, rb.metrics.cycles, "member 1 should diverge from the base");
        assert_eq!(r1.metrics.cycles, m1.run().metrics.cycles, "deterministic");
    }

    #[test]
    fn campaign_fingerprint_is_order_and_content_sensitive() {
        let a = RunSpec::known("li", one_cycle());
        let b = RunSpec::known("go", one_cycle());
        let ab = campaign_fingerprint(&[&a, &b]);
        assert_eq!(ab, campaign_fingerprint(&[&a, &b]), "deterministic");
        assert_ne!(ab, campaign_fingerprint(&[&b, &a]), "plan order matters");
        assert_ne!(ab, campaign_fingerprint(&[&a]), "plan length matters");
        let c = a.clone().seed(a.seed + 1);
        assert_ne!(ab, campaign_fingerprint(&[&a, &c]), "spec content matters");
    }

    /// The work queue really fans out: with as many barrier-waiting tasks
    /// as workers, the barrier only releases if every task holds its own
    /// thread simultaneously (each worker takes exactly one task, so this
    /// cannot deadlock).
    #[test]
    fn par_indexed_runs_tasks_on_concurrent_threads() {
        use std::collections::HashSet;
        use std::sync::{Barrier, Mutex};

        let jobs = 4;
        let barrier = Barrier::new(jobs);
        let ids = Mutex::new(HashSet::new());
        let out = par_indexed(jobs, jobs, |i| {
            barrier.wait();
            ids.lock().unwrap().insert(std::thread::current().id());
            i * 2
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert_eq!(ids.lock().unwrap().len(), jobs, "expected one thread per worker");
    }

    #[test]
    fn par_indexed_preserves_order_at_any_worker_count() {
        for jobs in [0, 1, 2, 7, 64] {
            let out = par_indexed(17, jobs, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "jobs = {jobs}");
        }
        assert!(par_indexed(0, 3, |i| i).is_empty());
    }

    #[test]
    fn explicit_jobs_match_serial_results() {
        let specs: Vec<_> = ["li", "go"]
            .iter()
            .map(|b| RunSpec::known(b, one_cycle()).insts(2_000).warmup(500))
            .collect();
        let serial = run_suite_jobs(&specs, 1);
        let parallel = run_suite_jobs(&specs, 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.bench, p.bench);
            assert_eq!(s.metrics.cycles, p.metrics.cycles);
        }
    }
}
