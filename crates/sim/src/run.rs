//! Single-run and suite-run drivers.

use rfcache_core::RegFileConfig;
use rfcache_pipeline::{Cpu, PipelineConfig, SimMetrics};
use rfcache_workload::{BenchProfile, TraceGenerator};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default measured instructions per simulation (the paper simulates
/// 100M; the synthetic traces converge well before 200k).
pub const DEFAULT_INSTS: u64 = 200_000;

/// Default warmup instructions (predictor/cache training, excluded from
/// the measured counters — the paper's "skipping the initialization").
/// Shared by ad-hoc [`RunSpec`]s, the experiment sweeps
/// ([`ExperimentOpts`](crate::experiments::ExperimentOpts)) and the CLIs,
/// so every path warms up identically.
pub const DEFAULT_WARMUP: u64 = 60_000;

/// Everything needed to simulate one benchmark on one register file
/// architecture.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The benchmark profile.
    pub profile: BenchProfile,
    /// The register file architecture under study.
    pub rf: RegFileConfig,
    /// Core configuration.
    pub pipeline: PipelineConfig,
    /// Instructions to measure after warmup.
    pub insts: u64,
    /// Warmup instructions (predictor/cache training, excluded from the
    /// measured counters — the paper's "skipping the initialization").
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
}

impl RunSpec {
    /// Creates a spec for the named benchmark with default pipeline,
    /// [`DEFAULT_INSTS`] measured instructions and [`DEFAULT_WARMUP`]
    /// warmup.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not a SPEC95 program name.
    pub fn new(bench: &str, rf: RegFileConfig) -> Self {
        let profile =
            BenchProfile::by_name(bench).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
        Self::from_profile(profile, rf)
    }

    /// Creates a spec from a profile value.
    pub fn from_profile(profile: BenchProfile, rf: RegFileConfig) -> Self {
        RunSpec {
            profile,
            rf,
            pipeline: PipelineConfig::default(),
            insts: DEFAULT_INSTS,
            warmup: DEFAULT_WARMUP,
            seed: 42,
        }
    }

    /// Sets the measured instruction count (builder-style).
    #[must_use]
    pub fn insts(mut self, insts: u64) -> Self {
        self.insts = insts;
        self
    }

    /// Sets the warmup instruction count (builder-style).
    #[must_use]
    pub fn warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the workload seed (builder-style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the pipeline configuration (builder-style).
    #[must_use]
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// A stable 64-bit fingerprint over every field of the spec
    /// ([`fnv1a_64`] of the `Debug` rendering, which covers profile,
    /// architecture, pipeline, instruction budget, warmup and seed).
    ///
    /// Shard workers stamp each emitted result with the fingerprint of
    /// the spec that produced it, so the merge path can detect *plan
    /// drift* — a coordinator and a worker that derived different
    /// campaign plans (mismatched options, binary versions, or registry
    /// order) — before folding results into the wrong report. The result
    /// cache ([`crate::cache`]) uses the same value as its shard key, but
    /// pairs it with the full `Debug` rendering for exact-match
    /// verification, so a collision is never a correctness hazard. The
    /// value is only meaningful between processes built from the same
    /// sources: it is not a persistent format.
    pub fn fingerprint(&self) -> u64 {
        fnv1a_64(format!("{self:?}").bytes())
    }

    /// Simulates the spec and returns the result.
    pub fn run(&self) -> RunResult {
        let trace = TraceGenerator::new(self.profile, self.seed);
        let mut cpu = Cpu::new(self.pipeline, self.rf, trace);
        if self.warmup > 0 {
            cpu.run(self.warmup);
            cpu.reset_metrics(); // counters restart at zero
        }
        let metrics = cpu.run(self.insts);
        RunResult { bench: self.profile.name, fp: self.profile.fp, metrics }
    }
}

/// The 64-bit FNV-1a hash of a byte stream: the repo's one content
/// fingerprint, shared by [`RunSpec::fingerprint`],
/// [`campaign_fingerprint`] and the result cache's entry checksums
/// ([`crate::cache`]), so every layer agrees on what a spec's identity
/// hashes to.
pub fn fnv1a_64<I: IntoIterator<Item = u8>>(bytes: I) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A stable fingerprint of an entire campaign plan: FNV-1a folded over
/// every spec's [`RunSpec::fingerprint`] in plan order.
///
/// The distributed transport's handshake compares the coordinator's and
/// each worker's campaign fingerprint, so a worker that derived a
/// different plan (mismatched options, binary versions, or registry
/// order) is rejected before any lease is issued. Like the per-spec
/// fingerprint, the value is only meaningful between processes built
/// from the same sources.
pub fn campaign_fingerprint(specs: &[&RunSpec]) -> u64 {
    fnv1a_64(specs.iter().flat_map(|spec| spec.fingerprint().to_le_bytes()))
}

/// Flattens per-scenario plans into the campaign's single spec list, in
/// plan order — the shape every executor, the lease table, and
/// [`campaign_fingerprint`] agree on. One helper instead of four
/// inlined `flatten().collect()` sites keeps "what order is the flat
/// plan in" defined exactly once.
pub fn flatten_plans(plans: &[Vec<RunSpec>]) -> Vec<&RunSpec> {
    plans.iter().flatten().collect()
}

/// Result of one simulation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub bench: &'static str,
    /// Whether the benchmark belongs to SpecFP95.
    pub fp: bool,
    /// The metrics of the measured phase.
    pub metrics: SimMetrics,
}

impl RunResult {
    /// Instructions per cycle of the measured phase.
    pub fn ipc(&self) -> f64 {
        self.metrics.ipc()
    }
}

/// Default worker count: the machine's available parallelism (the
/// simulations are CPU-bound, so more threads only add switching
/// overhead).
fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1)
}

/// Runs `n` independent tasks on `jobs` worker threads (0 = one per
/// available core) through a shared work queue, returning the results in
/// task order.
///
/// Unlike fixed chunking, the queue keeps every worker busy until the
/// work runs out, so one slow task does not idle the rest of its batch.
///
/// # Panics
///
/// Propagates a panic from any task.
pub fn par_indexed<T, F>(n: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = if jobs == 0 { default_jobs() } else { jobs }.min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, task(i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("simulation worker panicked")).collect()
    });
    tagged.sort_unstable_by_key(|t| t.0);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Runs a set of specs in parallel (the simulations are independent) on
/// one worker per available core, preserving input order in the output.
pub fn run_suite(specs: &[RunSpec]) -> Vec<RunResult> {
    run_suite_jobs(specs, 0)
}

/// [`run_suite`] with an explicit worker count (0 = one per available
/// core), as selected by `ExperimentOpts::jobs` / `experiments --jobs N`.
pub fn run_suite_jobs(specs: &[RunSpec], jobs: usize) -> Vec<RunResult> {
    par_indexed(specs.len(), jobs, |i| specs[i].run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfcache_core::SingleBankConfig;

    fn one_cycle() -> RegFileConfig {
        RegFileConfig::Single(SingleBankConfig::one_cycle())
    }

    #[test]
    fn run_with_warmup_measures_requested_instructions() {
        let r = RunSpec::new("li", one_cycle()).insts(4_000).warmup(2_000).run();
        assert!(r.metrics.committed >= 4_000);
        assert!(r.metrics.committed < 4_000 + 16);
    }

    #[test]
    fn suite_preserves_order_and_parallelism_is_deterministic() {
        let specs: Vec<_> = ["li", "go", "swim"]
            .iter()
            .map(|b| RunSpec::new(b, one_cycle()).insts(2_000).warmup(500))
            .collect();
        let a = run_suite(&specs);
        let b = run_suite(&specs);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].bench, "li");
        assert_eq!(a[2].bench, "swim");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metrics.cycles, y.metrics.cycles);
        }
    }

    #[test]
    fn default_warmup_and_insts_are_shared_with_experiment_opts() {
        // Regression: ad-hoc specs used to warm up 50k while the
        // experiment sweeps (and the CLI docs) said 60k.
        let spec = RunSpec::new("li", one_cycle());
        let opts = crate::experiments::ExperimentOpts::default();
        assert_eq!(spec.warmup, DEFAULT_WARMUP);
        assert_eq!(spec.warmup, opts.warmup);
        assert_eq!(spec.insts, DEFAULT_INSTS);
        assert_eq!(spec.insts, opts.insts);
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let spec = RunSpec::new("li", one_cycle());
        assert_eq!(spec.fingerprint(), spec.clone().fingerprint(), "clone must agree");
        // Every field participates: flipping any one changes the hash.
        let variants = [
            RunSpec::new("go", one_cycle()),
            spec.clone().insts(spec.insts + 1),
            spec.clone().warmup(spec.warmup + 1),
            spec.clone().seed(spec.seed + 1),
        ];
        for v in &variants {
            assert_ne!(spec.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_bench_panics() {
        let _ = RunSpec::new("quake", one_cycle());
    }

    #[test]
    fn campaign_fingerprint_is_order_and_content_sensitive() {
        let a = RunSpec::new("li", one_cycle());
        let b = RunSpec::new("go", one_cycle());
        let ab = campaign_fingerprint(&[&a, &b]);
        assert_eq!(ab, campaign_fingerprint(&[&a, &b]), "deterministic");
        assert_ne!(ab, campaign_fingerprint(&[&b, &a]), "plan order matters");
        assert_ne!(ab, campaign_fingerprint(&[&a]), "plan length matters");
        let c = a.clone().seed(a.seed + 1);
        assert_ne!(ab, campaign_fingerprint(&[&a, &c]), "spec content matters");
    }

    /// The work queue really fans out: with as many barrier-waiting tasks
    /// as workers, the barrier only releases if every task holds its own
    /// thread simultaneously (each worker takes exactly one task, so this
    /// cannot deadlock).
    #[test]
    fn par_indexed_runs_tasks_on_concurrent_threads() {
        use std::collections::HashSet;
        use std::sync::{Barrier, Mutex};

        let jobs = 4;
        let barrier = Barrier::new(jobs);
        let ids = Mutex::new(HashSet::new());
        let out = par_indexed(jobs, jobs, |i| {
            barrier.wait();
            ids.lock().unwrap().insert(std::thread::current().id());
            i * 2
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert_eq!(ids.lock().unwrap().len(), jobs, "expected one thread per worker");
    }

    #[test]
    fn par_indexed_preserves_order_at_any_worker_count() {
        for jobs in [0, 1, 2, 7, 64] {
            let out = par_indexed(17, jobs, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "jobs = {jobs}");
        }
        assert!(par_indexed(0, 3, |i| i).is_empty());
    }

    #[test]
    fn explicit_jobs_match_serial_results() {
        let specs: Vec<_> = ["li", "go"]
            .iter()
            .map(|b| RunSpec::new(b, one_cycle()).insts(2_000).warmup(500))
            .collect();
        let serial = run_suite_jobs(&specs, 1);
        let parallel = run_suite_jobs(&specs, 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.bench, p.bench);
            assert_eq!(s.metrics.cycles, p.metrics.cycles);
        }
    }
}
