//! The unified scenario engine.
//!
//! Every experiment of the paper's evaluation registers here as a
//! [`Scenario`]: a name, a one-line description, and a two-phase runner —
//! a **planner** that expands [`ExperimentOpts`] into the experiment's
//! flat [`RunSpec`] list, and an **assembler** that folds the matching
//! [`RunResult`]s back into a boxed [`ScenarioReport`]. Frontends (the
//! `experiments` CLI, the smoke tests, future services) enumerate and
//! dispatch through [`registry`] instead of hard-coding the experiment
//! list, so adding an experiment means adding one module plus one
//! registry line — every frontend picks it up automatically.
//!
//! The split matters for scheduling: [`Scenario::run`] plans, simulates
//! and assembles one scenario, while [`run_campaign`] flattens the specs
//! of *many* scenarios into a single work queue so the worker pool stays
//! busy across scenario boundaries (no idle tail at the end of each
//! sweep). Results are routed back to their scenario by index, so both
//! paths produce byte-identical reports.
//!
//! # Examples
//!
//! ```
//! use rfcache_sim::experiments::ExperimentOpts;
//! use rfcache_sim::scenario;
//!
//! let fig6 = scenario::find("fig6").expect("registered");
//! let report = fig6.run(&ExperimentOpts::smoke());
//! assert!(report.series().iter().any(|(_, v)| !v.is_empty()));
//! ```

use crate::executor::{Executor, ExecutorError, InProcess};
use crate::experiments::{
    ablation, fig1, fig2, fig3, fig5, fig6, fig7, fig8, fig9, onelevel, readstats, sources, table2,
    ExperimentOpts,
};
use crate::run::{run_suite_jobs, RunResult, RunSpec};
use crate::table::TextTable;
use std::fmt;

/// What running a scenario yields: something renderable (the paper's
/// table/figure shape via `Display`), introspectable (named numeric
/// series for tests and downstream tooling), and exportable (a
/// [`TextTable`] that CSV/JSON serialization consumes).
pub trait ScenarioReport: fmt::Display + Send {
    /// The named numeric series underlying the figure or table. Every
    /// report exposes at least one non-empty series.
    fn series(&self) -> Vec<(String, Vec<f64>)>;

    /// The report as a structured table for export (`write_csv` /
    /// `write_json`).
    ///
    /// The default renders [`series`](Self::series) directly: one column
    /// per series (plus a leading index column) when all series have the
    /// same length, or long `(series, index, value)` rows otherwise.
    /// Reports with a richer natural shape (benchmark or variant labels)
    /// override this.
    fn to_table(&self) -> TextTable {
        let series = self.series();
        let uniform = series
            .first()
            .is_some_and(|(_, first)| series.iter().all(|(_, v)| v.len() == first.len()));
        if uniform {
            let mut header = vec!["index".to_string()];
            header.extend(series.iter().map(|(name, _)| name.clone()));
            let mut t = TextTable::new(header);
            for i in 0..series[0].1.len() {
                let mut row = vec![i.to_string()];
                row.extend(series.iter().map(|(_, v)| v[i].to_string()));
                t.row(row);
            }
            t
        } else {
            let mut t = TextTable::new(vec!["series".into(), "index".into(), "value".into()]);
            for (name, values) in &series {
                for (i, v) in values.iter().enumerate() {
                    t.row(vec![name.clone(), i.to_string(), v.to_string()]);
                }
            }
            t
        }
    }
}

/// Expands the options into the scenario's simulation specs.
pub type Planner = Box<dyn Fn(&ExperimentOpts) -> Vec<RunSpec> + Send + Sync>;

/// Folds the results of the planned specs (same options, same order)
/// into the scenario's report.
pub type Assembler =
    Box<dyn Fn(&ExperimentOpts, Vec<RunResult>) -> Box<dyn ScenarioReport> + Send + Sync>;

/// One registered experiment: a built-in (the paper's 13 figures and
/// tables, compiled in) or a runtime-loaded declarative sweep
/// ([`crate::sweep`]). Both are plain owned values, so a [`Registry`]
/// can mix them freely.
pub struct Scenario {
    /// CLI name (`fig1` … `fig9`, `table2`, `ablation`, `onelevel`,
    /// `sources`, `readstats`, or a sweep's declared name).
    pub name: String,
    /// One-line description shown by `experiments --list`.
    pub description: String,
    planner: Planner,
    assembler: Assembler,
}

impl Scenario {
    /// Builds a scenario (used by the experiment modules and the sweep
    /// loader). Plain `fn` items and capturing closures both coerce.
    pub fn new<P, A>(
        name: impl Into<String>,
        description: impl Into<String>,
        planner: P,
        assembler: A,
    ) -> Self
    where
        P: Fn(&ExperimentOpts) -> Vec<RunSpec> + Send + Sync + 'static,
        A: Fn(&ExperimentOpts, Vec<RunResult>) -> Box<dyn ScenarioReport> + Send + Sync + 'static,
    {
        Scenario {
            name: name.into(),
            description: description.into(),
            planner: Box::new(planner),
            assembler: Box::new(assembler),
        }
    }

    /// The scenario's simulation specs for the given options, in the
    /// order [`assemble`](Self::assemble) expects the results back.
    pub fn plan(&self, opts: &ExperimentOpts) -> Vec<RunSpec> {
        (self.planner)(opts)
    }

    /// Folds the results of [`plan`](Self::plan) (run with the *same*
    /// options, results in spec order) into the scenario's report.
    pub fn assemble(
        &self,
        opts: &ExperimentOpts,
        results: Vec<RunResult>,
    ) -> Box<dyn ScenarioReport> {
        (self.assembler)(opts, results)
    }

    /// Runs the scenario on its own: plan, simulate (parallel per
    /// `opts.jobs`), assemble.
    pub fn run(&self, opts: &ExperimentOpts) -> Box<dyn ScenarioReport> {
        let specs = self.plan(opts);
        let results = run_suite_jobs(&specs, opts.jobs);
        self.assemble(opts, results)
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario").field("name", &self.name).finish_non_exhaustive()
    }
}

/// Runs many scenarios through **one** global work queue.
///
/// All scenarios' specs are flattened into a single [`par_indexed`]
/// batch, so the tail of one scenario's sweep overlaps the head of the
/// next and the worker pool stays saturated across scenario boundaries.
/// Each result is routed back to its scenario by index, so the returned
/// reports (in input order) are byte-identical to what the same
/// [`Scenario::run`] calls would produce sequentially.
pub fn run_campaign(
    scenarios: &[&Scenario],
    opts: &ExperimentOpts,
) -> Vec<Box<dyn ScenarioReport>> {
    let plans = scenarios.iter().map(|s| s.plan(opts)).collect();
    run_campaign_planned(scenarios, opts, plans)
}

/// [`run_campaign`] over pre-computed plans — one `Vec<RunSpec>` per
/// scenario, as returned by [`Scenario::plan`] with the *same* `opts` —
/// for callers that already planned (e.g. to size the campaign) and
/// should not pay for planning twice.
///
/// # Panics
///
/// Panics if `plans` and `scenarios` differ in length.
pub fn run_campaign_planned(
    scenarios: &[&Scenario],
    opts: &ExperimentOpts,
    plans: Vec<Vec<RunSpec>>,
) -> Vec<Box<dyn ScenarioReport>> {
    run_campaign_planned_with(&InProcess::new(opts.jobs), scenarios, opts, plans)
        .expect("the in-process executor is infallible")
}

/// [`run_campaign_planned`] through an explicit execution backend —
/// the seam the multi-process (and, later, multi-host) backends plug
/// into. The executor sees the flattened plan and must return one
/// result per spec in plan order; the reports are byte-identical across
/// backends.
///
/// # Errors
///
/// Propagates the executor's failure (worker crash, corrupt shard file,
/// plan drift); the in-process backend never fails.
///
/// # Panics
///
/// Panics if `plans` and `scenarios` differ in length.
pub fn run_campaign_planned_with(
    executor: &dyn Executor,
    scenarios: &[&Scenario],
    opts: &ExperimentOpts,
    plans: Vec<Vec<RunSpec>>,
) -> Result<Vec<Box<dyn ScenarioReport>>, ExecutorError> {
    assert_eq!(plans.len(), scenarios.len(), "one plan per scenario");
    let flat = crate::run::flatten_plans(&plans);
    let results = executor.execute(&flat)?;
    Ok(run_campaign_from_parts(scenarios, opts, &plans, results))
}

/// The assemble half of a campaign: folds an already complete,
/// plan-ordered result vector back through each scenario's
/// [`assemble`](Scenario::assemble). This is what the `merge` CLI path
/// uses after decoding shard files — the simulation happened elsewhere,
/// possibly in several processes.
///
/// # Panics
///
/// Panics if `plans` and `scenarios` differ in length, or if `results`
/// does not contain exactly one result per planned spec (shard readers
/// verify coverage before calling this).
pub fn run_campaign_from_parts(
    scenarios: &[&Scenario],
    opts: &ExperimentOpts,
    plans: &[Vec<RunSpec>],
    results: Vec<RunResult>,
) -> Vec<Box<dyn ScenarioReport>> {
    assert_eq!(plans.len(), scenarios.len(), "one plan per scenario");
    let total: usize = plans.iter().map(Vec::len).sum();
    assert_eq!(results.len(), total, "one result per planned spec");
    let mut results = results.into_iter();
    scenarios
        .iter()
        .zip(plans)
        .map(|(s, plan)| s.assemble(opts, results.by_ref().take(plan.len()).collect()))
        .collect()
}

/// Total number of simulation specs the scenarios plan under `opts`
/// (what [`run_campaign`] will schedule).
pub fn campaign_size(scenarios: &[&Scenario], opts: &ExperimentOpts) -> usize {
    scenarios.iter().map(|s| s.plan(opts).len()).sum()
}

/// The built-in scenarios, in the canonical run order of
/// `experiments all` (constructed once, on first use).
fn builtins() -> &'static [Scenario] {
    static BUILTINS: std::sync::OnceLock<Vec<Scenario>> = std::sync::OnceLock::new();
    BUILTINS.get_or_init(|| {
        vec![
            table2::scenario(),
            fig1::scenario(),
            fig2::scenario(),
            fig3::scenario(),
            readstats::scenario(),
            fig5::scenario(),
            fig6::scenario(),
            fig7::scenario(),
            fig8::scenario(),
            fig9::scenario(),
            ablation::scenario(),
            onelevel::scenario(),
            sources::scenario(),
        ]
    })
}

/// The built-in scenario registry, in canonical run order.
pub fn registry() -> &'static [Scenario] {
    builtins()
}

/// Looks up a built-in scenario by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    registry().iter().find(|s| s.name == name)
}

/// Resolves a list of scenario names against the built-in registry,
/// preserving input order. Campaigns that may carry runtime sweeps
/// resolve through a [`Registry`] value instead.
///
/// # Errors
///
/// Returns the first unknown name (typically: the names were recorded
/// by a different binary version).
pub fn resolve(names: &[String]) -> Result<Vec<&'static Scenario>, String> {
    names.iter().map(|name| find(name).ok_or_else(|| name.clone())).collect()
}

/// A scenario namespace: the 13 built-ins plus any runtime-loaded
/// declarative sweeps ([`crate::sweep`]).
///
/// Built-ins live in a process-wide static; the registry only owns the
/// sweeps, so building one is cheap. Every path that resolves campaign
/// names — the CLI run path, workers, `merge`, `resume`, the submission
/// service — builds a `Registry` from whatever sweep definitions travel
/// with the campaign, so a name always means the same plan everywhere.
#[derive(Default)]
pub struct Registry {
    sweeps: Vec<Scenario>,
    /// Canonical JSON text of each sweep, aligned with `sweeps` — what
    /// a [`crate::CampaignHeader`] carries so other processes can
    /// rebuild this registry.
    texts: Vec<String>,
}

impl Registry {
    /// A registry holding only the built-ins.
    pub fn builtin() -> Self {
        Registry::default()
    }

    /// A registry holding the built-ins plus the given sweep
    /// definitions (in order).
    ///
    /// # Errors
    ///
    /// Rejects a sweep whose name collides with a built-in scenario or
    /// another sweep in the list.
    pub fn with_sweeps(defs: Vec<crate::sweep::SweepDef>) -> Result<Self, String> {
        let mut registry = Registry::default();
        for def in defs {
            if find(&def.name).is_some() {
                return Err(format!("sweep `{}` collides with a built-in scenario", def.name));
            }
            if registry.sweeps.iter().any(|s| s.name == def.name) {
                return Err(format!("duplicate sweep name `{}`", def.name));
            }
            registry.texts.push(def.text.clone());
            registry.sweeps.push(def.into_scenario());
        }
        Ok(registry)
    }

    /// Rebuilds a registry from the canonical sweep texts a
    /// [`crate::CampaignHeader`] carries.
    ///
    /// # Errors
    ///
    /// Returns a reason when a text fails to parse or validate, or when
    /// names collide.
    pub fn from_texts(texts: &[String]) -> Result<Self, String> {
        let defs = texts
            .iter()
            .map(|t| crate::sweep::SweepDef::parse(t))
            .collect::<Result<Vec<_>, _>>()?;
        Self::with_sweeps(defs)
    }

    /// All scenarios — built-ins first, then sweeps, each in order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        builtins().iter().chain(self.sweeps.iter())
    }

    /// The sweep scenarios only (what `--list` renders separately).
    pub fn sweeps(&self) -> &[Scenario] {
        &self.sweeps
    }

    /// The canonical JSON texts of the loaded sweeps, in registry order
    /// — what campaign headers and submission requests embed.
    pub fn sweep_texts(&self) -> &[String] {
        &self.texts
    }

    /// Looks up a scenario by name (built-ins shadow nothing: sweep
    /// names are rejected at load time if they collide).
    pub fn find(&self, name: &str) -> Option<&Scenario> {
        self.iter().find(|s| s.name == name)
    }

    /// Resolves a list of scenario names, preserving input order.
    ///
    /// # Errors
    ///
    /// Names the first unknown scenario.
    pub fn resolve(&self, names: &[String]) -> Result<Vec<&Scenario>, String> {
        names
            .iter()
            .map(|name| {
                self.find(name)
                    .ok_or_else(|| format!("unknown scenario `{name}` (see experiments --list)"))
            })
            .collect()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("builtins", &builtins().len())
            .field("sweeps", &self.sweeps.iter().map(|s| &s.name).collect::<Vec<_>>())
            .finish()
    }
}

/// A campaign description submitted to the multi-campaign coordinator
/// service (`POST /campaigns`): which scenarios to run and the
/// [`ExperimentOpts`] to plan them under.
///
/// The wire format is one JSON object — `{"scenarios": ["fig1", ...],
/// "sweeps": [{...}, ...], "insts": N, "warmup": N, "seed": N,
/// "quick": bool}` with everything but `scenarios` optional — parsed by
/// the same literal-preserving [`crate::parse_json`] reader the metrics
/// codec uses, and validated against the registry (built-ins plus any
/// embedded sweep definitions) so an unknown scenario or a malformed
/// sweep is rejected at admission instead of surfacing as plan drift
/// mid-campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// Scenario names, in run order (`all` already expanded by the
    /// submitting client; may name embedded sweeps).
    pub scenarios: Vec<String>,
    /// Canonical JSON texts of embedded declarative sweep definitions.
    /// A runtime sweep has no name another process could resolve, so
    /// the definition itself travels with the request.
    pub sweeps: Vec<String>,
    /// The options every scenario is planned and assembled with
    /// (`jobs` stays at its default: worker-side parallelism is the
    /// workers' business, not the description's).
    pub opts: ExperimentOpts,
}

impl CampaignRequest {
    /// Builds a description for registered scenario names.
    pub fn new(scenarios: Vec<String>, opts: ExperimentOpts) -> Self {
        CampaignRequest { scenarios, sweeps: Vec::new(), opts }
    }

    /// Attaches embedded sweep definitions (canonical JSON texts,
    /// builder-style).
    #[must_use]
    pub fn with_sweeps(mut self, sweeps: Vec<String>) -> Self {
        self.sweeps = sweeps;
        self
    }

    /// Builds the registry this request's names resolve against:
    /// built-ins plus the embedded sweeps.
    ///
    /// # Errors
    ///
    /// Returns a reason when an embedded sweep fails to parse or its
    /// name collides.
    pub fn registry(&self) -> Result<Registry, String> {
        Registry::from_texts(&self.sweeps)
    }

    /// Renders the JSON document the `submit` subcommand POSTs. Sweep
    /// definitions embed as raw JSON objects (they are canonical JSON
    /// texts already).
    pub fn to_json(&self) -> String {
        let names: Vec<String> =
            self.scenarios.iter().map(|s| format!("\"{}\"", crate::json::escape(s))).collect();
        let sweeps = if self.sweeps.is_empty() {
            String::new()
        } else {
            format!("\"sweeps\": [{}], ", self.sweeps.join(", "))
        };
        format!(
            "{{\"scenarios\": [{}], {sweeps}\"insts\": {}, \"warmup\": {}, \"seed\": {}, \"quick\": {}}}",
            names.join(", "),
            self.opts.insts,
            self.opts.warmup,
            self.opts.seed,
            self.opts.quick
        )
    }

    /// Parses and validates one submitted campaign description.
    ///
    /// Strict on shape: unknown top-level keys are rejected (a typo'd
    /// option must not silently plan a default campaign), `scenarios`
    /// must name at least one scenario, every embedded sweep must parse
    /// and validate, and every name must resolve against the registry
    /// (built-ins plus the embedded sweeps).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason fit for a `400` response body.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let v = crate::parse_json(body).map_err(|e| e.to_string())?;
        let crate::JsonValue::Object(fields) = &v else {
            return Err("campaign description must be a JSON object".to_string());
        };
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "scenarios" | "sweeps" | "insts" | "warmup" | "seed" | "quick"
            ) {
                return Err(format!("unknown campaign field `{key}`"));
            }
        }
        let scenarios = v
            .get("scenarios")
            .ok_or("campaign description lacks `scenarios`")?
            .as_array()
            .ok_or("`scenarios` must be an array of scenario names")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string entry in `scenarios`".to_string())
            })
            .collect::<Result<Vec<String>, String>>()?;
        if scenarios.is_empty() {
            return Err("`scenarios` must name at least one scenario".to_string());
        }
        let sweeps = match v.get("sweeps") {
            None => Vec::new(),
            Some(s) => s
                .as_array()
                .ok_or("`sweeps` must be an array of sweep definition objects")?
                .iter()
                .map(|def| {
                    // Re-render canonically, then round the text through
                    // the full sweep validator: a request is rejected
                    // whole if any embedded definition is malformed.
                    let text = crate::json::render_json(def);
                    crate::sweep::SweepDef::parse(&text).map(|d| d.text)
                })
                .collect::<Result<Vec<String>, String>>()?,
        };
        let registry = Registry::from_texts(&sweeps)?;
        registry.resolve(&scenarios)?;
        let mut opts = ExperimentOpts::default();
        let number = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(n) => {
                    n.as_u64().map(Some).ok_or_else(|| format!("`{key}` must be a whole number"))
                }
            }
        };
        if let Some(n) = number("insts")? {
            opts.insts = n;
        }
        if let Some(n) = number("warmup")? {
            opts.warmup = n;
        }
        if let Some(n) = number("seed")? {
            opts.seed = n;
        }
        if let Some(q) = v.get("quick") {
            opts.quick = q.as_bool().ok_or("`quick` must be a boolean")?;
        }
        Ok(CampaignRequest { scenarios, sweeps, opts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|s| s.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        for name in names {
            assert_eq!(find(name).unwrap().name, name);
        }
        assert!(find("fig4").is_none(), "the paper has no figure 4");
    }

    #[test]
    fn resolve_preserves_order_and_names_the_unknown() {
        let names: Vec<String> = vec!["fig6".into(), "table2".into()];
        let resolved = resolve(&names).unwrap();
        assert_eq!(resolved[0].name, "fig6");
        assert_eq!(resolved[1].name, "table2");
        let bad: Vec<String> = vec!["fig6".into(), "fig4".into()];
        assert_eq!(resolve(&bad).unwrap_err(), "fig4");
    }

    #[test]
    fn descriptions_are_nonempty() {
        for s in registry() {
            assert!(!s.description.is_empty(), "{} lacks a description", s.name);
        }
    }

    #[test]
    fn plan_sizes_match_what_run_consumes() {
        let opts = ExperimentOpts::smoke();
        let scenarios: Vec<&Scenario> = vec![find("fig6").unwrap(), find("table2").unwrap()];
        assert_eq!(
            campaign_size(&scenarios, &opts),
            scenarios.iter().map(|s| s.plan(&opts).len()).sum::<usize>()
        );
        // table2 is purely analytical: it plans zero simulations.
        assert!(find("table2").unwrap().plan(&opts).is_empty());
        assert!(!find("fig6").unwrap().plan(&opts).is_empty());
    }

    struct RaggedReport;

    impl fmt::Display for RaggedReport {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "ragged")
        }
    }

    impl ScenarioReport for RaggedReport {
        fn series(&self) -> Vec<(String, Vec<f64>)> {
            vec![("a".into(), vec![1.0, 2.0]), ("b".into(), vec![3.0])]
        }
    }

    #[test]
    fn default_table_falls_back_to_long_format_for_ragged_series() {
        let t = RaggedReport.to_table();
        assert_eq!(t.header_cells(), &["series", "index", "value"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.data_rows()[2], vec!["b".to_string(), "0".into(), "3".into()]);
    }

    #[test]
    fn campaign_request_round_trips_and_defaults_omitted_options() {
        let opts = ExperimentOpts { insts: 9_000, quick: true, ..Default::default() };
        let req = CampaignRequest::new(vec!["fig6".into(), "table2".into()], opts);
        let parsed = CampaignRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed.scenarios, req.scenarios);
        assert_eq!(parsed.opts.insts, 9_000);
        assert!(parsed.opts.quick);
        let registry = parsed.registry().unwrap();
        assert_eq!(registry.resolve(&parsed.scenarios).unwrap()[1].name, "table2");

        let minimal = CampaignRequest::from_json("{\"scenarios\": [\"fig6\"]}").unwrap();
        assert_eq!(minimal.opts.insts, ExperimentOpts::default().insts);
        assert_eq!(minimal.opts.seed, 42);
        assert!(!minimal.opts.quick);
    }

    #[test]
    fn campaign_request_rejects_bad_descriptions_with_useful_reasons() {
        let unknown = CampaignRequest::from_json("{\"scenarios\": [\"fig4\"]}").unwrap_err();
        assert!(unknown.contains("fig4"), "{unknown}");
        let typo =
            CampaignRequest::from_json("{\"scenarios\": [\"fig6\"], \"inst\": 5}").unwrap_err();
        assert!(typo.contains("inst"), "{typo}");
        assert!(CampaignRequest::from_json("{\"scenarios\": []}").is_err(), "empty campaign");
        assert!(CampaignRequest::from_json("{}").is_err(), "missing scenarios");
        assert!(CampaignRequest::from_json("[1, 2]").is_err(), "non-object");
        assert!(CampaignRequest::from_json("{not json").is_err());
        assert!(
            CampaignRequest::from_json("{\"scenarios\": [\"fig6\"], \"quick\": 1}").is_err(),
            "non-boolean quick"
        );
        assert!(
            CampaignRequest::from_json("{\"scenarios\": [\"fig6\"], \"seed\": -1}").is_err(),
            "negative seed"
        );
    }
}
