//! The unified scenario engine.
//!
//! Every experiment of the paper's evaluation registers here as a
//! [`Scenario`]: a name, a one-line description, and a runner from
//! [`ExperimentOpts`] to a boxed [`ScenarioReport`]. Frontends (the
//! `experiments` CLI, the smoke tests, future services) enumerate and
//! dispatch through [`registry`] instead of hard-coding the experiment
//! list, so adding an experiment means adding one module plus one
//! registry line — every frontend picks it up automatically.
//!
//! # Examples
//!
//! ```
//! use rfcache_sim::experiments::ExperimentOpts;
//! use rfcache_sim::scenario;
//!
//! let fig6 = scenario::find("fig6").expect("registered");
//! let report = fig6.run(&ExperimentOpts::smoke());
//! assert!(report.series().iter().any(|(_, v)| !v.is_empty()));
//! ```

use crate::experiments::{
    ablation, fig1, fig2, fig3, fig5, fig6, fig7, fig8, fig9, onelevel, readstats, sources, table2,
    ExperimentOpts,
};
use std::fmt;

/// What running a scenario yields: something renderable (the paper's
/// table/figure shape via `Display`) and introspectable (named numeric
/// series for tests, CSV export, and downstream tooling).
pub trait ScenarioReport: fmt::Display + Send {
    /// The named numeric series underlying the figure or table. Every
    /// report exposes at least one non-empty series.
    fn series(&self) -> Vec<(String, Vec<f64>)>;
}

/// One registered experiment.
pub struct Scenario {
    /// CLI name (`fig1` … `fig9`, `table2`, `ablation`, `onelevel`,
    /// `sources`, `readstats`).
    pub name: &'static str,
    /// One-line description shown by `experiments --list`.
    pub description: &'static str,
    runner: fn(&ExperimentOpts) -> Box<dyn ScenarioReport>,
}

impl Scenario {
    /// Builds a registry entry (used by the experiment modules).
    pub const fn new(
        name: &'static str,
        description: &'static str,
        runner: fn(&ExperimentOpts) -> Box<dyn ScenarioReport>,
    ) -> Self {
        Scenario { name, description, runner }
    }

    /// Runs the scenario.
    pub fn run(&self, opts: &ExperimentOpts) -> Box<dyn ScenarioReport> {
        (self.runner)(opts)
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario").field("name", &self.name).finish_non_exhaustive()
    }
}

/// All scenarios, in the canonical run order of `experiments all`.
static REGISTRY: [Scenario; 13] = [
    table2::SCENARIO,
    fig1::SCENARIO,
    fig2::SCENARIO,
    fig3::SCENARIO,
    readstats::SCENARIO,
    fig5::SCENARIO,
    fig6::SCENARIO,
    fig7::SCENARIO,
    fig8::SCENARIO,
    fig9::SCENARIO,
    ablation::SCENARIO,
    onelevel::SCENARIO,
    sources::SCENARIO,
];

/// The scenario registry, in canonical run order.
pub fn registry() -> &'static [Scenario] {
    &REGISTRY
}

/// Looks up a scenario by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    registry().iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        for name in names {
            assert_eq!(find(name).unwrap().name, name);
        }
        assert!(find("fig4").is_none(), "the paper has no figure 4");
    }

    #[test]
    fn descriptions_are_nonempty() {
        for s in registry() {
            assert!(!s.description.is_empty(), "{} lacks a description", s.name);
        }
    }
}
