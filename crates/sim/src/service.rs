//! The multi-campaign coordinator service: `POST /campaigns` over the
//! readiness loop.
//!
//! [`transport::serve_with`](crate::transport::serve_with) runs exactly
//! one campaign and exits; this module runs the same single-threaded
//! `poll(2)` loop as a **long-lived service** that outlives any one
//! campaign. HTTP clients submit campaign descriptions
//! ([`CampaignRequest`], validated against the scenario registry),
//! each submission moves through the lifecycle
//!
//! ```text
//! queued → serving → complete → fetched
//!            ↓ (admission failure)
//!          failed
//! ```
//!
//! and workers are handed leases from whichever campaign is currently
//! serving. One campaign serves at a time — determinism and the
//! fingerprint handshake stay exactly as strong as the single-campaign
//! coordinator's — while submissions queue behind it, so a single
//! coordinator process accepts and completes any number of campaigns
//! without restarting.
//!
//! **Same admission path.** Every record enters a campaign through
//! [`ServeState::admit`] — the identical verify/dedup/write-ahead path
//! the single-campaign loop uses — whether it arrives as a live worker
//! frame, a per-campaign journal replay, or a `--cache` pre-fill at
//! promotion time. Results fetched from the service are therefore
//! byte-identical to an in-process run of the same description
//! (asserted end-to-end in `crates/bench/tests/service.rs` and the CI
//! `service` job).
//!
//! **Endpoints.**
//!
//! | Method + path | Purpose |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /status` | service overview: campaign table + worker roster |
//! | `POST /campaigns` | submit a campaign description (JSON body) |
//! | `GET /campaigns/<id>` | one campaign's lifecycle + progress |
//! | `GET /campaigns/<id>/results` | assembled reports (text/CSV/JSON) |
//!
//! Malformed descriptions get a `400` with the reason, oversized bodies
//! a `413`, unknown ids a `404`, and premature result fetches a `409` —
//! none of which disturb an in-flight campaign.
//!
//! **Workers between campaigns.** A worker that connects while nothing
//! is serving receives a [`Frame::Retry`] instead of a hello and
//! reconnects after the suggested delay ([`transport::work`] honors it
//! within its connect window), so idle periods cannot wedge a worker in
//! a handshake that will never progress.

use crate::cache::Cache;
use crate::conn::{ActiveLease, HttpConn, WorkerConn, WorkerPhase};
use crate::executor::ExecutorError;
use crate::http;
use crate::json;
use crate::metrics_codec::{CampaignHeader, Frame, ShardRecord};
use crate::readiness::{listener_fd, stream_fd, PollSet};
use crate::run::{campaign_fingerprint, flatten_plans, RunSpec};
use crate::scenario::{self, CampaignRequest, Registry, ScenarioReport};
use crate::transport::{
    worker_roster_json, JournalWriter, ServeOptions, ServeSignals, ServeState, DRAIN_WINDOW,
    HANDSHAKE_DEADLINE, HTTP_CLIENT_WINDOW, READ_TICK,
};
use std::io;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Reconnect delay suggested to workers that arrive between campaigns.
pub const RETRY_AFTER_MS: u64 = 500;

/// Everything [`serve_service`] needs, bundled like
/// [`transport::ServeConfig`](crate::transport::ServeConfig).
pub struct ServiceConfig<'a> {
    /// The already-bound listener workers connect to.
    pub listener: &'a TcpListener,
    /// The already-bound HTTP listener (mandatory here: a submission
    /// service without a submission endpoint is useless).
    pub http: &'a TcpListener,
    /// Lease policy applied to every campaign (`expect` is ignored —
    /// the quorum gate is a single-campaign start-up optimisation).
    pub opts: &'a ServeOptions,
    /// Out-of-band abort/finished signalling shared with the caller.
    pub signals: &'a ServeSignals,
    /// Optional result cache: consulted at each campaign's promotion
    /// (pre-fill through the admission path) and fed by every live
    /// record, so one campaign's results warm the next submission's.
    pub cache: Option<&'a Cache>,
    /// Optional journal *directory*: each campaign write-ahead journals
    /// to `campaign-<id>.journal` inside it.
    pub journal_dir: Option<&'a Path>,
    /// `sync_data` interval for campaign journals (records per sync;
    /// 0 = only at completion).
    pub journal_sync: usize,
    /// Exit cleanly once this many campaigns reach `fetched` (`None` =
    /// serve forever). This is how CI and tests get a deterministic
    /// shutdown without killing the process.
    pub max_campaigns: Option<usize>,
}

/// What a finished [`serve_service`] session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Campaigns accepted via `POST /campaigns`.
    pub submitted: usize,
    /// Campaigns served to completion (fetched ones included).
    pub completed: usize,
    /// Campaigns whose results were fetched at least once.
    pub fetched: usize,
    /// Campaigns that failed admission or serving.
    pub failed: usize,
}

/// Where a submitted campaign stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    /// Accepted; waiting for the coordinator to finish earlier work.
    Queued,
    /// The campaign workers are currently leased from.
    Serving,
    /// Every index has a verified result; reports are assembled.
    Complete,
    /// Results have been fetched at least once (they stay fetchable).
    Fetched,
    /// Admission or serving failed; `failure` has the reason.
    Failed,
}

impl Lifecycle {
    fn as_str(self) -> &'static str {
        match self {
            Lifecycle::Queued => "queued",
            Lifecycle::Serving => "serving",
            Lifecycle::Complete => "complete",
            Lifecycle::Fetched => "fetched",
            Lifecycle::Failed => "failed",
        }
    }

    fn done(self) -> bool {
        matches!(self, Lifecycle::Complete | Lifecycle::Fetched)
    }
}

/// One submitted campaign, from POST body to fetched results.
struct Campaign {
    id: u64,
    request: CampaignRequest,
    /// The namespace the request's names resolve in: built-ins plus
    /// any sweep definitions embedded in the submission.
    registry: Registry,
    header: CampaignHeader,
    plans: Vec<Vec<RunSpec>>,
    fingerprint: u64,
    state: ServeState,
    lifecycle: Lifecycle,
    failure: Option<String>,
    /// Indices satisfied from the cache at promotion.
    cached: usize,
    submitted: Instant,
    /// The rendered results document, built once at completion.
    results: Option<String>,
}

impl Campaign {
    /// Builds a queued campaign from a validated description.
    ///
    /// # Errors
    ///
    /// Returns the reason when an embedded sweep definition is invalid
    /// or a requested scenario is unknown — a `400` for the submitter,
    /// never a service panic.
    fn new(id: u64, request: CampaignRequest, opts: &ServeOptions) -> Result<Campaign, String> {
        let registry = request.registry()?;
        let scenarios = registry.resolve(&request.scenarios)?;
        let plans: Vec<Vec<RunSpec>> = scenarios.iter().map(|s| s.plan(&request.opts)).collect();
        let flat = flatten_plans(&plans);
        let runs = flat.len();
        let fingerprint = campaign_fingerprint(&flat);
        let header = CampaignHeader::new(request.scenarios.clone(), &request.opts, 0, 1, runs)
            .with_sweeps(request.sweeps.clone());
        Ok(Campaign {
            id,
            request,
            registry,
            header,
            plans,
            fingerprint,
            state: ServeState::new(runs, opts.chunk, opts.lease_timeout),
            lifecycle: Lifecycle::Queued,
            failure: None,
            cached: 0,
            submitted: Instant::now(),
            results: None,
        })
    }

    fn runs(&self) -> usize {
        self.header.runs
    }

    /// Marks the campaign failed (first reason wins) — unlike the
    /// single-campaign coordinator, where these conditions are fatal to
    /// the process, a service isolates the failure to the one campaign.
    fn fail(&mut self, reason: String) {
        if self.failure.is_none() {
            eprintln!("[service: campaign {} failed: {reason}]", self.id);
            self.failure = Some(reason);
        }
        self.lifecycle = Lifecycle::Failed;
    }

    /// Promotes a queued campaign to serving: create its journal, then
    /// pre-fill from the cache — both through [`ServeState::admit`], the
    /// same admission path live records use.
    fn promote(&mut self, cfg: &ServiceConfig<'_>) {
        debug_assert_eq!(self.lifecycle, Lifecycle::Queued);
        if let Some(dir) = cfg.journal_dir {
            match open_campaign_journal(dir, self, cfg.journal_sync) {
                Ok(writer) => self.state.journal = Some(writer),
                Err(e) => {
                    self.fail(format!("cannot create the campaign journal: {e}"));
                    return;
                }
            }
        }
        if let Some(cache) = cfg.cache {
            let flat = flatten_plans(&self.plans);
            let mut lookups = 0u64;
            for index in 0..flat.len() {
                if self.state.table.is_filled(index) {
                    continue;
                }
                lookups += 1;
                let Some(result) = cache.lookup(flat[index]) else { continue };
                let record = ShardRecord::from_result(index, flat[index].fingerprint(), &result);
                match self.state.admit(&flat, record, true) {
                    Ok(true) => self.cached += 1,
                    Ok(false) => {}
                    Err(e) => {
                        self.fail(format!("cache pre-fill rejected: {e}"));
                        return;
                    }
                }
            }
            self.state.table.prune_pending();
            let session =
                crate::cache::CacheSession::now("service", lookups, self.cached as u64, 0);
            if let Err(e) = cache.record_session(&session) {
                eprintln!("[service: warning: cannot record the cache session: {e}]");
            }
        }
        self.lifecycle = Lifecycle::Serving;
        eprintln!(
            "[service: campaign {} serving: {} run(s), {} from cache, fingerprint {:016x}]",
            self.id,
            self.runs(),
            self.cached,
            self.fingerprint
        );
    }

    /// Completes a serving campaign: sync the journal, assemble the
    /// reports, and render the results document clients will fetch.
    fn finish(&mut self) {
        debug_assert!(self.state.table.complete());
        if let Some(writer) = &mut self.state.journal {
            if let Err(e) = writer.sync() {
                eprintln!("[service: warning: cannot sync campaign {} journal: {e}]", self.id);
            }
        }
        let results: Vec<_> = std::mem::take(&mut self.state.slots)
            .into_iter()
            .map(|slot| slot.expect("complete table implies full slots"))
            .collect();
        // The names resolved at admission; a registry that no longer
        // resolves them here would be a logic bug, but a service fails
        // the one campaign instead of panicking.
        let scenarios = match self.registry.resolve(&self.request.scenarios) {
            Ok(scenarios) => scenarios,
            Err(e) => {
                self.fail(format!("cannot re-resolve scenarios at completion: {e}"));
                return;
            }
        };
        let reports =
            scenario::run_campaign_from_parts(&scenarios, &self.request.opts, &self.plans, results);
        self.results = Some(render_results(self, &reports));
        self.lifecycle = Lifecycle::Complete;
        eprintln!("[service: campaign {} complete ({} run(s))]", self.id, self.runs());
    }

    /// The per-campaign status document (`GET /campaigns/<id>`).
    fn status_json(&self) -> String {
        let (completed, leased, pending) = self.state.table.counts();
        let names: Vec<String> =
            self.request.scenarios.iter().map(|s| format!("\"{}\"", json::escape(s))).collect();
        let failure = self
            .failure
            .as_ref()
            .map_or("null".to_string(), |f| format!("\"{}\"", json::escape(f)));
        let journal = self.state.journal.as_ref().map_or("null".to_string(), |writer| {
            let (records, bytes) = writer.position();
            format!("{{\"records\": {records}, \"bytes\": {bytes}}}")
        });
        format!(
            "{{\"schema\": \"rfcache-service-campaign/v1\", \"id\": {}, \"state\": \"{}\", \
             \"scenarios\": [{}], \"insts\": {}, \"warmup\": {}, \"seed\": {}, \"quick\": {}, \
             \"runs\": {}, \"completed\": {completed}, \"leased\": {leased}, \
             \"pending\": {pending}, \"cached\": {}, \"fingerprint\": \"{:016x}\", \
             \"failure\": {failure}, \"journal\": {journal}, \"age_secs\": {:.3}}}\n",
            self.id,
            self.lifecycle.as_str(),
            names.join(", "),
            self.request.opts.insts,
            self.request.opts.warmup,
            self.request.opts.seed,
            self.request.opts.quick,
            self.runs(),
            self.cached,
            self.fingerprint,
            self.submitted.elapsed().as_secs_f64()
        )
    }

    /// The short row this campaign contributes to `GET /status`.
    fn brief_json(&self) -> String {
        let (completed, _, _) = self.state.table.counts();
        let names: Vec<String> =
            self.request.scenarios.iter().map(|s| format!("\"{}\"", json::escape(s))).collect();
        format!(
            "{{\"id\": {}, \"state\": \"{}\", \"scenarios\": [{}], \"runs\": {}, \
             \"completed\": {completed}, \"cached\": {}}}",
            self.id,
            self.lifecycle.as_str(),
            names.join(", "),
            self.runs(),
            self.cached
        )
    }
}

fn open_campaign_journal(dir: &Path, c: &Campaign, sync_every: usize) -> io::Result<JournalWriter> {
    std::fs::create_dir_all(dir)?;
    let path: PathBuf = dir.join(format!("campaign-{}.journal", c.id));
    JournalWriter::create(&path, &c.header, c.fingerprint, sync_every)
}

/// Renders the results document (`GET /campaigns/<id>/results`): one
/// entry per scenario carrying the rendered report text, the CSV the
/// `--csv` exporter would write, and the JSON table the `--json`
/// exporter would write — as strings, so a fetching client reproduces
/// the exact bytes an in-process run of the same description emits.
fn render_results(c: &Campaign, reports: &[Box<dyn ScenarioReport>]) -> String {
    let entries: Vec<String> = c
        .request
        .scenarios
        .iter()
        .zip(reports)
        .map(|(name, report)| {
            let table = report.to_table();
            format!(
                "{{\"name\": \"{}\", \"report\": \"{}\", \"csv\": \"{}\", \"json\": \"{}\"}}",
                json::escape(name),
                json::escape(&format!("{report}")),
                json::escape(&table.to_csv()),
                json::escape(&table.to_json())
            )
        })
        .collect();
    format!(
        "{{\"schema\": \"rfcache-campaign-results/v1\", \"id\": {}, \
         \"fingerprint\": \"{:016x}\", \"scenarios\": [{}]}}\n",
        c.id,
        c.fingerprint,
        entries.join(", ")
    )
}

/// The service overview document (`GET /status`).
fn service_status_json(campaigns: &[Campaign], workers: &[WorkerConn], started: Instant) -> String {
    let serving = campaigns
        .iter()
        .find(|c| c.lifecycle == Lifecycle::Serving)
        .map_or("null".to_string(), |c| c.id.to_string());
    let briefs: Vec<String> = campaigns.iter().map(Campaign::brief_json).collect();
    let roster = worker_roster_json(workers);
    format!(
        "{{\"schema\": \"rfcache-service/v1\", \"elapsed_secs\": {:.3}, \"serving\": {serving}, \
         \"submitted\": {}, \"campaigns\": [{}], \"workers_connected\": {}, \"workers\": [{}]}}\n",
        started.elapsed().as_secs_f64(),
        campaigns.len(),
        briefs.join(", "),
        workers.iter().filter(|c| c.dead.is_none()).count(),
        roster.join(", ")
    )
}

/// Routes one parsed control-plane request against the campaign table.
/// Mutates it only on `POST /campaigns` (new entry) and on the first
/// successful results fetch (`complete → fetched`).
fn route_request(
    req: &http::Request,
    campaigns: &mut Vec<Campaign>,
    next_id: &mut u64,
    cfg: &ServiceConfig<'_>,
    workers: &[WorkerConn],
    started: Instant,
) -> Vec<u8> {
    match (req.method.as_str(), req.path()) {
        ("POST", "/campaigns") => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(body) => body,
                Err(_) => {
                    return http::respond(
                        400,
                        "Bad Request",
                        "text/plain",
                        "campaign description is not UTF-8\n",
                    )
                }
            };
            let request = match CampaignRequest::from_json(body) {
                Ok(request) => request,
                Err(reason) => {
                    return http::respond(400, "Bad Request", "text/plain", &format!("{reason}\n"))
                }
            };
            let id = *next_id;
            *next_id += 1;
            let campaign = match Campaign::new(id, request, cfg.opts) {
                Ok(campaign) => campaign,
                Err(reason) => {
                    return http::respond(400, "Bad Request", "text/plain", &format!("{reason}\n"))
                }
            };
            eprintln!(
                "[service: campaign {id} queued: {} ({} run(s))]",
                campaign.request.scenarios.join(" "),
                campaign.runs()
            );
            let body = format!(
                "{{\"id\": {id}, \"state\": \"queued\", \"runs\": {}, \
                 \"fingerprint\": \"{:016x}\"}}\n",
                campaign.runs(),
                campaign.fingerprint
            );
            campaigns.push(campaign);
            http::respond(201, "Created", "application/json", &body)
        }
        ("GET", "/healthz") => http::json_ok("{\"status\": \"ok\"}\n"),
        ("GET", "/status") => http::json_ok(&service_status_json(campaigns, workers, started)),
        ("GET", path) => match parse_campaign_path(path) {
            Some((id, want_results)) => {
                let Some(campaign) = campaigns.iter_mut().find(|c| c.id == id) else {
                    return http::respond(
                        404,
                        "Not Found",
                        "text/plain",
                        &format!("no campaign {id}\n"),
                    );
                };
                if !want_results {
                    return http::json_ok(&campaign.status_json());
                }
                match &campaign.results {
                    Some(doc) => {
                        let response = http::json_ok(doc);
                        if campaign.lifecycle == Lifecycle::Complete {
                            campaign.lifecycle = Lifecycle::Fetched;
                            eprintln!("[service: campaign {id} fetched]");
                        }
                        response
                    }
                    None => http::respond(
                        409,
                        "Conflict",
                        "text/plain",
                        &format!(
                            "campaign {id} is {}; results exist once it is complete\n",
                            campaign.lifecycle.as_str()
                        ),
                    ),
                }
            }
            None => http::respond(
                404,
                "Not Found",
                "text/plain",
                "unknown path; try /status, /campaigns/<id> or /campaigns/<id>/results\n",
            ),
        },
        _ => http::respond(
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET, and POST /campaigns, are supported\n",
        ),
    }
}

/// Splits `/campaigns/<id>` / `/campaigns/<id>/results` into the id and
/// whether results were asked for (`None` = not a campaign path).
fn parse_campaign_path(path: &str) -> Option<(u64, bool)> {
    let rest = path.strip_prefix("/campaigns/")?;
    let (id, want_results) = match rest.strip_suffix("/results") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    id.parse().ok().map(|id: u64| (id, want_results))
}

/// Runs the multi-campaign coordinator service until aborted (via
/// `cfg.signals`) or until `cfg.max_campaigns` campaigns have been
/// fetched. See the module docs for the lifecycle and endpoints.
///
/// # Errors
///
/// Returns [`ExecutorError::Io`] when a listener or the readiness poll
/// fails — infrastructure trouble that dooms the whole service.
/// Campaign-level failures (bad submissions, drifting workers, journal
/// trouble) are isolated to the affected campaign and reported through
/// its lifecycle instead.
pub fn serve_service(cfg: ServiceConfig<'_>) -> Result<ServiceSummary, ExecutorError> {
    cfg.listener
        .set_nonblocking(true)
        .map_err(|e| ExecutorError::io("cannot poll the campaign listener", e))?;
    cfg.http
        .set_nonblocking(true)
        .map_err(|e| ExecutorError::io("cannot poll the control-plane listener", e))?;

    let started = Instant::now();
    let mut campaigns: Vec<Campaign> = Vec::new();
    let mut next_id: u64 = 1;
    let mut workers: Vec<WorkerConn> = Vec::new();
    let mut https: Vec<HttpConn> = Vec::new();
    let mut poll = PollSet::new();
    let mut fatal: Option<ExecutorError> = None;

    loop {
        if fatal.is_some() || cfg.signals.aborted() {
            break;
        }
        if let Some(max) = cfg.max_campaigns {
            if campaigns.iter().filter(|c| c.lifecycle == Lifecycle::Fetched).count() >= max {
                eprintln!("[service: {max} campaign(s) fetched; shutting down]");
                break;
            }
        }

        // Promote the oldest queued campaign when nothing is serving
        // (admission failures just move on to the next submission).
        while !campaigns.iter().any(|c| c.lifecycle == Lifecycle::Serving) {
            let Some(campaign) = campaigns.iter_mut().find(|c| c.lifecycle == Lifecycle::Queued)
            else {
                break;
            };
            campaign.promote(&cfg);
            if campaign.lifecycle == Lifecycle::Serving && campaign.state.table.complete() {
                // Fully satisfied by journal/cache pre-fill: no worker
                // needs to connect at all.
                campaign.finish();
            }
        }

        // Lease issue: idle handshaked workers of the serving campaign.
        let now = Instant::now();
        if let Some(campaign) = campaigns.iter_mut().find(|c| c.lifecycle == Lifecycle::Serving) {
            for conn in workers.iter_mut() {
                if conn.dead.is_some()
                    || conn.campaign != Some(campaign.id)
                    || conn.phase != WorkerPhase::Ready
                {
                    continue;
                }
                let Some(lease) = campaign.state.table.grab(now) else { break };
                conn.lease = Some(ActiveLease { id: lease.id, issued: now });
                conn.out.queue_frame(&Frame::Lease { id: lease.id, indices: lease.indices });
                conn.phase = WorkerPhase::Streaming;
            }
        }

        // Declare interest, then block until something is ready (or a
        // tick passes).
        poll.clear();
        let listener_slot = poll.register(listener_fd(cfg.listener), true, false);
        let control_slot = poll.register(listener_fd(cfg.http), true, false);
        let worker_slots: Vec<usize> = workers
            .iter()
            .map(|c| poll.register(stream_fd(&c.stream), true, c.out.pending()))
            .collect();
        let http_slots: Vec<usize> = https
            .iter()
            .map(|c| poll.register(stream_fd(&c.stream), !c.responded, c.out.pending()))
            .collect();
        if let Err(e) = poll.poll(READ_TICK) {
            fatal.get_or_insert(ExecutorError::io("readiness poll failed", e));
            break;
        }

        // Accept workers: hand them the serving campaign's hello, or a
        // retry frame when nothing is serving (the satellite fix — a
        // worker must never block in a handshake that cannot progress).
        if poll.readable(listener_slot) {
            let serving = campaigns
                .iter()
                .find(|c| c.lifecycle == Lifecycle::Serving)
                .map(|c| (c.id, c.header.clone(), c.fingerprint));
            loop {
                match cfg.listener.accept() {
                    Ok((stream, peer)) => {
                        let peer = peer.to_string();
                        let deadline = Instant::now() + HANDSHAKE_DEADLINE;
                        let greeting = match &serving {
                            Some((_, header, fingerprint)) => Frame::Hello {
                                campaign: Some(header.clone()),
                                fingerprint: *fingerprint,
                            },
                            None => Frame::Retry { after_ms: RETRY_AFTER_MS },
                        };
                        match WorkerConn::start(stream, peer.clone(), &greeting, deadline) {
                            Ok(mut conn) => {
                                match &serving {
                                    Some((id, _, _)) => conn.campaign = Some(*id),
                                    // Nothing to handshake against: the
                                    // connection only drains its retry
                                    // frame, then the sweep closes it.
                                    None => conn.phase = WorkerPhase::Closing,
                                }
                                workers.push(conn);
                            }
                            Err(e) => eprintln!("[service: worker {peer} dropped: {e}]"),
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        fatal.get_or_insert(ExecutorError::io("campaign listener failed", e));
                        break;
                    }
                }
            }
        }

        // Accept control-plane clients.
        if poll.readable(control_slot) {
            loop {
                match cfg.http.accept() {
                    Ok((stream, _)) => {
                        if let Ok(conn) = HttpConn::start(stream) {
                            https.push(conn);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // Worker I/O: flush queued frames, then process arrived ones.
        // Only the registered prefix — connections accepted *this*
        // iteration have no poll slot until the next tick.
        for (at, conn) in workers.iter_mut().take(worker_slots.len()).enumerate() {
            if conn.dead.is_some() {
                continue;
            }
            if conn.out.pending() && poll.writable(worker_slots[at]) {
                if let Err(e) = conn.out.flush(&mut conn.stream) {
                    conn.kill(e.to_string());
                    continue;
                }
            }
            if !poll.readable(worker_slots[at]) {
                continue;
            }
            let eof = match conn.fill() {
                Ok(more) => !more,
                Err(e) => {
                    conn.kill(e.to_string());
                    continue;
                }
            };
            while let Some(line) = conn.inbuf.next_line() {
                if line.trim().is_empty() {
                    continue;
                }
                let frame = match Frame::parse(&line) {
                    Ok(frame) => frame,
                    Err(e) => {
                        conn.kill(e.to_string());
                        break;
                    }
                };
                let campaign =
                    conn.campaign.and_then(|id| campaigns.iter_mut().find(|c| c.id == id));
                match (conn.phase, frame) {
                    (WorkerPhase::Handshake { .. }, Frame::Hello { fingerprint: echoed, .. }) => {
                        // Unlike the single-campaign coordinator, a
                        // fingerprint mismatch is not fatal to the
                        // service: it rejects the one worker and the
                        // campaign keeps serving through the rest.
                        match campaign {
                            Some(c) if echoed == c.fingerprint => {
                                conn.phase = WorkerPhase::Ready;
                                eprintln!(
                                    "[service: worker {} joined campaign {}]",
                                    conn.peer, c.id
                                );
                            }
                            Some(c) => conn.kill(format!(
                                "planned campaign fingerprint {echoed:016x}, campaign {} is \
                                 {:016x} (mismatched binaries or options)",
                                c.id, c.fingerprint
                            )),
                            None => conn.kill("handshake for a vanished campaign"),
                        }
                    }
                    (WorkerPhase::Streaming, Frame::Record(record)) => {
                        conn.records += 1;
                        let Some(c) = campaign else {
                            conn.kill("record for a vanished campaign");
                            break;
                        };
                        if c.lifecycle != Lifecycle::Serving {
                            continue; // straggler record after failure
                        }
                        let index = record.index;
                        let flat = flatten_plans(&c.plans);
                        match c.state.admit(&flat, *record, true) {
                            Ok(true) => {
                                if let Some(cache) = cfg.cache {
                                    let result = c.state.slots[index]
                                        .as_ref()
                                        .expect("admitted slot is filled");
                                    if let Err(e) = cache.store(flat[index], result) {
                                        eprintln!(
                                            "[service: warning: cannot cache result {index}: {e}]"
                                        );
                                    }
                                }
                            }
                            Ok(false) => {}
                            Err(e) => c.fail(e.to_string()),
                        }
                    }
                    (WorkerPhase::Streaming, Frame::Done) => {
                        if let (Some(active), Some(c)) = (conn.lease.take(), campaign) {
                            let requeued = c.state.table.release(active.id);
                            if requeued > 0 {
                                eprintln!(
                                    "[service: re-queued {requeued} index(es) from worker {}]",
                                    conn.peer
                                );
                            }
                        }
                        conn.leases_done += 1;
                        conn.phase = WorkerPhase::Ready;
                    }
                    (WorkerPhase::Closing, _) => {} // late straggler frames
                    (_, frame) => conn.kill(format!("unexpected frame {frame:?}")),
                }
                if conn.dead.is_some() {
                    break;
                }
            }
            if eof {
                conn.kill("connection closed");
            }
        }

        // Completion check: the serving campaign may have just filled
        // its last slot. Its workers get the final `done` and wind
        // down; the next queued campaign is promoted on the next pass.
        if let Some(campaign) = campaigns
            .iter_mut()
            .find(|c| c.lifecycle == Lifecycle::Serving && c.state.table.complete())
        {
            campaign.finish();
            for conn in workers.iter_mut() {
                if conn.dead.is_none() && conn.campaign == Some(campaign.id) {
                    conn.out.queue_frame(&Frame::Done);
                    conn.phase = WorkerPhase::Closing;
                }
            }
        }

        // Sweep: handshake deadlines, workers of failed campaigns,
        // drained between-campaign rejections, and dead connections
        // (releasing their leases back to their campaign).
        let now = Instant::now();
        workers.retain_mut(|conn| {
            if conn.dead.is_none() {
                if let WorkerPhase::Handshake { deadline } = conn.phase {
                    if now >= deadline {
                        conn.kill("no hello before deadline");
                    }
                }
                if conn.campaign.is_none()
                    && conn.phase == WorkerPhase::Closing
                    && !conn.out.pending()
                {
                    conn.kill("no campaign to serve (retry sent)");
                }
                if let Some(id) = conn.campaign {
                    let failed = campaigns
                        .iter()
                        .find(|c| c.id == id)
                        .is_none_or(|c| c.lifecycle == Lifecycle::Failed);
                    if failed {
                        conn.kill("campaign failed");
                    }
                }
            }
            let Some(reason) = conn.dead.take() else { return true };
            if let Some(active) = conn.lease.take() {
                if let Some(c) =
                    conn.campaign.and_then(|id| campaigns.iter_mut().find(|c| c.id == id))
                {
                    if c.lifecycle == Lifecycle::Serving {
                        let requeued = c.state.table.release(active.id);
                        if requeued > 0 {
                            eprintln!(
                                "[service: re-queued {requeued} index(es) from worker {}]",
                                conn.peer
                            );
                        }
                    }
                }
            }
            eprintln!("[service: worker {} dropped: {reason}]", conn.peer);
            false
        });

        // HTTP control plane: one request, one response, close.
        for (at, conn) in https.iter_mut().take(http_slots.len()).enumerate() {
            if conn.dead {
                continue;
            }
            if conn.out.pending()
                && poll.writable(http_slots[at])
                && conn.out.flush(&mut conn.stream).is_err()
            {
                conn.dead = true;
                continue;
            }
            if !conn.responded && poll.readable(http_slots[at]) {
                let eof = match conn.fill() {
                    Ok(more) => !more,
                    Err(_) => {
                        conn.dead = true;
                        continue;
                    }
                };
                let response = match http::parse_request(&conn.inbuf) {
                    http::Parse::Incomplete => {
                        if eof {
                            conn.dead = true; // hung up mid-request
                        }
                        continue;
                    }
                    http::Parse::Ready(req) => {
                        route_request(&req, &mut campaigns, &mut next_id, &cfg, &workers, started)
                    }
                    http::Parse::Invalid(detail) => {
                        http::respond(400, "Bad Request", "text/plain", &format!("{detail}\n"))
                    }
                    http::Parse::TooLarge(detail) => http::respond(
                        413,
                        "Payload Too Large",
                        "text/plain",
                        &format!("{detail}\n"),
                    ),
                };
                conn.out.queue_bytes(&response);
                conn.responded = true;
                if conn.out.flush(&mut conn.stream).is_err() {
                    conn.dead = true;
                }
            }
            if conn.responded && !conn.out.pending() {
                conn.dead = true; // response fully sent: close
            }
        }
        https.retain(|c| !c.dead && c.opened.elapsed() < HTTP_CLIENT_WINDOW);
    }

    // Wind-down: give backpressured worker/HTTP sockets a bounded
    // window to drain their final frames and responses.
    let deadline = Instant::now() + DRAIN_WINDOW;
    while Instant::now() < deadline {
        let unsent = workers.iter().any(|c| c.dead.is_none() && c.out.pending())
            || https.iter().any(|c| !c.dead && c.out.pending());
        if !unsent {
            break;
        }
        poll.clear();
        let worker_slots: Vec<usize> = workers
            .iter()
            .map(|c| {
                poll.register(stream_fd(&c.stream), false, c.dead.is_none() && c.out.pending())
            })
            .collect();
        let http_slots: Vec<usize> = https
            .iter()
            .map(|c| poll.register(stream_fd(&c.stream), false, !c.dead && c.out.pending()))
            .collect();
        if poll.poll(READ_TICK).is_err() {
            break;
        }
        for (at, conn) in workers.iter_mut().enumerate() {
            if conn.dead.is_none()
                && conn.out.pending()
                && poll.writable(worker_slots[at])
                && conn.out.flush(&mut conn.stream).is_err()
            {
                conn.kill("closed during wind-down");
            }
        }
        for (at, conn) in https.iter_mut().enumerate() {
            if !conn.dead
                && conn.out.pending()
                && poll.writable(http_slots[at])
                && conn.out.flush(&mut conn.stream).is_err()
            {
                conn.dead = true;
            }
        }
    }
    cfg.signals.mark_finished();

    if let Some(e) = fatal {
        return Err(e);
    }
    Ok(ServiceSummary {
        submitted: campaigns.len(),
        completed: campaigns.iter().filter(|c| c.lifecycle.done()).count(),
        fetched: campaigns.iter().filter(|c| c.lifecycle == Lifecycle::Fetched).count(),
        failed: campaigns.iter().filter(|c| c.lifecycle == Lifecycle::Failed).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_paths_parse_ids_and_results_suffixes() {
        assert_eq!(parse_campaign_path("/campaigns/7"), Some((7, false)));
        assert_eq!(parse_campaign_path("/campaigns/12/results"), Some((12, true)));
        assert_eq!(parse_campaign_path("/campaigns/"), None);
        assert_eq!(parse_campaign_path("/campaigns/x"), None);
        assert_eq!(parse_campaign_path("/campaigns/7/logs"), None);
        assert_eq!(parse_campaign_path("/status"), None);
    }

    #[test]
    fn lifecycle_names_are_the_wire_strings() {
        assert_eq!(Lifecycle::Queued.as_str(), "queued");
        assert_eq!(Lifecycle::Serving.as_str(), "serving");
        assert_eq!(Lifecycle::Complete.as_str(), "complete");
        assert_eq!(Lifecycle::Fetched.as_str(), "fetched");
        assert_eq!(Lifecycle::Failed.as_str(), "failed");
        assert!(Lifecycle::Fetched.done() && Lifecycle::Complete.done());
        assert!(!Lifecycle::Serving.done() && !Lifecycle::Failed.done());
    }
}
