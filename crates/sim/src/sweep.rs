//! Declarative sweep campaigns: data-defined experiments.
//!
//! The paper's 13 scenarios are compiled-in tables; a *sweep* is the
//! same two-phase scenario (plan, assemble) defined by a JSON document
//! instead of Rust code. The document declares **axes** — a workload
//! list (benchmark names, recorded traces, seeded families), a register
//! file list (presets or full config objects whose fields may
//! themselves be arrays), and optional `insts`/`warmup`/`seed` lists —
//! and the planner expands their cross-product into the flat
//! [`RunSpec`] list every executor already understands. The assembler
//! folds the results into a generic long-format `(series, index,
//! value)` IPC report, one series per workload x register-file pair.
//!
//! # Schema
//!
//! ```json
//! {
//!   "name": "ports-vs-banks",
//!   "description": "optional one-liner",
//!   "workloads": ["li",
//!                 {"trace": "ci/fixtures/li.rfct", "name": "li-trace"},
//!                 {"family": "go", "members": 2}],
//!   "rf": ["one-cycle",
//!          {"onelevel": {"banks": [4, 8], "read_ports_per_bank": 2}}],
//!   "insts": [3000, 6000],
//!   "warmup": 500,
//!   "seed": [42, 43]
//! }
//! ```
//!
//! * `name` (required): the scenario name the sweep registers under —
//!   lowercase alphanumerics, `-`, `_`; must not collide with a
//!   built-in scenario or the reserved `all`.
//! * `workloads` (required, non-empty): a benchmark name, a
//!   `{"trace": path}` object (optional `"name"` label and `"fp"`
//!   flag; the path is read when the sweep is parsed, relative to the
//!   process working directory, and the spec fingerprint covers the
//!   file *content*), or a `{"family": bench, "members": N}` object
//!   expanding to members `1..=N` of the seeded family
//!   ([`rfcache_workload::family_member`]).
//! * `rf` (required, non-empty): a preset name (`one-cycle`,
//!   `two-cycle-single-bypass`, `two-cycle-full-bypass`, `rfc`) or an
//!   object with exactly one kind key — `single`, `cache`,
//!   `replicated`, `onelevel` — whose fields default to the paper's
//!   configuration. Any field may be an array; the sweep expands the
//!   cross-product and labels each expansion with its varying fields
//!   (`onelevel banks=4`). An optional `"name"` overrides the label
//!   base.
//! * `insts`, `warmup`, `seed` (optional): a number or array of
//!   numbers. Omitted axes use the campaign's [`ExperimentOpts`]
//!   values, so `--insts`/`--quick` still scale a sweep that does not
//!   pin them.
//!
//! Plan order is workload-major: for each workload, for each register
//! file, for each `insts` x `warmup` x `seed` point. Every process
//! re-derives the identical plan from the canonical definition text
//! (carried in the [`crate::CampaignHeader`]), so sweeps shard, merge,
//! distribute, cache and resume exactly like built-in scenarios.

use crate::experiments::ExperimentOpts;
use crate::json::{parse_json, render_json, JsonValue};
use crate::run::{RunResult, RunSpec, TraceWorkload, WorkloadSource};
use crate::scenario::{Scenario, ScenarioReport};
use crate::table::TextTable;
use rfcache_core::{
    BypassNetwork, CachingPolicy, FetchPolicy, OneLevelBankedConfig, RegFileCacheConfig,
    RegFileConfig, Replacement, ReplicatedBankConfig, SingleBankConfig,
};
use rfcache_workload::BenchProfile;
use std::fmt;

/// Largest accepted definition text. Sweeps travel inline in campaign
/// headers, journals and HTTP bodies; the cap keeps a typo'd upload
/// from ballooning every header line.
pub const MAX_SWEEP_BYTES: usize = 64 * 1024;

/// Largest accepted cross-product (runs per sweep).
pub const MAX_SWEEP_RUNS: usize = 65_536;

/// Largest accepted family `members` count.
const MAX_FAMILY_MEMBERS: u64 = 64;

/// A parsed, validated sweep definition.
///
/// `text` is the canonical rendering of the source document
/// ([`render_json`]), so two processes parsing the same definition —
/// whatever its original whitespace — agree on the byte-exact text the
/// campaign header carries.
#[derive(Debug, Clone)]
pub struct SweepDef {
    /// Scenario name the sweep registers under.
    pub name: String,
    /// Optional one-line description from the document.
    pub description: String,
    /// Canonical JSON text of the definition.
    pub text: String,
    workloads: Vec<WorkloadSource>,
    rfs: Vec<(String, RegFileConfig)>,
    insts: Vec<u64>,
    warmup: Vec<u64>,
    seeds: Vec<u64>,
}

/// One expanded register-file choice while parsing: the label parts
/// contributed by array-valued fields, and the finished config.
struct RfChoice {
    label: String,
    config: RegFileConfig,
}

/// A boxed setter that writes one decoded field value into a config.
type Applier<C> = Box<dyn Fn(&mut C)>;

/// One field of a config kind: every accepted value (scalar input →
/// one value) with the label part to advertise when the field varies.
struct FieldAxis<C> {
    /// `Some(part)` per value when the field was an array (it varies),
    /// `None` when scalar or defaulted (it doesn't name itself).
    labels: Vec<Option<String>>,
    appliers: Vec<Applier<C>>,
}

impl<C> FieldAxis<C> {
    fn len(&self) -> usize {
        self.appliers.len()
    }
}

/// Collects a scalar-or-array field into a [`FieldAxis`], decoding each
/// element with `decode` (which returns the label text and the setter).
fn field_axis<C, T>(
    v: &JsonValue,
    key: &str,
    decode: impl Fn(&JsonValue) -> Result<T, String>,
    apply: impl Fn(T) -> Applier<C>,
    label: impl Fn(&JsonValue) -> String,
) -> Result<FieldAxis<C>, String> {
    let Some(raw) = v.get(key) else {
        return Ok(FieldAxis { labels: vec![None], appliers: vec![Box::new(|_| {})] });
    };
    let elements: Vec<&JsonValue> = match raw {
        JsonValue::Array(items) if items.is_empty() => {
            return Err(format!("field `{key}` must not be an empty array"));
        }
        JsonValue::Array(items) => items.iter().collect(),
        scalar => vec![scalar],
    };
    let varies = elements.len() > 1;
    let mut labels = Vec::with_capacity(elements.len());
    let mut appliers: Vec<Applier<C>> = Vec::with_capacity(elements.len());
    for e in &elements {
        let value = decode(e).map_err(|reason| format!("field `{key}`: {reason}"))?;
        labels.push(varies.then(|| format!("{key}={}", label(e))));
        appliers.push(apply(value));
    }
    Ok(FieldAxis { labels, appliers })
}

/// Renders a scalar JSON value for a label part (`null` → `unlimited`).
fn label_text(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "unlimited".to_string(),
        JsonValue::String(s) => s.clone(),
        JsonValue::Number(n) => n.clone(),
        JsonValue::Bool(b) => b.to_string(),
        _ => "?".to_string(),
    }
}

fn decode_u64(v: &JsonValue) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| "expected a whole number".to_string())
}

fn decode_u32(v: &JsonValue) -> Result<u32, String> {
    u32::try_from(decode_u64(v)?).map_err(|_| "value exceeds u32".to_string())
}

fn decode_usize(v: &JsonValue) -> Result<usize, String> {
    usize::try_from(decode_u64(v)?).map_err(|_| "value exceeds usize".to_string())
}

/// `null` means "unlimited" for port-count fields.
fn decode_port(v: &JsonValue) -> Result<Option<u32>, String> {
    match v {
        JsonValue::Null => Ok(None),
        other => decode_u32(other).map(Some),
    }
}

fn decode_keyword<'a, T: Copy>(
    choices: &'a [(&'a str, T)],
) -> impl Fn(&JsonValue) -> Result<T, String> + 'a {
    move |v| {
        let s = v.as_str().ok_or_else(|| "expected a string".to_string())?;
        choices.iter().find(|(k, _)| *k == s).map(|(_, t)| *t).ok_or_else(|| {
            let names: Vec<&str> = choices.iter().map(|(k, _)| *k).collect();
            format!("unknown value `{s}` (expected one of: {})", names.join(", "))
        })
    }
}

/// Rejects keys the kind does not define (a typo'd field must not
/// silently sweep the default).
fn check_keys(v: &JsonValue, kind: &str, allowed: &[&str]) -> Result<(), String> {
    let JsonValue::Object(fields) = v else {
        return Err(format!("`{kind}` must be an object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown `{kind}` field `{key}`"));
        }
    }
    Ok(())
}

/// Expands the cross-product of a kind's field axes into labelled
/// configs, starting each from `base`.
fn expand_fields<C: Clone>(
    base: C,
    base_label: &str,
    fields: Vec<FieldAxis<C>>,
    wrap: impl Fn(C) -> RegFileConfig,
) -> Vec<RfChoice> {
    let total: usize = fields.iter().map(FieldAxis::len).product();
    let mut out = Vec::with_capacity(total);
    for mut index in 0..total {
        let mut config = base.clone();
        let mut parts = vec![base_label.to_string()];
        for axis in &fields {
            let i = index % axis.len();
            index /= axis.len();
            (axis.appliers[i])(&mut config);
            if let Some(part) = &axis.labels[i] {
                parts.push(part.clone());
            }
        }
        out.push(RfChoice { label: parts.join(" "), config: wrap(config) });
    }
    // The index arithmetic above varies the *first* field fastest;
    // re-sorting by declared field order keeps plan order intuitive
    // (first field slowest, like nested loops). Stable sort on the
    // label is wrong (labels may tie); recompute by mixed radix with
    // the first field as the most significant digit instead.
    let mut reordered = Vec::with_capacity(total);
    let mut strides = vec![1usize; fields.len()];
    for i in (0..fields.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * fields[i + 1].len();
    }
    for rank in 0..total {
        let mut flat = 0usize;
        let mut stride = 1usize;
        let mut remaining = rank;
        for (i, axis) in fields.iter().enumerate() {
            let digit = (remaining / strides[i]) % axis.len();
            remaining %= strides[i];
            flat += digit * stride;
            stride *= axis.len();
        }
        reordered.push(std::mem::replace(
            &mut out[flat],
            RfChoice {
                label: String::new(),
                config: RegFileConfig::Single(SingleBankConfig::one_cycle()),
            },
        ));
    }
    reordered
}

fn parse_single(v: &JsonValue, name: Option<&str>) -> Result<Vec<RfChoice>, String> {
    check_keys(v, "single", &["latency", "bypass", "read_ports", "write_ports"])?;
    let fields: Vec<FieldAxis<SingleBankConfig>> = vec![
        field_axis(
            v,
            "latency",
            decode_u64,
            |n| Box::new(move |c: &mut SingleBankConfig| c.latency = n),
            label_text,
        )?,
        field_axis(
            v,
            "bypass",
            decode_keyword(&[
                ("full", BypassNetwork::Full),
                ("single-level", BypassNetwork::SingleLevel),
            ]),
            |b| Box::new(move |c: &mut SingleBankConfig| c.bypass = b),
            label_text,
        )?,
        field_axis(
            v,
            "read_ports",
            decode_port,
            |p| Box::new(move |c: &mut SingleBankConfig| c.ports.read = p),
            label_text,
        )?,
        field_axis(
            v,
            "write_ports",
            decode_port,
            |p| Box::new(move |c: &mut SingleBankConfig| c.ports.write = p),
            label_text,
        )?,
    ];
    Ok(expand_fields(
        SingleBankConfig::one_cycle(),
        name.unwrap_or("single"),
        fields,
        RegFileConfig::Single,
    ))
}

fn parse_cache(v: &JsonValue, name: Option<&str>) -> Result<Vec<RfChoice>, String> {
    check_keys(
        v,
        "cache",
        &[
            "upper_entries",
            "lower_latency",
            "caching",
            "fetch",
            "replacement",
            "upper_read_ports",
            "upper_write_ports",
            "lower_write_ports",
            "buses",
        ],
    )?;
    let fields: Vec<FieldAxis<RegFileCacheConfig>> = vec![
        field_axis(
            v,
            "upper_entries",
            decode_usize,
            |n| Box::new(move |c: &mut RegFileCacheConfig| c.upper_entries = n),
            label_text,
        )?,
        field_axis(
            v,
            "lower_latency",
            decode_u64,
            |n| Box::new(move |c: &mut RegFileCacheConfig| c.lower_latency = n),
            label_text,
        )?,
        field_axis(
            v,
            "caching",
            decode_keyword(&[
                ("non-bypass", CachingPolicy::NonBypass),
                ("ready", CachingPolicy::Ready),
            ]),
            |p| Box::new(move |c: &mut RegFileCacheConfig| c.caching = p),
            label_text,
        )?,
        field_axis(
            v,
            "fetch",
            decode_keyword(&[
                ("on-demand", FetchPolicy::OnDemand),
                ("prefetch-first-pair", FetchPolicy::PrefetchFirstPair),
            ]),
            |p| Box::new(move |c: &mut RegFileCacheConfig| c.fetch = p),
            label_text,
        )?,
        field_axis(
            v,
            "replacement",
            decode_keyword(&[
                ("pseudo-lru", Replacement::PseudoLru),
                ("fifo", Replacement::Fifo),
                ("random", Replacement::Random),
            ]),
            |p| Box::new(move |c: &mut RegFileCacheConfig| c.replacement = p),
            label_text,
        )?,
        field_axis(
            v,
            "upper_read_ports",
            decode_port,
            |p| Box::new(move |c: &mut RegFileCacheConfig| c.upper_read_ports = p),
            label_text,
        )?,
        field_axis(
            v,
            "upper_write_ports",
            decode_port,
            |p| Box::new(move |c: &mut RegFileCacheConfig| c.upper_write_ports = p),
            label_text,
        )?,
        field_axis(
            v,
            "lower_write_ports",
            decode_port,
            |p| Box::new(move |c: &mut RegFileCacheConfig| c.lower_write_ports = p),
            label_text,
        )?,
        field_axis(
            v,
            "buses",
            decode_port,
            |p| Box::new(move |c: &mut RegFileCacheConfig| c.buses = p),
            label_text,
        )?,
    ];
    Ok(expand_fields(
        RegFileCacheConfig::paper_default(),
        name.unwrap_or("rfc"),
        fields,
        RegFileConfig::Cache,
    ))
}

fn parse_replicated(v: &JsonValue, name: Option<&str>) -> Result<Vec<RfChoice>, String> {
    check_keys(v, "replicated", &["banks", "read_ports_per_bank", "remote_write_delay"])?;
    let fields: Vec<FieldAxis<ReplicatedBankConfig>> = vec![
        field_axis(
            v,
            "banks",
            decode_u32,
            |n| Box::new(move |c: &mut ReplicatedBankConfig| c.banks = n),
            label_text,
        )?,
        field_axis(
            v,
            "read_ports_per_bank",
            decode_port,
            |p| Box::new(move |c: &mut ReplicatedBankConfig| c.read_ports_per_bank = p),
            label_text,
        )?,
        field_axis(
            v,
            "remote_write_delay",
            decode_u64,
            |n| Box::new(move |c: &mut ReplicatedBankConfig| c.remote_write_delay = n),
            label_text,
        )?,
    ];
    Ok(expand_fields(
        ReplicatedBankConfig::default(),
        name.unwrap_or("replicated"),
        fields,
        RegFileConfig::Replicated,
    ))
}

fn parse_onelevel(v: &JsonValue, name: Option<&str>) -> Result<Vec<RfChoice>, String> {
    check_keys(v, "onelevel", &["banks", "read_ports_per_bank", "write_ports_per_bank"])?;
    let fields: Vec<FieldAxis<OneLevelBankedConfig>> = vec![
        field_axis(
            v,
            "banks",
            decode_u32,
            |n| Box::new(move |c: &mut OneLevelBankedConfig| c.banks = n),
            label_text,
        )?,
        field_axis(
            v,
            "read_ports_per_bank",
            decode_port,
            |p| Box::new(move |c: &mut OneLevelBankedConfig| c.read_ports_per_bank = p),
            label_text,
        )?,
        field_axis(
            v,
            "write_ports_per_bank",
            decode_port,
            |p| Box::new(move |c: &mut OneLevelBankedConfig| c.write_ports_per_bank = p),
            label_text,
        )?,
    ];
    Ok(expand_fields(
        OneLevelBankedConfig::default(),
        name.unwrap_or("onelevel"),
        fields,
        RegFileConfig::OneLevel,
    ))
}

/// Parses one entry of the `rf` axis into its expanded choices.
fn parse_rf_entry(entry: &JsonValue) -> Result<Vec<RfChoice>, String> {
    if let Some(preset) = entry.as_str() {
        let config = match preset {
            "one-cycle" => RegFileConfig::Single(SingleBankConfig::one_cycle()),
            "two-cycle-single-bypass" => {
                RegFileConfig::Single(SingleBankConfig::two_cycle_single_bypass())
            }
            "two-cycle-full-bypass" => {
                RegFileConfig::Single(SingleBankConfig::two_cycle_full_bypass())
            }
            "rfc" => RegFileConfig::Cache(RegFileCacheConfig::paper_default()),
            other => {
                return Err(format!(
                    "unknown rf preset `{other}` (expected one of: one-cycle, \
                     two-cycle-single-bypass, two-cycle-full-bypass, rfc, or a config object)"
                ));
            }
        };
        return Ok(vec![RfChoice { label: preset.to_string(), config }]);
    }
    let JsonValue::Object(fields) = entry else {
        return Err("rf entries must be preset names or config objects".to_string());
    };
    let name = match entry.get("name") {
        None => None,
        Some(n) => Some(n.as_str().ok_or("rf `name` must be a string")?),
    };
    let kinds: Vec<&str> =
        fields.iter().map(|(k, _)| k.as_str()).filter(|k| *k != "name").collect();
    let [kind] = kinds[..] else {
        return Err(format!(
            "an rf object must have exactly one kind key (single, cache, replicated, \
             onelevel), found {}",
            kinds.len()
        ));
    };
    let body = entry.get(kind).expect("kind key just enumerated");
    match kind {
        "single" => parse_single(body, name),
        "cache" => parse_cache(body, name),
        "replicated" => parse_replicated(body, name),
        "onelevel" => parse_onelevel(body, name),
        other => Err(format!(
            "unknown rf kind `{other}` (expected single, cache, replicated or onelevel)"
        )),
    }
}

/// Parses one entry of the `workloads` axis.
fn parse_workload_entry(entry: &JsonValue) -> Result<Vec<WorkloadSource>, String> {
    if let Some(bench) = entry.as_str() {
        let profile =
            BenchProfile::by_name(bench).ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
        return Ok(vec![WorkloadSource::Synthetic(profile)]);
    }
    let JsonValue::Object(_) = entry else {
        return Err("workload entries must be benchmark names or objects".to_string());
    };
    if let Some(path) = entry.get("trace") {
        check_keys(entry, "trace workload", &["trace", "name", "fp"])?;
        let path = path.as_str().ok_or("`trace` must be a path string")?;
        let label = match entry.get("name") {
            None => None,
            Some(n) => Some(n.as_str().ok_or("trace `name` must be a string")?),
        };
        let fp = match entry.get("fp") {
            None => false,
            Some(b) => b.as_bool().ok_or("trace `fp` must be a boolean")?,
        };
        let trace = TraceWorkload::load(path, label, fp)?;
        return Ok(vec![WorkloadSource::Trace(trace)]);
    }
    if let Some(bench) = entry.get("family") {
        check_keys(entry, "family workload", &["family", "members"])?;
        let bench = bench.as_str().ok_or("`family` must be a benchmark name")?;
        let base =
            BenchProfile::by_name(bench).ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
        let members = entry
            .get("members")
            .ok_or("family workloads need a `members` count")?
            .as_u64()
            .ok_or("`members` must be a whole number")?;
        if members == 0 || members > MAX_FAMILY_MEMBERS {
            return Err(format!("`members` must be in 1..={MAX_FAMILY_MEMBERS}"));
        }
        return Ok((1..=members as u32)
            .map(|member| WorkloadSource::Family { base, member })
            .collect());
    }
    Err("workload objects must have a `trace` or `family` key".to_string())
}

/// Parses an optional number-or-array axis (`insts`, `warmup`, `seed`).
/// Missing → empty (the campaign's option value fills in at plan time).
fn parse_param_axis(v: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(JsonValue::Array(items)) => {
            if items.is_empty() {
                return Err(format!("`{key}` must not be an empty array"));
            }
            items
                .iter()
                .map(|n| n.as_u64().ok_or_else(|| format!("`{key}` entries must be whole numbers")))
                .collect()
        }
        Some(n) => Ok(vec![n.as_u64().ok_or_else(|| format!("`{key}` must be a whole number"))?]),
    }
}

impl SweepDef {
    /// Parses and validates one sweep definition document.
    ///
    /// Trace workloads are loaded here (relative to the process working
    /// directory), so a parsed definition is fully materialized: every
    /// later [`plan`](Self::plan) is pure.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason: malformed JSON, unknown fields,
    /// a bad axis value, an unknown benchmark, an unreadable trace, an
    /// oversized definition, or a cross-product beyond
    /// [`MAX_SWEEP_RUNS`].
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.len() > MAX_SWEEP_BYTES {
            return Err(format!(
                "sweep definition is {} bytes; the limit is {MAX_SWEEP_BYTES}",
                text.len()
            ));
        }
        let v = parse_json(text).map_err(|e| e.to_string())?;
        check_keys(
            &v,
            "sweep",
            &["name", "description", "workloads", "rf", "insts", "warmup", "seed"],
        )?;

        let name = v
            .get("name")
            .ok_or("sweep definitions need a `name`")?
            .as_str()
            .ok_or("sweep `name` must be a string")?
            .to_string();
        if name.is_empty() || name.len() > 64 {
            return Err("sweep `name` must be 1-64 characters".to_string());
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            return Err(format!(
                "sweep name `{name}` may only use lowercase letters, digits, `-` and `_`"
            ));
        }
        if name == "all" {
            return Err("sweep name `all` is reserved (it expands to every scenario)".to_string());
        }
        let description = match v.get("description") {
            None => String::new(),
            Some(d) => d.as_str().ok_or("sweep `description` must be a string")?.to_string(),
        };

        let workloads = v
            .get("workloads")
            .ok_or("sweep definitions need a `workloads` axis")?
            .as_array()
            .ok_or("`workloads` must be an array")?
            .iter()
            .map(parse_workload_entry)
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .collect::<Vec<_>>();
        if workloads.is_empty() {
            return Err("`workloads` must list at least one workload".to_string());
        }

        let rfs: Vec<(String, RegFileConfig)> = v
            .get("rf")
            .ok_or("sweep definitions need an `rf` axis")?
            .as_array()
            .ok_or("`rf` must be an array")?
            .iter()
            .map(parse_rf_entry)
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .map(|choice| (choice.label, choice.config))
            .collect();
        if rfs.is_empty() {
            return Err("`rf` must list at least one register file".to_string());
        }
        for (i, (label, _)) in rfs.iter().enumerate() {
            if rfs[..i].iter().any(|(other, _)| other == label) {
                return Err(format!("rf label `{label}` is ambiguous; set distinct `name`s"));
            }
        }

        let insts = parse_param_axis(&v, "insts")?;
        let warmup = parse_param_axis(&v, "warmup")?;
        let seeds = parse_param_axis(&v, "seed")?;

        let runs = workloads.len()
            * rfs.len()
            * insts.len().max(1)
            * warmup.len().max(1)
            * seeds.len().max(1);
        if runs > MAX_SWEEP_RUNS {
            return Err(format!("sweep expands to {runs} runs; the limit is {MAX_SWEEP_RUNS}"));
        }

        Ok(SweepDef {
            name,
            description,
            text: render_json(&v),
            workloads,
            rfs,
            insts,
            warmup,
            seeds,
        })
    }

    /// Reads and parses a sweep definition file.
    ///
    /// # Errors
    ///
    /// Returns a reason naming the file on read or parse failure.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read sweep file {path}: {e}"))?;
        Self::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// The parameter-axis lengths under `opts` (omitted axes contribute
    /// one point from the campaign options).
    fn param_points(&self, opts: &ExperimentOpts) -> Vec<(u64, u64, u64)> {
        let insts = if self.insts.is_empty() { vec![opts.insts] } else { self.insts.clone() };
        let warmup = if self.warmup.is_empty() { vec![opts.warmup] } else { self.warmup.clone() };
        let seeds = if self.seeds.is_empty() { vec![opts.seed] } else { self.seeds.clone() };
        let mut out = Vec::with_capacity(insts.len() * warmup.len() * seeds.len());
        for &i in &insts {
            for &w in &warmup {
                for &s in &seeds {
                    out.push((i, w, s));
                }
            }
        }
        out
    }

    /// Expands the cross-product into the flat spec list, in canonical
    /// plan order (workload-major, then register file, then parameter
    /// points).
    pub fn plan(&self, opts: &ExperimentOpts) -> Vec<RunSpec> {
        let points = self.param_points(opts);
        let mut specs = Vec::with_capacity(self.workloads.len() * self.rfs.len() * points.len());
        for workload in &self.workloads {
            for (_, rf) in &self.rfs {
                for &(insts, warmup, seed) in &points {
                    specs.push(
                        RunSpec::from_workload(workload.clone(), *rf)
                            .insts(insts)
                            .warmup(warmup)
                            .seed(seed),
                    );
                }
            }
        }
        specs
    }

    /// Total runs the sweep plans under `opts`.
    pub fn runs(&self, opts: &ExperimentOpts) -> usize {
        self.workloads.len() * self.rfs.len() * self.param_points(opts).len()
    }

    /// A one-line axis summary for `experiments --list`
    /// (`3 workloads x 2 rf x 4 points`).
    pub fn axis_summary(&self) -> String {
        let points = self.insts.len().max(1) * self.warmup.len().max(1) * self.seeds.len().max(1);
        format!(
            "{} workload{} x {} rf x {} point{}",
            self.workloads.len(),
            if self.workloads.len() == 1 { "" } else { "s" },
            self.rfs.len(),
            points,
            if points == 1 { "" } else { "s" },
        )
    }

    /// Folds plan-ordered results into the sweep's report.
    fn assemble(&self, opts: &ExperimentOpts, results: Vec<RunResult>) -> SweepReport {
        let points = self.param_points(opts).len();
        let mut series = Vec::with_capacity(self.workloads.len() * self.rfs.len());
        let mut results = results.into_iter();
        for workload in &self.workloads {
            for (rf_label, _) in &self.rfs {
                let values: Vec<f64> = results.by_ref().take(points).map(|r| r.ipc()).collect();
                series.push((format!("{}/{rf_label}", workload.label()), values));
            }
        }
        SweepReport { name: self.name.clone(), series }
    }

    /// Wraps the definition as a [`Scenario`] for a
    /// [`Registry`](crate::scenario::Registry).
    pub fn into_scenario(self) -> Scenario {
        let description = if self.description.is_empty() {
            format!("declarative sweep: {}", self.axis_summary())
        } else {
            format!("{} ({})", self.description, self.axis_summary())
        };
        let name = self.name.clone();
        let planner_def = self.clone();
        let assembler_def = self;
        Scenario::new(
            name,
            description,
            move |opts: &ExperimentOpts| planner_def.plan(opts),
            move |opts: &ExperimentOpts, results| {
                Box::new(assembler_def.assemble(opts, results)) as Box<dyn ScenarioReport>
            },
        )
    }
}

/// A sweep's generic report: one IPC series per workload x register
/// file pair, exported in long `(series, index, value)` format.
pub struct SweepReport {
    name: String,
    series: Vec<(String, Vec<f64>)>,
}

impl ScenarioReport for SweepReport {
    fn series(&self) -> Vec<(String, Vec<f64>)> {
        self.series.clone()
    }

    /// Always long format, even when every series has the same length:
    /// sweep exports feed generic tooling (`scripts/plot.py`) that
    /// pivots on the series column, and a fixed shape means the tooling
    /// never has to guess.
    fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["series".into(), "index".into(), "value".into()]);
        for (name, values) in &self.series {
            for (i, v) in values.iter().enumerate() {
                t.row(vec![name.clone(), i.to_string(), v.to_string()]);
            }
        }
        t
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sweep {} (IPC per series point)", self.name)?;
        self.to_table().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(name: &str) -> String {
        format!("{{\"name\": \"{name}\", \"workloads\": [\"li\"], \"rf\": [\"one-cycle\"]}}")
    }

    #[test]
    fn minimal_sweep_parses_and_plans_one_run_from_opts() {
        let def = SweepDef::parse(&minimal("tiny")).unwrap();
        assert_eq!(def.name, "tiny");
        let opts = ExperimentOpts::smoke();
        let plan = def.plan(&opts);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].insts, opts.insts);
        assert_eq!(plan[0].warmup, opts.warmup);
        assert_eq!(plan[0].seed, opts.seed);
        assert_eq!(def.runs(&opts), 1);
    }

    #[test]
    fn canonical_text_is_whitespace_independent() {
        let a = SweepDef::parse(&minimal("tiny")).unwrap();
        let b = SweepDef::parse(
            "{\"name\":    \"tiny\",\n\"workloads\": [\"li\"],\n\n\"rf\": [\"one-cycle\"]}",
        )
        .unwrap();
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn axes_cross_product_in_declared_order() {
        let def = SweepDef::parse(
            r#"{"name": "axes", "workloads": ["li", "go"],
                "rf": ["one-cycle", "rfc"],
                "insts": [1000, 2000], "warmup": 100, "seed": [1, 2]}"#,
        )
        .unwrap();
        let opts = ExperimentOpts::default();
        let plan = def.plan(&opts);
        assert_eq!(plan.len(), 2 * 2 * 2 * 2);
        assert_eq!(def.runs(&opts), plan.len());
        // Workload-major: the first 8 specs are all li.
        assert!(plan[..8].iter().all(|s| s.workload.label() == "li"));
        // Parameter points: insts outermost, then warmup, then seed.
        assert_eq!((plan[0].insts, plan[0].seed), (1000, 1));
        assert_eq!((plan[1].insts, plan[1].seed), (1000, 2));
        assert_eq!((plan[2].insts, plan[2].seed), (2000, 1));
        assert!(plan.iter().all(|s| s.warmup == 100));
        assert_eq!(def.axis_summary(), "2 workloads x 2 rf x 4 points");
    }

    #[test]
    fn rf_objects_expand_array_fields_with_labels() {
        let def = SweepDef::parse(
            r#"{"name": "banks", "workloads": ["li"],
                "rf": [{"onelevel": {"banks": [4, 8], "read_ports_per_bank": 2}}]}"#,
        )
        .unwrap();
        let labels: Vec<&str> = def.rfs.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["onelevel banks=4", "onelevel banks=8"]);
        match &def.rfs[0].1 {
            RegFileConfig::OneLevel(c) => {
                assert_eq!(c.banks, 4);
                assert_eq!(c.read_ports_per_bank, Some(2));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn rf_policy_axes_and_null_ports_expand() {
        let def = SweepDef::parse(
            r#"{"name": "policies", "workloads": ["li"],
                "rf": [{"cache": {"caching": ["non-bypass", "ready"],
                                  "upper_read_ports": [2, null]}, "name": "c"}]}"#,
        )
        .unwrap();
        assert_eq!(def.rfs.len(), 4);
        let labels: Vec<&str> = def.rfs.iter().map(|(l, _)| l.as_str()).collect();
        // Declared field order: caching varies slowest, ports fastest.
        assert_eq!(
            labels,
            [
                "c caching=non-bypass upper_read_ports=2",
                "c caching=non-bypass upper_read_ports=unlimited",
                "c caching=ready upper_read_ports=2",
                "c caching=ready upper_read_ports=unlimited",
            ]
        );
        match &def.rfs[1].1 {
            RegFileConfig::Cache(c) => {
                assert_eq!(c.caching, CachingPolicy::NonBypass);
                assert_eq!(c.upper_read_ports, None);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn family_workloads_expand_members() {
        let def = SweepDef::parse(
            r#"{"name": "fam", "workloads": [{"family": "go", "members": 3}],
                "rf": ["one-cycle"]}"#,
        )
        .unwrap();
        let labels: Vec<String> = def.workloads.iter().map(WorkloadSource::label).collect();
        assert_eq!(labels, ["go~1", "go~2", "go~3"]);
    }

    #[test]
    fn assemble_produces_one_series_per_pair_in_long_format() {
        let def = SweepDef::parse(
            r#"{"name": "rep", "workloads": ["li"], "rf": ["one-cycle", "rfc"],
                "seed": [1, 2]}"#,
        )
        .unwrap();
        let opts = ExperimentOpts { insts: 2_000, warmup: 300, ..Default::default() };
        let results: Vec<RunResult> = def.plan(&opts).iter().map(RunSpec::run).collect();
        let report = def.assemble(&opts, results);
        let series = report.series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "li/one-cycle");
        assert_eq!(series[1].0, "li/rfc");
        assert!(series.iter().all(|(_, v)| v.len() == 2 && v.iter().all(|x| *x > 0.0)));
        let t = report.to_table();
        assert_eq!(t.header_cells(), &["series", "index", "value"]);
        assert_eq!(t.len(), 4);
        assert!(format!("{report}").contains("sweep rep"));
    }

    #[test]
    fn scenario_wrapper_matches_direct_plan_and_assemble() {
        let def = SweepDef::parse(&minimal("wrap")).unwrap();
        let opts = ExperimentOpts::smoke();
        let direct = def.plan(&opts);
        let scenario = def.clone().into_scenario();
        assert_eq!(scenario.name, "wrap");
        assert!(scenario.description.contains("1 workload x 1 rf x 1 point"));
        let via = scenario.plan(&opts);
        assert_eq!(via.len(), direct.len());
        assert_eq!(via[0].fingerprint(), direct[0].fingerprint());
        let report = scenario.run(&opts);
        assert_eq!(report.series().len(), 1);
    }

    #[test]
    fn rejects_bad_definitions_with_useful_reasons() {
        let cases: &[(&str, &str)] = &[
            ("{\"workloads\": [\"li\"], \"rf\": [\"one-cycle\"]}", "need a `name`"),
            (&minimal("all"), "reserved"),
            (&minimal("Bad Name"), "lowercase"),
            (
                "{\"name\": \"x\", \"workloads\": [], \"rf\": [\"one-cycle\"]}",
                "at least one workload",
            ),
            (
                "{\"name\": \"x\", \"workloads\": [\"quake\"], \"rf\": [\"one-cycle\"]}",
                "unknown benchmark `quake`",
            ),
            ("{\"name\": \"x\", \"workloads\": [\"li\"], \"rf\": [\"fast\"]}", "unknown rf preset"),
            (
                "{\"name\": \"x\", \"workloads\": [\"li\"], \"rf\": [{\"onelevel\": {\"banke\": 4}}]}",
                "unknown `onelevel` field `banke`",
            ),
            (
                "{\"name\": \"x\", \"workloads\": [\"li\"], \"rf\": [{\"single\": {}, \"cache\": {}}]}",
                "exactly one kind",
            ),
            (
                "{\"name\": \"x\", \"workloads\": [\"li\"], \"rf\": [\"one-cycle\"], \"bogus\": 1}",
                "unknown `sweep` field `bogus`",
            ),
            (
                "{\"name\": \"x\", \"workloads\": [\"li\"], \"rf\": [\"one-cycle\"], \"seed\": []}",
                "empty array",
            ),
            (
                "{\"name\": \"x\", \"workloads\": [{\"family\": \"go\", \"members\": 0}], \"rf\": [\"one-cycle\"]}",
                "1..=64",
            ),
            (
                "{\"name\": \"x\", \"workloads\": [{\"trace\": \"/nonexistent.rfct\"}], \"rf\": [\"one-cycle\"]}",
                "cannot read trace file",
            ),
            (
                "{\"name\": \"x\", \"workloads\": [\"li\"], \"rf\": [\"one-cycle\", \"one-cycle\"]}",
                "ambiguous",
            ),
        ];
        for (text, needle) in cases {
            let err = SweepDef::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
        assert!(SweepDef::parse(&"x".repeat(MAX_SWEEP_BYTES + 1)).unwrap_err().contains("limit"));
        let huge = r#"{"name": "big", "workloads": ["li"], "rf": ["one-cycle"],
                       "seed": [SEEDS]}"#
            .replace("SEEDS", &(0..70_000).map(|i| i.to_string()).collect::<Vec<_>>().join(", "));
        assert!(SweepDef::parse(&huge).unwrap_err().contains("limit"));
    }

    #[test]
    fn load_reads_files_and_names_them_in_errors() {
        let dir = std::env::temp_dir().join(format!("rfct-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.json");
        std::fs::write(&path, minimal("filed")).unwrap();
        let def = SweepDef::load(path.to_str().unwrap()).unwrap();
        assert_eq!(def.name, "filed");
        std::fs::write(&path, "{").unwrap();
        assert!(SweepDef::load(path.to_str().unwrap()).unwrap_err().contains("s.json"));
        assert!(SweepDef::load("/nonexistent/sweep.json").unwrap_err().contains("cannot read"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
