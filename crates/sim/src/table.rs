//! Minimal aligned text-table rendering for the experiment binaries.

use std::fmt;

/// A simple right-aligned text table (first column left-aligned).
///
/// # Examples
///
/// ```
/// use rfcache_sim::TextTable;
/// let mut t = TextTable::new(vec!["bench".into(), "IPC".into()]);
/// t.row(vec!["li".into(), "2.81".into()]);
/// let s = t.to_string();
/// assert!(s.contains("bench"));
/// assert!(s.contains("2.81"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable { header, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Convenience: a row from a label and f64 cells with 3 decimals.
    pub fn row_f64(&mut self, label: &str, values: &[f64]) {
        let mut row = vec![label.to_string()];
        row.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(row);
    }

    /// The header cells.
    pub fn header_cells(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order.
    pub fn data_rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "  {cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "x".into()]);
        t.row(vec!["abcdef".into(), "1".into()]);
        t.row(vec!["a".into(), "12345".into()]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn row_f64_formats() {
        let mut t = TextTable::new(vec!["b".into(), "ipc".into()]);
        t.row_f64("li", &[2.5]);
        assert!(t.to_string().contains("2.500"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
